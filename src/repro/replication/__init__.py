"""Distributed serving via WAL segment shipping.

One primary publishes its closed write-ahead-log segments and
generation snapshot deltas into a *feed directory*; any number of
followers tail the feed, rebuild generations deterministically through
the same streaming machinery the primary runs, and hot-swap in lockstep
when the epoch coordinator observes a quorum of byte-identical rebuild
fingerprints::

    primary ──ship──▶ feed/ ──tail──▶ followers ──report──▶ coordinator
       ▲                                  ▲                     │
       └── serve-http --ship-feed         └──── EPOCH.json ◀────┘

See ``README.md`` § Replication for the operational story.
"""

from repro.replication.coordinator import EpochCoordinator, coordinator_loop
from repro.replication.delta import (
    BaseMissing,
    DeltaCorruption,
    apply_delta,
    encode_delta,
    read_delta_header,
    snapshot_fingerprint,
)
from repro.replication.feed import Feed, FeedError
from repro.replication.follower import Follower, FollowerBackend
from repro.replication.shipper import SegmentShipper

__all__ = [
    "BaseMissing",
    "DeltaCorruption",
    "EpochCoordinator",
    "Feed",
    "FeedError",
    "Follower",
    "FollowerBackend",
    "SegmentShipper",
    "apply_delta",
    "coordinator_loop",
    "encode_delta",
    "read_delta_header",
    "snapshot_fingerprint",
]
