"""Epoch coordinator: quorum over follower fingerprints, swap broadcast.

The coordinator is deliberately tiny and stateless-restartable: all of
its inputs (``GENERATIONS.json``, ``followers/*.json``) and its single
output (``EPOCH.json``) live in the feed directory, atomically written.
It runs either embedded in the primary's serve loop (the default for
``serve-http --ship-feed``) or as its own process.

Decision rule, evaluated per tick:

1. read the shipper's generation index — each entry carries the
   primary's answer-surface fingerprint for that generation;
2. read every follower report; a follower **counts toward quorum at
   generation G** iff it is healthy, not divergent, and its reported
   fingerprint for G equals the primary's;
3. pick the **highest** G past the currently broadcast epoch's
   generation with at least ``quorum`` agreeing followers, and write
   ``EPOCH.json`` with ``epoch+1`` naming G and its fingerprint.

Followers swap only on that broadcast, so the fleet moves in lockstep:
either a quorum proved it rebuilt byte-identical state, or nobody moves.
A follower that disagrees (divergent fingerprint) simply never counts —
it keeps serving its last healthy epoch and is visible in ``stats()``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.replication.feed import Feed, FeedError


class EpochCoordinator:
    """Broadcast epoch bumps once a follower quorum agrees."""

    def __init__(
        self,
        feed_dir: Union[str, Path],
        *,
        quorum: int = 1,
        stale_after_s: float = 30.0,
    ):
        if quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {quorum}")
        self._feed = Feed(feed_dir)
        self._quorum = quorum
        self._stale_after_s = stale_after_s
        self._epochs_broadcast = 0
        self._last_decision: Optional[Dict[str, Any]] = None

    @property
    def feed(self) -> Feed:
        return self._feed

    def current_epoch(self) -> Dict[str, Any]:
        epoch = self._feed.read_epoch()
        return epoch if epoch is not None else {"epoch": 0, "generation": 0}

    def tick(self, now: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Evaluate the quorum rule once; returns the broadcast (or None).

        ``now`` is injectable for tests; defaults to ``time.time()``.
        """
        now = time.time() if now is None else now
        generations = self._feed.read_generation_index()
        if not generations:
            return None
        primary_fp = {
            int(g["number"]): g["fingerprint"] for g in generations
        }
        current = self.current_epoch()
        floor = int(current.get("generation", 0))

        votes: Dict[int, int] = {}
        reports = self._feed.read_follower_reports()
        live_followers = 0
        for report in reports.values():
            ts = report.get("ts")
            if (
                isinstance(ts, (int, float))
                and now - ts > self._stale_after_s
            ):
                continue  # process is gone; its old report must not vote
            live_followers += 1
            if not report.get("healthy", False) or report.get("divergent"):
                continue
            for key, fingerprint in (report.get("fingerprints") or {}).items():
                number = int(key)
                if number > floor and primary_fp.get(number) == fingerprint:
                    votes[number] = votes.get(number, 0) + 1

        agreed = [n for n, count in votes.items() if count >= self._quorum]
        self._last_decision = {
            "live_followers": live_followers,
            "votes": {str(n): c for n, c in sorted(votes.items())},
            "floor": floor,
        }
        if not agreed:
            return None
        target = max(agreed)
        broadcast = {
            "epoch": int(current.get("epoch", 0)) + 1,
            "generation": target,
            "fingerprint": primary_fp[target],
            "quorum": self._quorum,
            "votes": votes[target],
            "ts": now,
        }
        self._feed.write_epoch(broadcast)
        self._epochs_broadcast += 1
        return broadcast

    def stats(self) -> Dict[str, Any]:
        current = self.current_epoch()
        out: Dict[str, Any] = {
            "role": "coordinator",
            "quorum": self._quorum,
            "epoch": int(current.get("epoch", 0)),
            "generation": int(current.get("generation", 0)),
            "epochs_broadcast": self._epochs_broadcast,
        }
        if self._last_decision is not None:
            out["last_decision"] = self._last_decision
        return out


def coordinator_loop(
    coordinator: EpochCoordinator,
    *,
    stop,
    interval_s: float = 0.5,
) -> None:
    """Drive :meth:`EpochCoordinator.tick` until ``stop`` is set.

    ``stop`` is a :class:`threading.Event` (duck-typed: ``is_set`` +
    ``wait``). Feed errors are tolerated — a transiently unreadable
    index just skips a tick."""
    while not stop.is_set():
        try:
            coordinator.tick()
        except FeedError:
            pass
        stop.wait(interval_s)
