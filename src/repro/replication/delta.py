"""Cross-generation snapshot deltas for WAL-shipping replication.

A generation snapshot is a directory of model artifacts (see
:mod:`repro.store.persistence.snapshot`). Consecutive generations share
most of that data byte-for-byte: the sliding window advances one micro
batch at a time, so embeddings, the raw text corpus, and configuration
are typically untouched while only the refit surface (taxonomy,
descriptions, graph matrices) changes. Shipping a full snapshot per
generation would therefore resend mostly redundant bytes.

The delta codec exploits this at *file* granularity. For every file in
the target snapshot:

- if a byte-identical file (by SHA-256) exists in the base snapshot,
  ship a **ref** — just the name and hash, zero payload bytes;
- otherwise ship a **zlib literal** — the compressed file body.

Finer-grained (chunk/value-level) diffing buys nothing here: topic ids
are renumbered wholesale on refit and per-topic statistics are
recomputed over the slid window, so changed files share almost nothing
with their predecessors even at the value level. Whole-file refs plus
compression measure ~0.15x of full-snapshot bytes on the reference
profile, comfortably inside the < 0.5x replication budget.

Wire format — a single ``.delta`` file::

    <header JSON, one line, newline-terminated>
    <concatenated zlib payloads, in header file order>

The header carries per-file SHA-256 checksums and a SHA-256 over the
whole payload region; :func:`apply_delta` verifies both, so a torn or
bit-flipped delta raises :class:`DeltaCorruption` rather than building
a silently wrong model. ``kind == "full"`` deltas have no base and
every file is a literal — they bootstrap a follower that has nothing.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro._util import atomic_write_bytes

DELTA_FORMAT = "repro-snapshot-delta-v1"

#: Snapshot artifacts are flat files directly inside the directory.
_SKIP_SUFFIXES = (".tmp",)

#: Files excluded from the answer-surface fingerprint. The manifest
#: embeds wall-clock ``stage_seconds``, so it differs between a primary
#: and a follower that rebuilt the *same* model; every artifact that
#: actually shapes answers is fingerprinted.
_FINGERPRINT_EXCLUDE = frozenset({"MANIFEST.json"})


class DeltaCorruption(RuntimeError):
    """A shipped delta failed checksum or structural verification."""


class BaseMissing(RuntimeError):
    """The delta references a base generation the reader does not have."""


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


def _snapshot_files(directory: Union[str, Path]) -> List[Path]:
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"snapshot directory not found: {directory}")
    return sorted(
        p
        for p in directory.iterdir()
        if p.is_file() and not p.name.endswith(_SKIP_SUFFIXES)
    )


def snapshot_fingerprint(directory: Union[str, Path]) -> str:
    """Content fingerprint of a snapshot directory.

    SHA-256 over the sorted ``name:sha256`` lines of every artifact.
    Two snapshots with the same fingerprint are byte-identical, so two
    followers reporting the same fingerprint will serve byte-identical
    answers — this is the quantity the epoch coordinator compares.
    """
    h = hashlib.sha256()
    for path in _snapshot_files(directory):
        if path.name in _FINGERPRINT_EXCLUDE:
            continue
        h.update(f"{path.name}:{_sha256_file(path)}\n".encode())
    return h.hexdigest()


def encode_delta(
    target_dir: Union[str, Path],
    out_path: Union[str, Path],
    *,
    base_dir: Optional[Union[str, Path]] = None,
    generation: int,
    base_generation: Optional[int] = None,
    applied_seq: int,
    last_day: int,
) -> Dict[str, Any]:
    """Encode ``target_dir`` as a delta against ``base_dir``.

    With ``base_dir=None`` a self-contained ``kind="full"`` delta is
    produced (every file a literal). Returns the header dict, extended
    with ``bytes`` (encoded size) and ``full_bytes`` (raw snapshot
    size) for the shipper's bookkeeping.
    """
    target_dir = Path(target_dir)
    base_hashes: Dict[str, str] = {}
    if base_dir is not None:
        base_hashes = {
            p.name: _sha256_file(p) for p in _snapshot_files(base_dir)
        }

    files: List[Dict[str, Any]] = []
    payloads: List[bytes] = []
    full_bytes = 0
    for path in _snapshot_files(target_dir):
        raw = path.read_bytes()
        digest = hashlib.sha256(raw).hexdigest()
        full_bytes += len(raw)
        if base_hashes.get(path.name) == digest:
            files.append(
                {"name": path.name, "op": "ref", "sha256": digest, "size": len(raw)}
            )
            continue
        blob = zlib.compress(raw, 6)
        payloads.append(blob)
        files.append(
            {
                "name": path.name,
                "op": "zlib",
                "sha256": digest,
                "size": len(raw),
                "clen": len(blob),
            }
        )

    payload = b"".join(payloads)
    header: Dict[str, Any] = {
        "format": DELTA_FORMAT,
        "kind": "full" if base_dir is None else "delta",
        "generation": int(generation),
        "base_generation": None if base_dir is None else int(base_generation or 0),
        "applied_seq": int(applied_seq),
        "last_day": int(last_day),
        "fingerprint": snapshot_fingerprint(target_dir),
        "files": files,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    encoded = json.dumps(header, sort_keys=True).encode() + b"\n" + payload
    atomic_write_bytes(out_path, encoded)
    summary = dict(header)
    summary["bytes"] = len(encoded)
    summary["full_bytes"] = full_bytes
    return summary


def read_delta_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and structurally validate a delta file's header line."""
    with open(path, "rb") as fh:
        line = fh.readline()
    try:
        header = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise DeltaCorruption(f"unreadable delta header in {path}: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != DELTA_FORMAT:
        raise DeltaCorruption(
            f"{path} is not a {DELTA_FORMAT} file "
            f"(format={header.get('format') if isinstance(header, dict) else None!r})"
        )
    return header


def apply_delta(
    delta_path: Union[str, Path],
    out_dir: Union[str, Path],
    *,
    base_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Materialise the snapshot encoded by ``delta_path`` into ``out_dir``.

    ``base_dir`` supplies the bytes behind ``ref`` entries; a
    ``kind="delta"`` file applied without its base raises
    :class:`BaseMissing` (callers fall back to the feed's ``full``
    delta). Every reconstructed file is checksum-verified against the
    header; any mismatch raises :class:`DeltaCorruption` and ``out_dir``
    must be considered garbage.
    """
    delta_path = Path(delta_path)
    header = read_delta_header(delta_path)
    if header["kind"] == "delta" and base_dir is None:
        raise BaseMissing(
            f"{delta_path} is a delta against generation "
            f"{header['base_generation']} but no base snapshot was supplied"
        )

    with open(delta_path, "rb") as fh:
        fh.readline()
        payload = fh.read()
    if hashlib.sha256(payload).hexdigest() != header["payload_sha256"]:
        raise DeltaCorruption(f"payload checksum mismatch in {delta_path}")

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    offset = 0
    for entry in header["files"]:
        name = entry["name"]
        if "/" in name or name.startswith("."):
            raise DeltaCorruption(f"suspicious file name {name!r} in {delta_path}")
        if entry["op"] == "ref":
            source = Path(base_dir) / name  # type: ignore[arg-type]
            if not source.is_file():
                raise BaseMissing(
                    f"base snapshot is missing {name!r} referenced by {delta_path}"
                )
            raw = source.read_bytes()
        elif entry["op"] == "zlib":
            blob = payload[offset : offset + entry["clen"]]
            offset += entry["clen"]
            try:
                raw = zlib.decompress(blob)
            except zlib.error as exc:
                raise DeltaCorruption(
                    f"failed to inflate {name!r} from {delta_path}: {exc}"
                ) from exc
        else:
            raise DeltaCorruption(
                f"unknown op {entry['op']!r} for {name!r} in {delta_path}"
            )
        if len(raw) != entry["size"]:
            raise DeltaCorruption(
                f"size mismatch for {name!r} in {delta_path}: "
                f"expected {entry['size']}, got {len(raw)}"
            )
        if hashlib.sha256(raw).hexdigest() != entry["sha256"]:
            raise DeltaCorruption(
                f"checksum mismatch for {name!r} in {delta_path}"
            )
        atomic_write_bytes(out_dir / name, raw)
    if offset != len(payload):
        raise DeltaCorruption(
            f"{delta_path} carries {len(payload) - offset} trailing payload bytes"
        )

    built = snapshot_fingerprint(out_dir)
    if built != header["fingerprint"]:
        raise DeltaCorruption(
            f"rebuilt snapshot fingerprint {built[:12]} != "
            f"shipped {header['fingerprint'][:12]} for {delta_path}"
        )
    return header
