"""On-disk replication feed shared by primary, followers, coordinator.

The feed is a plain directory — the only coordination primitive in the
replication subsystem. Everything in it is written atomically
(tmp + rename via :func:`repro._util.atomic_write_json` /
``atomic_write_bytes``), so readers polling at any moment see either
the previous or the next complete version of a file, never a torn one.
That makes the feed safe to serve over NFS, rsync, or object-store
sync without any locking.

Layout::

    FEED.json               manifest: nonce, profile, seed, base metadata
    base/                   full base snapshot (follower bootstrap)
    segments/wal-*.jsonl    verbatim copies of closed primary WAL segments
    SEGMENTS.json           segment index: name, sha256, seq range
    generations/gen-*.delta snapshot deltas (bandwidth-efficient mirror)
    GENERATIONS.json        generation index: seq boundary, fingerprint
    followers/<id>.json     per-follower status reports
    EPOCH.json              coordinator's swap broadcast

``FEED.json`` carries a random *nonce* minted when the feed is
initialised; shippers and followers remember it and refuse to operate
on a feed whose nonce changed underneath them — re-initialising a feed
directory for a different primary must not silently poison an existing
fleet.
"""

from __future__ import annotations

import json
import secrets
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro._util import atomic_write_json

FEED_FORMAT = "repro-replication-feed-v1"

MANIFEST_NAME = "FEED.json"
SEGMENT_INDEX_NAME = "SEGMENTS.json"
GENERATION_INDEX_NAME = "GENERATIONS.json"
EPOCH_NAME = "EPOCH.json"
BASE_DIR_NAME = "base"
SEGMENTS_DIR_NAME = "segments"
GENERATIONS_DIR_NAME = "generations"
FOLLOWERS_DIR_NAME = "followers"


class FeedError(RuntimeError):
    """The feed directory is missing, foreign, or structurally invalid."""


class Feed:
    """Typed accessor for one replication feed directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    # -- paths ---------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def base_dir(self) -> Path:
        return self.directory / BASE_DIR_NAME

    @property
    def segments_dir(self) -> Path:
        return self.directory / SEGMENTS_DIR_NAME

    @property
    def generations_dir(self) -> Path:
        return self.directory / GENERATIONS_DIR_NAME

    @property
    def followers_dir(self) -> Path:
        return self.directory / FOLLOWERS_DIR_NAME

    @property
    def epoch_path(self) -> Path:
        return self.directory / EPOCH_NAME

    # -- manifest ------------------------------------------------------

    def initialise(self, manifest: Dict[str, Any]) -> Dict[str, Any]:
        """Create the feed skeleton and write the manifest.

        ``manifest`` holds the replication parameters a follower needs
        to rebuild deterministically (profile, seed, base_last_day,
        retrain_every, max_day_skew, ...). A fresh nonce is minted; the
        caller should persist the returned manifest's nonce and verify
        it on every subsequent touch.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        for sub in (
            self.base_dir,
            self.segments_dir,
            self.generations_dir,
            self.followers_dir,
        ):
            sub.mkdir(exist_ok=True)
        payload = dict(manifest)
        payload["format"] = FEED_FORMAT
        payload["nonce"] = secrets.token_hex(8)
        atomic_write_json(self.manifest_path, payload)
        return payload

    def read_manifest(self) -> Dict[str, Any]:
        if not self.manifest_path.is_file():
            raise FeedError(
                f"{self.directory} is not a replication feed "
                f"(missing {MANIFEST_NAME})"
            )
        payload = _read_json(self.manifest_path)
        if payload.get("format") != FEED_FORMAT:
            raise FeedError(
                f"{self.manifest_path} has format {payload.get('format')!r}, "
                f"expected {FEED_FORMAT}"
            )
        return payload

    def check_nonce(self, nonce: str) -> None:
        current = self.read_manifest().get("nonce")
        if current != nonce:
            raise FeedError(
                f"feed {self.directory} was re-initialised "
                f"(nonce {current!r} != expected {nonce!r}); refusing to "
                "mix generations from different primaries"
            )

    # -- indexes -------------------------------------------------------

    def read_segment_index(self) -> List[Dict[str, Any]]:
        return _read_index(self.directory / SEGMENT_INDEX_NAME, "segments")

    def write_segment_index(self, entries: List[Dict[str, Any]]) -> None:
        atomic_write_json(
            self.directory / SEGMENT_INDEX_NAME, {"segments": entries}
        )

    def read_generation_index(self) -> List[Dict[str, Any]]:
        return _read_index(
            self.directory / GENERATION_INDEX_NAME, "generations"
        )

    def write_generation_index(self, entries: List[Dict[str, Any]]) -> None:
        atomic_write_json(
            self.directory / GENERATION_INDEX_NAME, {"generations": entries}
        )

    # -- follower reports / epoch --------------------------------------

    def write_follower_report(
        self, follower_id: str, report: Dict[str, Any]
    ) -> None:
        self.followers_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.followers_dir / f"{follower_id}.json", report)

    def read_follower_reports(self) -> Dict[str, Dict[str, Any]]:
        reports: Dict[str, Dict[str, Any]] = {}
        if not self.followers_dir.is_dir():
            return reports
        for path in sorted(self.followers_dir.glob("*.json")):
            try:
                reports[path.stem] = _read_json(path)
            except FeedError:
                continue  # torn writes are impossible; skip foreign junk
        return reports

    def read_epoch(self) -> Optional[Dict[str, Any]]:
        if not self.epoch_path.is_file():
            return None
        return _read_json(self.epoch_path)

    def write_epoch(self, payload: Dict[str, Any]) -> None:
        atomic_write_json(self.epoch_path, payload)


def _read_json(path: Path) -> Dict[str, Any]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise FeedError(f"unreadable feed file {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise FeedError(f"feed file {path} is not a JSON object")
    return payload


def _read_index(path: Path, key: str) -> List[Dict[str, Any]]:
    if not path.is_file():
        return []
    payload = _read_json(path)
    entries = payload.get(key)
    if not isinstance(entries, list):
        raise FeedError(f"feed index {path} is missing {key!r}")
    return entries
