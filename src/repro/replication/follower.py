"""Follower: rebuild generations from a shipped feed, swap on epoch.

A follower owns no ingest path. Its inputs are exactly what the
:class:`~repro.replication.shipper.SegmentShipper` published:

* the **base snapshot** (``base/``) — byte-identical model weights the
  primary booted from, so :class:`IncrementalShoal.from_model` starts
  both processes in the same state (same embeddings, same
  fits-since-retrain counter);
* the **feed manifest** — the ``profile``/``seed`` that regenerate the
  base query log, plus the primary's ``retrain_every`` and
  ``max_day_skew``, so every knob that shapes a refit matches;
* the **closed WAL segments** — the replication truth. The follower
  replays them through the *same* :class:`StreamingUpdater` machinery
  the primary runs, via a :class:`_FeedPipe` adapter that cuts batches
  at the exact ``applied_seq`` boundaries recorded per generation in
  ``GENERATIONS.json``. Same events, same order, same batch cuts, same
  poison-skip rules ⇒ byte-identical generation snapshots (the
  hypothesis suite pins this).

Built generations are **staged**, not served: the follower's
:class:`GenerationSwitch` only swaps when the coordinator broadcasts an
epoch naming a generation + fingerprint. A follower whose own build
disagrees with the broadcast fingerprint refuses the swap and reports
itself divergent; a follower whose post-swap health probes fail rolls
back to what it was serving and reports unhealthy. Readers on that
follower never see a torn or wrong model either way.
"""

from __future__ import annotations

import hashlib
import secrets
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.api.backends import ClusterBackend, ServiceBackend, ShoalBackend
from repro.api.contract import (
    BatchRequest,
    BatchResponse,
    RecommendRequest,
    RecommendResponse,
    SearchRequest,
    SearchResponse,
)
from repro.core.incremental import IncrementalShoal
from repro.data.marketplace import PROFILES, generate_marketplace
from repro.obs.tracer import traced
from repro.replication.delta import snapshot_fingerprint
from repro.replication.feed import Feed, FeedError
from repro.store.persistence import load_entity_categories, load_model
from repro.streaming.rollout import Generation, GenerationSwitch, SwapError
from repro.streaming.updater import StreamingUpdater
from repro.streaming.wal import IngestEvent, WalCorruption, WriteAheadLog

#: How many built generations a follower keeps staged (and reports
#: fingerprints for). The coordinator only ever compares recent ones.
STAGE_DEPTH = 16


class _WalView:
    """What :class:`StreamingUpdater` needs ``pipe.wal`` to be.

    The follower has no write-ahead log of its own — the *feed* is its
    log. Replay is empty (recovery is re-tailing the feed), compaction
    is a no-op (the primary owns segment lifecycle), and the directory
    just gives the updater somewhere to drop its progress checkpoint.
    """

    def __init__(self, directory: Path):
        self.directory = directory

    def replay(self, after_seq: int = 0):
        return iter(())

    def compact(self, retain_from_day: int) -> int:
        return 0

    def sync(self) -> None:
        pass


class _FeedPipe:
    """Batch source that replays shipped segments at primary boundaries.

    ``take_batch`` ignores size/age knobs: a batch is exactly the
    events ``(previous boundary, next generation's applied_seq]`` from
    ``GENERATIONS.json``, and is only released once shipped segments
    fully cover it. That makes the follower's updater produce the same
    generation sequence as the primary's — the determinism on which
    fingerprint quorum rests.
    """

    def __init__(self, workdir: Path):
        self.wal = _WalView(workdir)
        self._events: List[IngestEvent] = []  # buffered, seq-ascending
        self._targets: List[Dict[str, Any]] = []
        self._next_target = 0
        self._consumed_seq = 0
        self._loaded_seq = 0
        self._lock = threading.Lock()

    def extend_events(self, events: List[IngestEvent], max_seq: int) -> None:
        with self._lock:
            self._events.extend(events)
            self._loaded_seq = max(self._loaded_seq, max_seq)

    def set_targets(self, targets: List[Dict[str, Any]]) -> None:
        with self._lock:
            self._targets = targets

    @property
    def consumed_seq(self) -> int:
        with self._lock:
            return self._consumed_seq

    @property
    def loaded_seq(self) -> int:
        with self._lock:
            return self._loaded_seq

    def pending_target(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            if self._next_target < len(self._targets):
                return self._targets[self._next_target]
            return None

    def take_batch(
        self,
        *,
        max_events: int = 256,
        max_age_s: float = 0.5,
        timeout_s: float = 1.0,
    ) -> List[IngestEvent]:
        del max_events, max_age_s, timeout_s  # boundary-cut, not size-cut
        with self._lock:
            if self._next_target >= len(self._targets):
                return []
            boundary = int(self._targets[self._next_target]["applied_seq"])
            if self._loaded_seq < boundary:
                return []  # segments not fully shipped yet — wait
            batch = [
                e
                for e in self._events
                if self._consumed_seq < e.seq <= boundary
            ]
            self._events = [e for e in self._events if e.seq > boundary]
            self._consumed_seq = boundary
            self._next_target += 1
            return batch


class Follower:
    """Tail a replication feed, rebuild generations, swap on epoch."""

    def __init__(
        self,
        feed_dir: Union[str, Path],
        workdir: Union[str, Path],
        *,
        follower_id: Optional[str] = None,
        n_shards: int = 1,
        n_replicas: int = 1,
        cache_size: int = 4096,
        probe_k: int = 5,
        poll_interval_s: float = 0.2,
    ):
        self._feed = Feed(feed_dir)
        self._workdir = Path(workdir)
        self._workdir.mkdir(parents=True, exist_ok=True)
        self.follower_id = follower_id or f"follower-{secrets.token_hex(4)}"
        self._n_shards = n_shards
        self._n_replicas = n_replicas
        self._cache_size = cache_size
        self._probe_k = probe_k
        self._poll_interval_s = poll_interval_s

        self._nonce: Optional[str] = None
        self._pipe: Optional[_FeedPipe] = None
        self._updater: Optional[StreamingUpdater] = None
        self._switch: Optional[GenerationSwitch] = None
        self._inner: Optional[ShoalBackend] = None
        self._backend: Optional["FollowerBackend"] = None

        self._staged: "OrderedDict[int, Generation]" = OrderedDict()
        self._fingerprints: "OrderedDict[int, str]" = OrderedDict()
        self._epoch = 0
        self._serving_generation = 0
        self._healthy = True
        self._divergent = False
        self._swap_failures = 0
        self._epoch_swaps = 0
        self._last_error: Optional[str] = None

        self._loaded_segments: Dict[str, str] = {}  # name -> sha256
        self._feed_segment_count = 0
        self._feed_generation_count = 0
        self._feed_max_seq = 0
        self._feed_boundary_seq = 0  # last published generation's seq

        self._lock = threading.RLock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- bootstrap -----------------------------------------------------

    def bootstrap(self) -> "FollowerBackend":
        """Load the base snapshot, regenerate the base world, and stand
        up the serving tier + updater. Serves the base model immediately
        (epoch 0); generations arrive as the feed is tailed."""
        manifest = self._feed.read_manifest()
        self._nonce = manifest["nonce"]
        profile, seed = manifest.get("profile"), manifest.get("seed")
        if profile is None or seed is None:
            raise FeedError(
                f"feed {self._feed.directory} manifest lacks profile/seed; "
                "it was not published by a serve-http --ship-feed primary"
            )
        config = PROFILES[profile].with_seed(seed)
        if manifest.get("query_log"):
            # A primary fitted on a non-default log shape (e.g. extra
            # live days) ships the full QueryLogConfig so the follower
            # regenerates the identical base world.
            import dataclasses

            from repro.data.queries import QueryLogConfig

            config = dataclasses.replace(
                config, query_log=QueryLogConfig(**manifest["query_log"])
            )
        market = generate_marketplace(config)
        model = load_model(self._feed.base_dir)
        cats = load_entity_categories(self._feed.base_dir) or {
            e.entity_id: e.category_id for e in market.catalog.entities
        }
        inc = IncrementalShoal.from_model(
            model,
            entity_categories=cats,
            retrain_every=int(manifest.get("retrain_every", 7)),
        )

        if self._n_shards > 1:
            self._inner = ClusterBackend.from_model(
                model,
                self._n_shards,
                n_replicas=self._n_replicas,
                entity_categories=cats,
                cache_size=self._cache_size,
            )
        else:
            self._inner = ServiceBackend.from_model(
                model,
                entity_categories=cats,
                cache_size=self._cache_size,
            )

        probes = [
            q.text
            for q in market.query_log.queries
            if q.intent_kind == "scenario"
        ][:4]
        baseline = Generation(
            number=0,
            model=model,
            entity_categories=cats,
            last_day=market.query_log.days()[-1],
        )
        self._switch = GenerationSwitch(
            probe_queries=probes, probe_k=self._probe_k, baseline=baseline
        ).attach(self._inner, name=self.follower_id)

        self._pipe = _FeedPipe(self._workdir)
        self._updater = StreamingUpdater(
            inc,
            self._pipe,  # type: ignore[arg-type] - duck-typed pipe
            switch=None,  # staged: swaps happen on epoch broadcast only
            generations_dir=self._workdir / "generations",
            min_batch_events=1,
            max_day_skew=int(manifest.get("max_day_skew", 2)),
            on_generation=self._stage_generation,
        )
        self._updater.seed_log(market.query_log)
        self._backend = FollowerBackend(self, self._inner)
        return self._backend

    # -- feed tailing --------------------------------------------------

    def _sync_feed(self) -> None:
        assert self._pipe is not None and self._nonce is not None
        self._feed.check_nonce(self._nonce)
        segment_index = self._feed.read_segment_index()
        self._feed_segment_count = len(segment_index)
        for entry in segment_index:
            name = entry["name"]
            if name in self._loaded_segments:
                continue
            raw = (self._feed.segments_dir / name).read_bytes()
            digest = hashlib.sha256(raw).hexdigest()
            if digest != entry["sha256"]:
                raise FeedError(
                    f"shipped segment {name} checksum mismatch "
                    f"({digest[:12]} != {entry['sha256'][:12]})"
                )
            events: List[IngestEvent] = []
            for line in raw.splitlines():
                if not line:
                    continue
                try:
                    events.append(WriteAheadLog._decode_line(line))
                except WalCorruption as exc:
                    raise FeedError(
                        f"corrupt record in shipped segment {name}: {exc}"
                    ) from exc
            self._pipe.extend_events(events, int(entry["max_seq"]))
            self._loaded_segments[name] = digest
            self._feed_max_seq = max(
                self._feed_max_seq, int(entry["max_seq"])
            )
        generation_index = self._feed.read_generation_index()
        self._feed_generation_count = len(generation_index)
        self._feed_boundary_seq = max(
            (int(e["applied_seq"]) for e in generation_index), default=0
        )
        self._pipe.set_targets(generation_index)

    def _stage_generation(self, generation: Generation) -> None:
        """``on_generation`` hook: fingerprint + stage, never serve."""
        if generation.snapshot_dir is None:
            raise FeedError("follower updater ran without generations_dir")
        fingerprint = snapshot_fingerprint(generation.snapshot_dir)
        with self._lock:
            self._staged[generation.number] = generation
            self._fingerprints[generation.number] = fingerprint
            while len(self._staged) > STAGE_DEPTH:
                self._staged.popitem(last=False)
            while len(self._fingerprints) > STAGE_DEPTH:
                self._fingerprints.popitem(last=False)
            for entry in self._feed.read_generation_index():
                if int(entry["number"]) == generation.number:
                    if entry["fingerprint"] != fingerprint:
                        self._divergent = True
                        self._last_error = (
                            f"generation {generation.number} rebuilt with "
                            f"fingerprint {fingerprint[:12]} but primary "
                            f"shipped {entry['fingerprint'][:12]}"
                        )
                    break

    # -- epoch handling ------------------------------------------------

    def _apply_epoch(self) -> bool:
        epoch = self._feed.read_epoch()
        if epoch is None:
            return False
        number = int(epoch.get("epoch", 0))
        target = int(epoch.get("generation", 0))
        with self._lock:
            if number <= self._epoch:
                return False
            generation = self._staged.get(target)
            if generation is None:
                return False  # not built yet — retry next poll
            fingerprint = self._fingerprints.get(target)
            if fingerprint != epoch.get("fingerprint"):
                self._divergent = True
                self._last_error = (
                    f"refusing epoch {number}: local generation {target} "
                    f"fingerprint {str(fingerprint)[:12]} != broadcast "
                    f"{str(epoch.get('fingerprint'))[:12]}"
                )
                return False
            switch = self._switch
        assert switch is not None
        try:
            with traced(
                "follower.swap",
                tags={
                    "follower": self.follower_id,
                    "epoch": str(number),
                    "generation": str(target),
                },
            ):
                switch.swap(generation)
        except SwapError as exc:
            # The switch already rolled the tier back to what it was
            # serving; record the epoch as seen so one bad broadcast
            # cannot wedge the follower in a swap loop.
            with self._lock:
                self._swap_failures += 1
                self._healthy = False
                self._epoch = number
                self._last_error = f"epoch {number} swap failed: {exc}"
            return False
        with self._lock:
            self._epoch = number
            self._serving_generation = target
            self._epoch_swaps += 1
            self._healthy = True
        return True

    # -- reporting -----------------------------------------------------

    def _publish_report(self) -> None:
        assert self._updater is not None and self._pipe is not None
        with self._lock:
            report = {
                "follower_id": self.follower_id,
                "applied_seq": self._updater.applied_seq,
                "built_generation": self._updater.current_generation,
                "serving_generation": self._serving_generation,
                "epoch": self._epoch,
                "healthy": self._healthy,
                "divergent": self._divergent,
                "swap_failures": self._swap_failures,
                "fingerprints": {
                    str(n): fp for n, fp in self._fingerprints.items()
                },
                "ts": time.time(),
            }
        self._feed.write_follower_report(self.follower_id, report)

    # -- drive ---------------------------------------------------------

    def run_once(self, timeout_s: float = 0.0) -> Dict[str, Any]:
        """One replication cycle: tail feed, build, maybe swap, report."""
        if self._updater is None:
            raise RuntimeError("bootstrap() the follower before running it")
        built = 0
        try:
            self._sync_feed()
            # Build every boundary the feed already covers, not one per
            # poll: catch-up after a cold start must not be rate-limited
            # by the poll interval.
            while True:
                with traced(
                    "follower.replay",
                    tags={"follower": self.follower_id},
                ) as span:
                    generation = self._updater.run_once(timeout_s=timeout_s)
                    if generation is not None:
                        span.tag("generation", str(generation.number))
                if generation is None:
                    break
                built += 1
            swapped = self._apply_epoch()
        except FeedError as exc:
            with self._lock:
                self._healthy = False
                self._last_error = str(exc)
            swapped = False
        self._publish_report()
        return {"built": built, "swapped": swapped}

    def catch_up(self, timeout_s: float = 60.0) -> int:
        """Drive cycles until the feed is fully consumed (or timeout).

        Returns the number of generations built. "Fully consumed" means
        every generation in ``GENERATIONS.json`` is built and any
        pending epoch broadcast has been applied."""
        deadline = time.monotonic() + timeout_s
        built = 0
        while time.monotonic() < deadline:
            out = self.run_once()
            built += out["built"]
            assert self._pipe is not None
            if self._pipe.pending_target() is None and not out["swapped"]:
                epoch = self._feed.read_epoch()
                if epoch is None or int(epoch["epoch"]) <= self._epoch:
                    break
            time.sleep(0.01)
        return built

    def start(self) -> "Follower":
        if self._thread is not None:
            raise RuntimeError("follower already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    out = self.run_once()
                except Exception as exc:  # noqa: BLE001 - keep serving
                    self._last_error = f"{type(exc).__name__}: {exc}"
                    out = {"built": 0, "swapped": False}
                if not out["built"] and not out["swapped"]:
                    self._stop.wait(self._poll_interval_s)

        self._thread = threading.Thread(
            target=loop, name=f"shoal-{self.follower_id}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None

    # -- introspection -------------------------------------------------

    @property
    def backend(self) -> Optional["FollowerBackend"]:
        return self._backend

    @property
    def switch(self) -> Optional[GenerationSwitch]:
        return self._switch

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._epoch

    @property
    def serving_generation(self) -> int:
        with self._lock:
            return self._serving_generation

    def fingerprint_of(self, number: int) -> Optional[str]:
        with self._lock:
            return self._fingerprints.get(number)

    def stats(self) -> Dict[str, Any]:
        applied = (
            self._updater.applied_seq if self._updater is not None else 0
        )
        built = (
            self._updater.current_generation
            if self._updater is not None
            else 0
        )
        with self._lock:
            return {
                "role": "follower",
                "follower_id": self.follower_id,
                "feed_dir": str(self._feed.directory),
                "epoch": self._epoch,
                "serving_generation": self._serving_generation,
                "built_generation": built,
                "applied_seq": applied,
                "feed_seq": self._feed_max_seq,
                # Lag against the *published* frontier: segments shipped
                # past the last generation boundary are not applicable
                # yet (the primary itself has not cut them into a
                # generation), so they are not "behind".
                "seqs_behind": max(0, self._feed_boundary_seq - applied),
                "segments_behind": max(
                    0, self._feed_segment_count - len(self._loaded_segments)
                ),
                "generations_behind": max(
                    0, self._feed_generation_count - built
                ),
                "epoch_swaps": self._epoch_swaps,
                "swap_failures": self._swap_failures,
                "healthy": self._healthy,
                "divergent": self._divergent,
                **(
                    {"last_error": self._last_error}
                    if self._last_error
                    else {}
                ),
            }


class FollowerBackend(ShoalBackend):
    """The follower's serving tier behind the standard backend contract.

    Reads delegate to the wrapped inner tier (a :class:`ServiceBackend`
    or :class:`ClusterBackend` the follower hot-swaps on epoch bumps);
    ``stats()`` folds in replication lag. ``replicated_backend`` is the
    duck-typed unwrap hook :func:`repro.streaming.rollout._classify`
    uses so a :class:`GenerationSwitch` attached to this backend swaps
    the inner engine (and dedups against a direct attachment of it).
    """

    kind = "follower"

    def __init__(self, follower: Follower, inner: ShoalBackend):
        self._follower = follower
        self._inner = inner

    @property
    def replicated_backend(self) -> ShoalBackend:
        return self._inner

    @property
    def follower(self) -> Follower:
        return self._follower

    def search(self, request: SearchRequest) -> SearchResponse:
        return self._inner.search(request)

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        return self._inner.recommend(request)

    def batch(self, request: BatchRequest) -> BatchResponse:
        return self._inner.batch(request)

    def health(self) -> Dict[str, Any]:
        out = self._inner.health()
        out["backend"] = self.kind
        out["replication"] = {
            "epoch": self._follower.epoch,
            "healthy": self._follower.stats()["healthy"],
        }
        return out

    def stats(self) -> Dict[str, Any]:
        out = self._inner.stats()
        out["backend"] = self.kind
        out["replication"] = self._follower.stats()
        return out

    def categories_of_topic(self, topic_id: int) -> List[int]:
        return self._inner.categories_of_topic(topic_id)  # type: ignore[attr-defined]

    def cache_stats(self):
        return self._inner.cache_stats()  # type: ignore[attr-defined]

    def invalidate_cache(self) -> None:
        self._inner.invalidate_cache()  # type: ignore[attr-defined]

    def close(self) -> None:
        self._follower.stop()
        self._inner.close()
