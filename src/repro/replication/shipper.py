"""Primary-side publisher: closed WAL segments + generation deltas.

The :class:`SegmentShipper` hangs off the primary's
:class:`~repro.streaming.updater.StreamingUpdater` via its
``on_generation`` hook. Every time the updater advances a generation
the shipper:

1. **rolls the primary WAL** (:meth:`WriteAheadLog.roll`) so the events
   that produced this generation land in a *closed* — hence immutable,
   hence shippable — segment. This bounds publish lag deterministically:
   a follower never waits for an active segment to fill up;
2. **copies every not-yet-shipped closed segment** into the feed with a
   SHA-256 recorded in ``SEGMENTS.json`` (followers verify the copy);
3. **encodes a snapshot delta** for the new generation against the
   previous one (``kind="full"`` fallback if the previous snapshot
   directory has vanished) and appends it to ``GENERATIONS.json``
   together with the generation's answer-surface fingerprint — the
   value the epoch coordinator compares across followers.

Shipping happens on the updater's batch thread, *after* the swap and
*before* WAL compaction, so the segments backing a just-published
generation are guaranteed to still exist when copied.

The shipper remembers the feed nonce minted at :meth:`initialise` time
and re-verifies it on every publish, refusing to write into a feed that
some other primary re-initialised underneath it.
"""

from __future__ import annotations

import hashlib
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro._util import atomic_write_bytes
from repro.obs.tracer import traced
from repro.replication.delta import encode_delta, snapshot_fingerprint
from repro.replication.feed import Feed, FeedError
from repro.streaming.rollout import Generation
from repro.streaming.wal import WriteAheadLog


class SegmentShipper:
    """Publish a primary's WAL segments and generation deltas to a feed.

    Parameters
    ----------
    wal:
        The primary's write-ahead log (rolled on publish).
    feed_dir:
        Feed directory; created/initialised by :meth:`initialise`.
    base_snapshot_dir:
        The snapshot the primary booted from (``--load``); copied into
        the feed's ``base/`` so followers can bootstrap their own
        incremental pipeline from byte-identical weights.
    manifest:
        Deterministic-rebuild parameters for followers — must include
        ``profile``, ``seed``, ``base_last_day``, ``retrain_every``,
        ``max_day_skew``, ``min_batch_events``.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        feed_dir: Union[str, Path],
        *,
        base_snapshot_dir: Union[str, Path],
        manifest: Dict[str, Any],
    ):
        self._wal = wal
        self._feed = Feed(feed_dir)
        self._base_snapshot_dir = Path(base_snapshot_dir)
        self._manifest_extra = dict(manifest)
        self._nonce: Optional[str] = None
        self._lock = threading.Lock()
        self._shipped_segments: Dict[str, str] = {}  # name -> sha256
        self._prev_snapshot: Optional[Path] = None
        self._prev_generation = 0
        self._segment_entries: list = []
        self._generation_entries: list = []
        self._stats: Dict[str, Any] = {
            "segments_shipped": 0,
            "generations_published": 0,
            "delta_bytes": 0,
            "full_bytes": 0,
            "segment_bytes": 0,
            "last_publish_s": None,
            "errors": 0,
        }

    @property
    def feed(self) -> Feed:
        return self._feed

    def initialise(self) -> Dict[str, Any]:
        """Create the feed: manifest, base snapshot copy, empty indexes."""
        with self._lock:
            manifest = self._feed.initialise(self._manifest_extra)
            self._nonce = manifest["nonce"]
            # Stale state from a previous feed incarnation must not leak
            # into this one: indexes restart empty, the epoch broadcast
            # and follower reports are cleared.
            self._feed.write_segment_index([])
            self._feed.write_generation_index([])
            if self._feed.epoch_path.exists():
                self._feed.epoch_path.unlink()
            for stale in self._feed.followers_dir.glob("*.json"):
                stale.unlink()
            for src in sorted(self._base_snapshot_dir.iterdir()):
                if src.is_file() and not src.name.endswith(".tmp"):
                    atomic_write_bytes(
                        self._feed.base_dir / src.name, src.read_bytes()
                    )
            manifest["base_fingerprint"] = snapshot_fingerprint(
                self._feed.base_dir
            )
            return manifest

    # -- publishing ----------------------------------------------------

    def publish_generation(self, generation: Generation) -> Dict[str, Any]:
        """Ship everything needed for followers to rebuild ``generation``.

        This is the :class:`StreamingUpdater` ``on_generation`` hook.
        Exceptions are contained (counted in ``stats()['errors']``) so a
        sick feed volume degrades replication, never the primary's
        ingest path.
        """
        try:
            return self._publish(generation)
        except (FeedError, OSError) as exc:
            with self._lock:
                self._stats["errors"] += 1
                self._stats["last_error"] = str(exc)
            return {"published": False, "error": str(exc)}

    def _publish(self, generation: Generation) -> Dict[str, Any]:
        started = time.monotonic()
        with traced(
            "replication.publish",
            tags={"generation": str(generation.number)},
        ), self._lock:
            if self._nonce is None:
                raise FeedError("shipper used before initialise()")
            self._feed.check_nonce(self._nonce)

            # 1. Close the active segment so this generation's events
            #    are shippable right now.
            self._wal.roll()

            # 2. Copy any closed segments we have not shipped yet.
            for meta in self._wal.closed_segments():
                path: Path = meta["path"]
                if path.name in self._shipped_segments:
                    continue
                raw = path.read_bytes()
                digest = hashlib.sha256(raw).hexdigest()
                atomic_write_bytes(self._feed.segments_dir / path.name, raw)
                self._shipped_segments[path.name] = digest
                self._segment_entries.append(
                    {
                        "name": path.name,
                        "sha256": digest,
                        "size": len(raw),
                        "n_events": meta["n_events"],
                        "min_seq": meta["min_seq"],
                        "max_seq": meta["max_seq"],
                        "max_day": meta["max_day"],
                    }
                )
                self._stats["segments_shipped"] += 1
                self._stats["segment_bytes"] += len(raw)
            self._feed.write_segment_index(list(self._segment_entries))

            # 3. Encode and publish the snapshot delta.
            entry = self._publish_delta(generation)
            self._generation_entries.append(entry)
            self._feed.write_generation_index(list(self._generation_entries))

            self._stats["generations_published"] += 1
            self._stats["last_publish_s"] = time.monotonic() - started
            return dict(entry)

    def _publish_delta(self, generation: Generation) -> Dict[str, Any]:
        snapshot_dir = (
            Path(generation.snapshot_dir) if generation.snapshot_dir else None
        )
        if snapshot_dir is None or not snapshot_dir.is_dir():
            raise FeedError(
                f"generation {generation.number} has no snapshot directory; "
                "run the updater with generations_dir= to enable shipping"
            )
        base_dir: Optional[Path]
        base_generation: Optional[int]
        if self._prev_snapshot is not None and self._prev_snapshot.is_dir():
            base_dir, base_generation = self._prev_snapshot, self._prev_generation
        elif self._prev_generation == 0 and self._feed.base_dir.is_dir():
            base_dir, base_generation = self._feed.base_dir, 0
        else:
            base_dir, base_generation = None, None  # full fallback

        name = f"gen-{generation.number:05d}.delta"
        out_path = self._feed.generations_dir / name
        header = encode_delta(
            snapshot_dir,
            out_path,
            base_dir=base_dir,
            generation=generation.number,
            base_generation=base_generation,
            applied_seq=generation.applied_seq,
            last_day=generation.last_day,
        )
        self._prev_snapshot = snapshot_dir
        self._prev_generation = generation.number
        self._stats["delta_bytes"] += header["bytes"]
        self._stats["full_bytes"] += header["full_bytes"]
        return {
            "number": generation.number,
            "applied_seq": generation.applied_seq,
            "last_day": generation.last_day,
            "fingerprint": header["fingerprint"],
            "kind": header["kind"],
            "base_generation": header["base_generation"],
            "file": name,
            "bytes": header["bytes"],
            "full_bytes": header["full_bytes"],
        }

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out = dict(self._stats)
            out["feed_dir"] = str(self._feed.directory)
            out["role"] = "primary"
            return out
