"""Query routing over a sharded serving cluster.

:class:`ClusterRouter` is the single front door of a shard set: it owns
a token → shard index (derived from each shard's BM25 posting lists),
fans a query out to the shards that could possibly score it, merges the
per-shard top-k, and picks the least-loaded replica within each shard.

**Answer transparency.** Every shard scores its local postings against
the global collection statistics (see :mod:`repro.serving.sharding`),
so a document's score is bit-identical to the unsharded service's. The
unsharded service orders hits by descending score with ties broken
toward the lower document index, and its documents are laid out in
ascending topic-id order — so merging shard results by
``(-score, topic_id)`` reproduces the global ordering exactly. Shards
the router skips contain no query token, hence only zero-scoring
documents the unsharded service would have dropped too. The result:
``ClusterRouter.search_topics`` == ``ShoalService.search_topics``,
byte for byte, for every shard and replica count.

**Refresh.** :meth:`refresh` re-partitions a new model and rebuilds
only the shards whose content fingerprint changed, *provided* the
global inputs (collection statistics, correlation graph) are unchanged
— BM25 statistics are corpus-wide, so when any document anywhere
changes, every shard's scores move and every cache must drop. Replica
sets are swapped atomically behind a single state reference, so
readers on other threads always see a consistent cluster.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.api.cache import CacheStats, LRUCache as _LRUCache
from repro.api.context import current_context
from repro.core.correlation import CorrelationGraph
from repro.core.pipeline import ShoalModel
from repro.core.serving import (
    CategoryHit,
    ShoalService,
    TopicHit,
)
from repro.core.taxonomy import Topic
from repro.serving.sharding import (
    ShardPlanner,
    ShardSet,
    shard_fingerprint,
)
from repro.obs.tracer import traced
from repro.serving.stats import LatencySummary, RequestStats
from repro.text.bm25 import CollectionStats
from repro.text.tokenizer import Tokenizer

__all__ = ["ClusterRouter", "ClusterStats", "ShardReplicas"]


def _checkpoint() -> None:
    """Cancellation check point between units of shard work.

    The router polls the ambient :class:`~repro.api.context.RequestContext`
    before each shard probe and between batch items, so a request whose
    deadline blew (or whose hedge twin already answered) stops costing
    replica time at the next boundary instead of running to completion.
    """
    ctx = current_context()
    if ctx is not None:
        ctx.raise_if_done()


class ShardReplicas:
    """One shard's replica group with least-loaded request placement.

    The first replica builds the serving indexes; the rest share them
    read-only and differ only in their private query caches (see
    :meth:`ShoalService.replica`). ``acquire`` picks the replica with
    the fewest in-flight requests, breaking ties by total requests
    served and then by replica index — so sequential traffic
    round-robins and concurrent bursts spread out.
    """

    def __init__(
        self,
        shard_index: int,
        service: ShoalService,
        n_replicas: int,
        fingerprint: str,
    ):
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        self.shard_index = shard_index
        self.fingerprint = fingerprint
        self.tokens: FrozenSet[str] = service.posting_tokens()
        self._services = [service] + [
            service.replica() for _ in range(n_replicas - 1)
        ]
        self._inflight = [0] * n_replicas
        self._served = [0] * n_replicas
        self._busy_seconds = [0.0] * n_replicas
        self._lock = threading.Lock()

    @property
    def n_replicas(self) -> int:
        return len(self._services)

    @property
    def n_topics(self) -> int:
        return len(self._services[0].taxonomy)

    def replica_request_counts(self) -> List[int]:
        """Total requests each replica has served (index-aligned)."""
        with self._lock:
            return list(self._served)

    def acquire(self) -> Tuple[int, ShoalService]:
        with self._lock:
            idx = min(
                range(len(self._services)),
                key=lambda i: (self._inflight[i], self._served[i], i),
            )
            self._inflight[idx] += 1
            self._served[idx] += 1
            return idx, self._services[idx]

    def release(self, idx: int, busy_seconds: float = 0.0) -> None:
        with self._lock:
            self._inflight[idx] -= 1
            self._busy_seconds[idx] += busy_seconds

    def busy_seconds(self) -> float:
        """Cumulative service time spent inside this shard's replicas.

        In a real deployment each shard runs on its own node, so the
        cluster's wall-clock over a workload is bounded by its busiest
        shard, not the sum — benches use these accumulators to model
        aggregate cluster throughput from a single-process replay.
        """
        with self._lock:
            return sum(self._busy_seconds)

    def cache_stats(self) -> CacheStats:
        """Summed cache counters across this shard's replicas."""
        return _sum_cache_stats(
            [s.cache_stats() for s in self._services]
        )

    def invalidate_caches(self) -> None:
        for s in self._services:
            s.invalidate_cache()

    def services(self) -> List[ShoalService]:
        return list(self._services)


def _sum_cache_stats(stats: Sequence[CacheStats]) -> CacheStats:
    return CacheStats(
        hits=sum(s.hits for s in stats),
        misses=sum(s.misses for s in stats),
        size=sum(s.size for s in stats),
        max_size=sum(s.max_size for s in stats),
        invalidations=sum(s.invalidations for s in stats),
        expirations=sum(s.expirations for s in stats),
    )


@dataclass(frozen=True)
class ClusterStats:
    """Point-in-time cluster counters: caching + request latency."""

    n_shards: int
    n_replicas: int
    shard_caches: Tuple[CacheStats, ...]
    front_cache: CacheStats
    cache: CacheStats
    latency: LatencySummary

    def summary(self) -> str:
        return (
            f"cluster: {self.n_shards} shards x {self.n_replicas} "
            f"replicas; {self.cache.summary()}; {self.latency.summary()}"
        )


class _RouterState:
    """Immutable-by-convention bundle swapped atomically on refresh.

    The front cache travels with the state: a request that started
    against the previous cluster writes its result into the *previous*
    state's front cache, which nobody reads any more — so a refresh can
    never be polluted by in-flight stale answers.
    """

    def __init__(
        self,
        shards: List[ShardReplicas],
        collection_stats: CollectionStats,
        correlations: CorrelationGraph,
        front: _LRUCache,
    ):
        self.shards = shards
        self.collection_stats = collection_stats
        self.correlations = correlations
        self.front = front
        by_token: Dict[str, List[int]] = {}
        for shard in shards:
            for tok in shard.tokens:
                by_token.setdefault(tok, []).append(shard.shard_index)
        self.shards_with_token: Dict[str, Tuple[int, ...]] = {
            tok: tuple(sorted(ids)) for tok, ids in by_token.items()
        }
        self.shard_of_topic: Dict[int, int] = {}
        for shard in shards:
            for t in shard.services()[0].taxonomy.topics():
                self.shard_of_topic[t.topic_id] = shard.shard_index


class ClusterRouter:
    """Serves the four demo scenarios over a sharded cluster.

    Construct with :meth:`from_model` (shard a fitted model in memory),
    :meth:`from_snapshot` (load a cluster snapshot directory written by
    :meth:`ShardPlanner.save`), or directly from a :class:`ShardSet`.

    ``cache_size`` is the per-replica query-cache budget — the
    scale-out resource model is "every node brings its own cache", so
    aggregate cache capacity grows with the cluster. The router node
    itself keeps a *front* result cache of the same budget, keyed on
    the raw ``(query, k)`` pair: a front hit skips tokenisation,
    routing and every shard probe — the edge-cache tier of a real
    serving stack.
    """

    def __init__(
        self,
        shard_set: ShardSet,
        *,
        n_replicas: int = 1,
        cache_size: int = 4096,
        tokenizer: Optional[Tokenizer] = None,
    ):
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        self._tokenizer = tokenizer or Tokenizer()
        self._n_replicas = n_replicas
        self._cache_size = cache_size
        self._planner = ShardPlanner(shard_set.n_shards, self._tokenizer)
        self._stats = RequestStats()
        self._retired_lock = threading.Lock()
        self._retired_hits = 0
        self._retired_misses = 0
        self._retired_invalidations = 0
        self._state = self._build_state(shard_set)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_model(
        cls,
        model: ShoalModel,
        n_shards: int,
        *,
        n_replicas: int = 1,
        entity_categories: Optional[Dict[int, int]] = None,
        cache_size: int = 4096,
        tokenizer: Optional[Tokenizer] = None,
    ) -> "ClusterRouter":
        """Shard a fitted model and stand up the cluster in memory."""
        tok = tokenizer or Tokenizer()
        shard_set = ShardPlanner(n_shards, tok).partition(
            model, entity_categories
        )
        return cls(
            shard_set,
            n_replicas=n_replicas,
            cache_size=cache_size,
            tokenizer=tok,
        )

    @classmethod
    def from_snapshot(
        cls,
        directory: Union[str, Path],
        *,
        n_replicas: int = 1,
        cache_size: int = 4096,
        tokenizer: Optional[Tokenizer] = None,
    ) -> "ClusterRouter":
        """Warm-start the whole cluster from a cluster snapshot dir."""
        return cls(
            ShardPlanner.load(directory),
            n_replicas=n_replicas,
            cache_size=cache_size,
            tokenizer=tokenizer,
        )

    def _build_state(
        self,
        shard_set: ShardSet,
        reuse: Optional[_RouterState] = None,
    ) -> _RouterState:
        """Build router state, reusing unchanged shards from ``reuse``.

        A shard carries over (warm cache and all) only when its content
        fingerprint AND both global inputs are unchanged; anything else
        gets a freshly built replica group, with the old group's cache
        counters folded into the retired totals so aggregate stats stay
        monotonic.
        """
        globals_unchanged = reuse is not None and (
            reuse.collection_stats == shard_set.collection_stats
            and _correlations_equal(
                reuse.correlations, _shard_set_correlations(shard_set)
            )
        )
        shards: List[ShardReplicas] = []
        for i in range(shard_set.n_shards):
            fp = shard_fingerprint(
                shard_set.models[i], shard_set.entity_categories[i]
            )
            old = (
                reuse.shards[i]
                if reuse is not None and i < len(reuse.shards)
                else None
            )
            if globals_unchanged and old is not None and old.fingerprint == fp:
                shards.append(old)
                continue
            if old is not None:
                self._retire(old)
            service = ShoalService(
                shard_set.models[i],
                self._tokenizer,
                cache_size=self._cache_size,
                entity_categories=shard_set.entity_categories[i],
                collection_stats=shard_set.collection_stats,
            )
            shards.append(
                ShardReplicas(i, service, self._n_replicas, fp)
            )
        if reuse is not None:
            for old in reuse.shards[shard_set.n_shards:]:
                self._retire(old)
        any_rebuilt = reuse is None or len(shards) != len(
            reuse.shards
        ) or any(
            s is not o for s, o in zip(shards, reuse.shards)
        )
        if reuse is not None and not any_rebuilt:
            front = reuse.front
        else:
            # Any rebuilt shard can change merged answers: the front
            # cache drops with it, its counters folded into the totals.
            if reuse is not None:
                stats = reuse.front.stats()
                with self._retired_lock:
                    self._retired_hits += stats.hits
                    self._retired_misses += stats.misses
                    self._retired_invalidations += (
                        stats.invalidations + 1
                    )
            front = _LRUCache(self._cache_size)
        return _RouterState(
            shards,
            shard_set.collection_stats,
            _shard_set_correlations(shard_set),
            front,
        )

    def _retire(self, shard: ShardReplicas) -> None:
        """Fold a replaced shard's cache counters into the running totals."""
        stats = shard.cache_stats()
        with self._retired_lock:
            self._retired_hits += stats.hits
            self._retired_misses += stats.misses
            # A replaced shard is one big invalidation of its caches.
            self._retired_invalidations += stats.invalidations + 1

    def refresh(
        self,
        model: ShoalModel,
        entity_categories: Optional[Dict[int, int]] = None,
    ) -> List[int]:
        """Re-partition a new model; rebuild only the affected shards.

        Returns the indices of the shards that were rebuilt. Shards
        whose pruned content is unchanged — and whose global inputs
        (collection statistics, correlations) are unchanged — keep
        their replicas and warm caches. The new state is swapped in
        behind one reference, so concurrent readers see either the old
        or the new cluster, never a mix.
        """
        old = self._state
        new_set = self._planner.partition(model, entity_categories)
        new_state = self._build_state(new_set, reuse=old)
        rebuilt = [
            s.shard_index
            for i, s in enumerate(new_state.shards)
            if i >= len(old.shards) or s is not old.shards[i]
        ]
        self._state = new_state
        return rebuilt

    # -- cluster shape -------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._state.shards)

    @property
    def n_replicas(self) -> int:
        return self._n_replicas

    @property
    def cache_size(self) -> int:
        """Per-node cache budget (front cache and every replica)."""
        return self._cache_size

    @property
    def plan_summary(self) -> str:
        state = self._state
        lines = []
        for shard in state.shards:
            lines.append(
                f"shard {shard.shard_index}: {shard.n_topics} topics, "
                f"{len(shard.tokens)} index tokens, "
                f"{shard.n_replicas} replicas"
            )
        return "\n".join(lines)

    def shards(self) -> List[ShardReplicas]:
        return list(self._state.shards)

    # -- scenario A: Query → Topic ------------------------------------------

    def search_topics(self, query: str, k: int = 5) -> List[TopicHit]:
        """Cluster-wide keyword search; identical to the unsharded answer."""
        t0 = time.perf_counter()
        hits = self._serve_search(self._state, query, k)
        self._stats.record(time.perf_counter() - t0)
        return hits

    def _serve_search(
        self, state: _RouterState, query: str, k: int
    ) -> List[TopicHit]:
        """Front cache → tokenise → fan out, all against one state."""
        key = (query, k)
        cached = state.front.get(key)
        if cached is not _LRUCache._MISS:
            return list(cached)
        with traced("router.search", tags={"front_cache": "miss"}):
            tokens = tuple(self._tokenizer.tokenize(query))
            hits = self._search_tokens(state, tokens, k)
        state.front.put(key, tuple(hits))
        return hits

    def _search_tokens(
        self, state: _RouterState, tokens: Tuple[str, ...], k: int
    ) -> List[TopicHit]:
        if not tokens:
            return []
        candidate_ids: set = set()
        for tok in tokens:
            candidate_ids.update(state.shards_with_token.get(tok, ()))
        merged: List[TopicHit] = []
        for i in sorted(candidate_ids):
            _checkpoint()
            shard = state.shards[i]
            ridx, service = shard.acquire()
            t0 = time.perf_counter()
            try:
                with traced(
                    "router.shard_probe",
                    tags={"shard": str(i), "replica": str(ridx)},
                ):
                    merged.extend(service.search_tokens(tokens, k))
            finally:
                shard.release(ridx, time.perf_counter() - t0)
        # Global doc order is ascending topic id, and the unsharded
        # index breaks score ties toward the lower doc index — so this
        # sort reproduces the unsharded ordering exactly.
        merged.sort(key=lambda h: (-h.score, h.topic_id))
        return merged[:k]

    def search_topics_batch(
        self, queries: Sequence[str], k: int = 5
    ) -> List[List[TopicHit]]:
        """One result list per query, in order."""
        state = self._state
        results = []
        for q in queries:
            _checkpoint()
            t0 = time.perf_counter()
            results.append(self._serve_search(state, q, k))
            self._stats.record(time.perf_counter() - t0)
        return results

    def best_topic(self, query: str) -> Optional[Topic]:
        state = self._state
        hits = self._serve_search(state, query, 1)
        if not hits:
            return None
        return self._topic_in(state, hits[0].topic_id)

    # -- topic-local scenarios (B, C) ---------------------------------------

    @staticmethod
    def _shard_in(state: _RouterState, topic_id: int) -> ShardReplicas:
        try:
            return state.shards[state.shard_of_topic[topic_id]]
        except KeyError:
            raise KeyError(f"topic {topic_id} is not in any shard")

    @staticmethod
    def _topic_in(state: _RouterState, topic_id: int) -> Topic:
        shard = ClusterRouter._shard_in(state, topic_id)
        return shard.services()[0].taxonomy.topic(topic_id)

    def _shard_of(self, topic_id: int) -> ShardReplicas:
        return self._shard_in(self._state, topic_id)

    def topic(self, topic_id: int) -> Topic:
        """The topic object, fetched from its owning shard."""
        return self._topic_in(self._state, topic_id)

    def subtopics(self, topic_id: int) -> List[Topic]:
        shard = self._shard_of(topic_id)
        ridx, service = shard.acquire()
        try:
            return service.subtopics(topic_id)
        finally:
            shard.release(ridx)

    def topic_path(self, topic_id: int) -> List[Topic]:
        shard = self._shard_of(topic_id)
        ridx, service = shard.acquire()
        try:
            return service.topic_path(topic_id)
        finally:
            shard.release(ridx)

    def categories_of_topic(self, topic_id: int) -> List[int]:
        return list(self.topic(topic_id).category_ids)

    def entities_of_topic_category(
        self, topic_id: int, category_id: int
    ) -> List[int]:
        shard = self._shard_of(topic_id)
        ridx, service = shard.acquire()
        try:
            return service.entities_of_topic_category(topic_id, category_id)
        finally:
            shard.release(ridx)

    # -- scenario D: Category → Category ------------------------------------

    def related_categories(
        self, category_id: int, k: int = 8
    ) -> List[CategoryHit]:
        """Correlated categories — the graph is global, not sharded."""
        graph = self._state.correlations
        return [
            CategoryHit(c, s)
            for c, s in graph.related_categories(category_id, k)
        ]

    # -- recommendation ------------------------------------------------------

    def recommend_entities_for_query(
        self, query: str, k: int = 10
    ) -> List[int]:
        """Topic-matched entity slate; identical to the unsharded answer.

        The search and the topic lookup run against one state snapshot,
        so a concurrent refresh can never make the winning topic
        "disappear" mid-request.
        """
        t0 = time.perf_counter()
        state = self._state
        hits = self._serve_search(state, query, 1)
        slate = (
            [] if not hits
            else self._topic_in(state, hits[0].topic_id).entity_ids[:k]
        )
        self._stats.record(time.perf_counter() - t0)
        return slate

    def recommend_batch(
        self, queries: Sequence[str], k: int = 10
    ) -> List[List[int]]:
        state = self._state
        slates: List[List[int]] = []
        for q in queries:
            _checkpoint()
            t0 = time.perf_counter()
            hits = self._serve_search(state, q, 1)
            slates.append(
                [] if not hits
                else self._topic_in(state, hits[0].topic_id).entity_ids[:k]
            )
            self._stats.record(time.perf_counter() - t0)
        return slates

    # -- stats & cache lifecycle ---------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Aggregate cache counters (front + every shard replica),
        cumulative across shard rebuilds."""
        state = self._state
        live = _sum_cache_stats(
            [state.front.stats()]
            + [s.cache_stats() for s in state.shards]
        )
        with self._retired_lock:
            return CacheStats(
                hits=live.hits + self._retired_hits,
                misses=live.misses + self._retired_misses,
                size=live.size,
                max_size=live.max_size,
                invalidations=live.invalidations
                + self._retired_invalidations,
                expirations=live.expirations,
            )

    def front_cache_stats(self) -> CacheStats:
        """Counters of the router's raw-query front cache alone."""
        return self._state.front.stats()

    def request_stats(self) -> LatencySummary:
        return self._stats.summary()

    def shard_busy_seconds(self) -> List[float]:
        """Cumulative per-shard service time (see ShardReplicas.busy_seconds)."""
        return [s.busy_seconds() for s in self._state.shards]

    def reset_request_stats(self) -> None:
        self._stats.reset()

    def cluster_stats(self) -> ClusterStats:
        state = self._state
        return ClusterStats(
            n_shards=len(state.shards),
            n_replicas=self._n_replicas,
            shard_caches=tuple(s.cache_stats() for s in state.shards),
            front_cache=state.front.stats(),
            cache=self.cache_stats(),
            latency=self._stats.summary(),
        )

    def invalidate_caches(self) -> None:
        state = self._state
        state.front.clear()
        for shard in state.shards:
            shard.invalidate_caches()


def _shard_set_correlations(shard_set: ShardSet) -> CorrelationGraph:
    """The (global) correlation graph carried by the shard models."""
    for m in shard_set.models:
        return m.correlations
    raise ValueError("shard set has no shards")


def _correlations_equal(a: CorrelationGraph, b: CorrelationGraph) -> bool:
    if a is b:
        return True
    return (
        a.min_strength == b.min_strength
        and sorted(a.pairs()) == sorted(b.pairs())
    )
