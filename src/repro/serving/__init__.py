"""Scale-out serving: sharding, routing, and traffic replay.

PR 1 made one :class:`~repro.core.serving.ShoalService` fast; this
package turns it into a cluster shaped like the elastic, partitioned
read tiers production taxonomy serving runs on:

* :mod:`~repro.serving.sharding` — :class:`ShardPlanner` partitions a
  fitted model into root-subtree shards, each a pruned model scored
  against the *global* BM25 collection statistics, persistable as a
  directory of per-shard model snapshots;
* :mod:`~repro.serving.router` — :class:`ClusterRouter` fans queries
  out to the shards that can score them, merges per-shard top-k into
  byte-identical unsharded answers, and balances replicas by load;
* :mod:`~repro.serving.replay` — :class:`TrafficReplayer` replays
  Zipf-skewed steady/bursty/drifting/adversarial workloads against a
  service or cluster and reports QPS with p50/p95/p99 latencies;
* :mod:`~repro.serving.stats` — the thread-safe request recorders the
  router and replayer share.
"""

from repro.serving.replay import (
    ReplayReport,
    TrafficReplayer,
    WorkloadConfig,
    WORKLOAD_PROFILES,
    build_workload,
)
from repro.serving.router import ClusterRouter, ClusterStats, ShardReplicas
from repro.serving.sharding import (
    CLUSTER_FORMAT_VERSION,
    CLUSTER_SNAPSHOT_KIND,
    ShardAssignment,
    ShardPlan,
    ShardPlanner,
    ShardSet,
    build_shard_model,
    plan_shards,
    shard_fingerprint,
)
from repro.serving.stats import LatencySummary, RequestStats, percentile

__all__ = [
    "ClusterRouter",
    "ClusterStats",
    "ShardReplicas",
    "ShardAssignment",
    "ShardPlan",
    "ShardPlanner",
    "ShardSet",
    "plan_shards",
    "build_shard_model",
    "shard_fingerprint",
    "CLUSTER_SNAPSHOT_KIND",
    "CLUSTER_FORMAT_VERSION",
    "TrafficReplayer",
    "ReplayReport",
    "WorkloadConfig",
    "WORKLOAD_PROFILES",
    "build_workload",
    "LatencySummary",
    "RequestStats",
    "percentile",
]
