"""Partitioning a fitted model into serving shards.

The unit of sharding is a **root subtree** of the taxonomy: every topic
travels with its ancestors/descendants, so hierarchy navigation
(scenario B), category listing (scenario C) and entity recommendation
never cross a shard boundary. Roots are balanced across shards by
entity count (greedy, deterministic).

Answer transparency is the design constraint everything here serves:
the cluster must return *byte-identical* results to the unsharded
:class:`~repro.core.serving.ShoalService`. BM25 scores depend on three
corpus-wide statistics (document count, per-token document frequency,
average document length), so each shard's pruned index is built with
its own local postings but the **global**
:class:`~repro.text.bm25.CollectionStats`, computed here over the full
model's documents via the exact code path the service uses. The
correlation graph is global (categories are not sharded) and is kept
whole in every shard model.

On disk, a cluster snapshot is a directory of per-shard PR-2 model
snapshots plus the shared collection statistics, sealed by a cluster
manifest written last:

=============================== ==========================================
``CLUSTER_MANIFEST.json``       kind, format version, shard directory
                                names, the shard plan, metadata
``collection_stats.json``       global n_documents / average document
                                length / per-token document frequencies
``shard-0000/`` …               one model snapshot per shard (see
                                :mod:`repro.store.persistence.snapshot`),
                                each with its entity-category sidecar
=============================== ==========================================
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.clustering.dendrogram import Dendrogram
from repro.clustering.parallel_hac import ParallelHACResult
from repro.core.pipeline import ShoalModel
from repro.core.serving import build_topic_documents
from repro.core.taxonomy import Taxonomy, Topic
from repro.graph.bipartite import QueryItemGraph
from repro.graph.sparse import SparseGraph
from repro.text.bm25 import CollectionStats
from repro.text.tokenizer import Tokenizer
from repro.text.vocab import Vocabulary, VocabularyBuildConfig
from repro.text.word2vec import WordEmbeddings

__all__ = [
    "CLUSTER_MANIFEST",
    "CLUSTER_SNAPSHOT_KIND",
    "CLUSTER_FORMAT_VERSION",
    "ShardAssignment",
    "ShardPlan",
    "ShardSet",
    "ShardPlanner",
    "plan_shards",
    "build_shard_model",
    "shard_fingerprint",
]

CLUSTER_MANIFEST = "CLUSTER_MANIFEST.json"
CLUSTER_SNAPSHOT_KIND = "shoal-cluster"
CLUSTER_FORMAT_VERSION = 1


# -- the plan ----------------------------------------------------------------


@dataclass(frozen=True)
class ShardAssignment:
    """One shard's slice of the taxonomy."""

    shard_index: int
    root_topic_ids: Tuple[int, ...]
    n_topics: int
    n_entities: int

    def summary(self) -> str:
        return (
            f"shard {self.shard_index}: {len(self.root_topic_ids)} roots, "
            f"{self.n_topics} topics, {self.n_entities} entities"
        )


@dataclass(frozen=True)
class ShardPlan:
    """A complete, deterministic root-subtree → shard assignment."""

    n_shards: int
    assignments: Tuple[ShardAssignment, ...]

    def summary(self) -> str:
        return "\n".join(a.summary() for a in self.assignments)


def _subtree_topics(taxonomy: Taxonomy, root_id: int) -> List[Topic]:
    """All topics of one root subtree (root included), any order."""
    out: List[Topic] = []
    stack = [root_id]
    while stack:
        tid = stack.pop()
        t = taxonomy.topic(tid)
        out.append(t)
        stack.extend(t.child_ids)
    return out


def plan_shards(taxonomy: Taxonomy, n_shards: int) -> ShardPlan:
    """Balance root subtrees across ``n_shards`` by entity count.

    Greedy longest-processing-time assignment: roots sorted by
    descending subtree entity count (ties toward lower topic id) each
    go to the currently lightest shard (ties toward the lower shard
    index). Deterministic, so the same model always yields the same
    plan. Shards may be empty when there are fewer roots than shards.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    roots = taxonomy.root_topics()
    weights = {t.topic_id: t.size for t in roots}
    order = sorted(roots, key=lambda t: (-weights[t.topic_id], t.topic_id))
    buckets: List[List[int]] = [[] for _ in range(n_shards)]
    loads = [0] * n_shards
    for t in order:
        lightest = min(range(n_shards), key=lambda i: (loads[i], i))
        buckets[lightest].append(t.topic_id)
        loads[lightest] += weights[t.topic_id]
    assignments = []
    for i, root_ids in enumerate(buckets):
        topics = [
            t for r in root_ids for t in _subtree_topics(taxonomy, r)
        ]
        assignments.append(
            ShardAssignment(
                shard_index=i,
                root_topic_ids=tuple(sorted(root_ids)),
                n_topics=len(topics),
                n_entities=sum(
                    taxonomy.topic(r).size for r in root_ids
                ),
            )
        )
    return ShardPlan(n_shards=n_shards, assignments=tuple(assignments))


# -- pruned shard models -----------------------------------------------------


def _empty_embeddings(dim: int) -> WordEmbeddings:
    vocab = Vocabulary([], np.zeros(0, dtype=np.int64), VocabularyBuildConfig())
    return WordEmbeddings(vocab, np.zeros((0, max(dim, 1))))


def build_shard_model(
    model: ShoalModel, root_topic_ids: Sequence[int]
) -> ShoalModel:
    """The pruned model a single shard serves.

    Keeps the assigned root subtrees (topic objects are shared, they
    are read-only at serve time), the titles of their entities, their
    description scores, and the **full** correlation graph (categories
    are global). The fit-time artifacts a read tier never touches —
    embeddings, bipartite graph, entity graph, dendrogram — are
    replaced by empty placeholders so per-shard snapshots stay small
    and loadable through the standard snapshot format.
    """
    taxonomy = model.taxonomy
    topics = [
        t
        for r in sorted(root_topic_ids)
        for t in _subtree_topics(taxonomy, r)
    ]
    shard_taxonomy = Taxonomy(topics)
    entity_ids = {e for t in topics for e in t.entity_ids}
    titles = {e: model.titles[e] for e in entity_ids if e in model.titles}
    descriptions = {
        t.topic_id: model.descriptions[t.topic_id]
        for t in topics
        if t.topic_id in model.descriptions
    }
    return ShoalModel(
        config=model.config,
        bipartite=QueryItemGraph(),
        embeddings=_empty_embeddings(model.config.word2vec.dim),
        entity_graph=SparseGraph(0),
        clustering=ParallelHACResult(dendrogram=Dendrogram([]), rounds=[]),
        taxonomy=shard_taxonomy,
        descriptions=descriptions,
        correlations=model.correlations,
        titles=titles,
        query_texts={},
    )


def shard_fingerprint(
    model: ShoalModel, entity_categories: Optional[Dict[int, int]]
) -> str:
    """Content hash of everything a shard's *answers* depend on locally.

    Covers the pruned taxonomy (structure, descriptions, categories),
    the shard's titles, and its entity → category slice. Global inputs
    — collection statistics and the correlation graph — are compared
    separately by the router, because they invalidate every shard at
    once. Two shard models with equal fingerprints and equal global
    inputs answer every request identically, so a router may keep the
    old shard (and its warm cache) when the fingerprint is unchanged.
    """
    from repro.store.persistence import taxonomy_to_dict

    payload = {
        "taxonomy": taxonomy_to_dict(model.taxonomy),
        "titles": {str(k): v for k, v in sorted(model.titles.items())},
        "entity_categories": (
            None
            if entity_categories is None
            else {str(k): int(v) for k, v in sorted(entity_categories.items())}
        ),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# -- the shard set -----------------------------------------------------------


@dataclass
class ShardSet:
    """A partitioned model, ready for a router (or a snapshot dir).

    ``models[i]`` is the pruned model of shard ``i``;
    ``entity_categories[i]`` its authoritative entity → category slice
    (``None`` when the source had none); ``collection_stats`` the
    global corpus statistics every shard scores against.
    """

    plan: ShardPlan
    models: List[ShoalModel]
    entity_categories: List[Optional[Dict[int, int]]]
    collection_stats: CollectionStats

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards


# -- persistence helpers -----------------------------------------------------


def _stats_to_dict(stats: CollectionStats) -> Dict:
    return {
        "n_documents": stats.n_documents,
        "average_document_length": stats.average_document_length,
        "document_frequencies": dict(
            sorted(stats.document_frequencies.items())
        ),
    }


def _stats_from_dict(payload: Dict) -> CollectionStats:
    return CollectionStats(
        n_documents=int(payload["n_documents"]),
        average_document_length=float(payload["average_document_length"]),
        document_frequencies={
            str(k): int(v)
            for k, v in payload["document_frequencies"].items()
        },
    )


class ShardPlanner:
    """Plans, builds, persists and loads shard sets of a fitted model.

    The planner is where the global collection statistics are computed:
    it rebuilds the full model's serving documents through
    :func:`~repro.core.serving.build_topic_documents` — the same code
    path the unsharded service indexes with — so the statistics it
    hands every shard are exactly the ones the unsharded index would
    have used.
    """

    def __init__(
        self, n_shards: int, tokenizer: Optional[Tokenizer] = None
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self._n_shards = n_shards
        self._tokenizer = tokenizer or Tokenizer()

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def plan(self, model: ShoalModel) -> ShardPlan:
        return plan_shards(model.taxonomy, self._n_shards)

    def global_collection_stats(self, model: ShoalModel) -> CollectionStats:
        """Corpus statistics of the *unsharded* serving index."""
        docs, _ = build_topic_documents(
            model.taxonomy.topics(), model.titles, self._tokenizer.tokenize
        )
        return CollectionStats.from_documents(docs)

    def partition(
        self,
        model: ShoalModel,
        entity_categories: Optional[Dict[int, int]] = None,
    ) -> ShardSet:
        """Split ``model`` into per-shard pruned models + global stats."""
        plan = self.plan(model)
        models = [
            build_shard_model(model, a.root_topic_ids)
            for a in plan.assignments
        ]
        if entity_categories is None:
            cats: List[Optional[Dict[int, int]]] = [None] * plan.n_shards
        else:
            cats = [
                {
                    e: entity_categories[e]
                    for e in m.titles
                    if e in entity_categories
                }
                for m in models
            ]
        return ShardSet(
            plan=plan,
            models=models,
            entity_categories=cats,
            collection_stats=self.global_collection_stats(model),
        )

    # -- persistence ---------------------------------------------------------

    def save(
        self,
        model: ShoalModel,
        directory: Union[str, Path],
        *,
        entity_categories: Optional[Dict[int, int]] = None,
        metadata: Optional[Dict] = None,
    ) -> Path:
        """Partition ``model`` and write the cluster snapshot.

        Convenience wrapper over :meth:`partition` +
        :meth:`save_shard_set`; callers that already hold a
        :class:`ShardSet` (e.g. one feeding a live router) should save
        that directly instead of paying for a second partition.
        """
        return self.save_shard_set(
            self.partition(model, entity_categories),
            directory,
            metadata=metadata,
        )

    @staticmethod
    def save_shard_set(
        shard_set: ShardSet,
        directory: Union[str, Path],
        *,
        metadata: Optional[Dict] = None,
    ) -> Path:
        """Write a cluster snapshot: one model snapshot per shard.

        Like the model snapshot, the cluster manifest is written last
        (and any previous one removed first), so a readable cluster
        manifest implies every shard directory underneath it is
        complete.
        """
        from repro.store.persistence.snapshot import write_json

        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        (d / CLUSTER_MANIFEST).unlink(missing_ok=True)

        shard_dirs = []
        for i, shard_model in enumerate(shard_set.models):
            name = f"shard-{i:04d}"
            shard_model.save(
                d / name,
                entity_categories=shard_set.entity_categories[i],
                metadata={
                    "shard_index": i,
                    "root_topic_ids": list(
                        shard_set.plan.assignments[i].root_topic_ids
                    ),
                },
            )
            shard_dirs.append(name)
        write_json(
            d / "collection_stats.json",
            _stats_to_dict(shard_set.collection_stats),
        )
        write_json(
            d / CLUSTER_MANIFEST,
            {
                "kind": CLUSTER_SNAPSHOT_KIND,
                "format_version": CLUSTER_FORMAT_VERSION,
                "n_shards": shard_set.n_shards,
                "shards": shard_dirs,
                "plan": [
                    {
                        "shard_index": a.shard_index,
                        "root_topic_ids": list(a.root_topic_ids),
                        "n_topics": a.n_topics,
                        "n_entities": a.n_entities,
                    }
                    for a in shard_set.plan.assignments
                ],
                "metadata": metadata or {},
            },
        )
        return d

    @staticmethod
    def read_cluster_manifest(directory: Union[str, Path]) -> Dict:
        """Read + validate a cluster snapshot's manifest."""
        p = Path(directory) / CLUSTER_MANIFEST
        if not p.is_file():
            raise FileNotFoundError(
                f"no cluster manifest at {p} — not a cluster snapshot "
                "directory, or the snapshot write was interrupted"
            )
        with p.open("r", encoding="utf-8") as f:
            manifest = json.load(f)
        kind = manifest.get("kind")
        if kind != CLUSTER_SNAPSHOT_KIND:
            raise ValueError(
                f"cluster snapshot kind {kind!r} does not match expected "
                f"{CLUSTER_SNAPSHOT_KIND!r}"
            )
        version = manifest.get("format_version")
        if version != CLUSTER_FORMAT_VERSION:
            raise ValueError(
                f"unsupported cluster snapshot format version {version!r} "
                f"(this build reads version {CLUSTER_FORMAT_VERSION})"
            )
        return manifest

    @staticmethod
    def load(directory: Union[str, Path]) -> ShardSet:
        """Reconstruct a :class:`ShardSet` from a cluster snapshot.

        Every shard's own manifest is validated before its artifacts
        are touched; a corrupt or missing shard surfaces as a
        ``ValueError`` naming the shard, never as a raw decode or key
        error from deep inside the loader.
        """
        from repro.store.persistence import (
            load_entity_categories,
            load_model,
        )
        from repro.store.persistence.snapshot import read_json

        d = Path(directory)
        manifest = ShardPlanner.read_cluster_manifest(d)

        stats_path = d / "collection_stats.json"
        if not stats_path.is_file():
            raise ValueError(
                f"cluster snapshot at {d} has no collection_stats.json — "
                "shards cannot score transparently without the global "
                "corpus statistics"
            )
        stats = _stats_from_dict(read_json(stats_path))

        models: List[ShoalModel] = []
        cats: List[Optional[Dict[int, int]]] = []
        for name in manifest.get("shards", []):
            shard_dir = d / name
            try:
                models.append(load_model(shard_dir))
                cats.append(load_entity_categories(shard_dir))
            except (ValueError, KeyError, OSError, json.JSONDecodeError) as e:
                raise ValueError(
                    f"cluster shard {name!r} at {shard_dir} is corrupt or "
                    f"unreadable: {e}"
                ) from e

        assignments = tuple(
            ShardAssignment(
                shard_index=int(a["shard_index"]),
                root_topic_ids=tuple(int(r) for r in a["root_topic_ids"]),
                n_topics=int(a["n_topics"]),
                n_entities=int(a["n_entities"]),
            )
            for a in manifest.get("plan", [])
        )
        plan = ShardPlan(
            n_shards=int(manifest["n_shards"]), assignments=assignments
        )
        if len(models) != plan.n_shards:
            raise ValueError(
                f"cluster manifest claims {plan.n_shards} shards but "
                f"{len(models)} shard snapshots were loaded"
            )
        return ShardSet(
            plan=plan,
            models=models,
            entity_categories=cats,
            collection_stats=stats,
        )
