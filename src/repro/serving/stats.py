"""Request-level statistics for the serving cluster.

The actual implementation now lives in :mod:`repro.obs.histogram` —
one fixed-bucket histogram shared by the router, the gateway
middleware, and the async edge, instead of the three hand-rolled
recorders this module, ``MetricsMiddleware``, and the router used to
carry. This module survives as the compatibility surface:
``RequestStats`` *is* :class:`repro.obs.histogram.Histogram`, and
:class:`~repro.obs.histogram.LatencySummary` keeps its shape
field-for-field so stats dicts, replay reports, and benches are
unchanged.
"""

from __future__ import annotations

from repro.obs.histogram import Histogram, LatencySummary, percentile

__all__ = ["LatencySummary", "RequestStats", "percentile"]

#: The one latency recorder. Kept under its historical name — callers
#: that want histogram-specific APIs (buckets, merge) should import
#: :class:`repro.obs.histogram.Histogram` directly.
RequestStats = Histogram
