"""Request-level statistics for the serving cluster.

A router that claims to handle production traffic must be able to say
what that traffic looked like: how many requests, at what rate, and at
which tail latencies. :class:`RequestStats` is a thread-safe recorder
of per-request wall-clock latencies; :class:`LatencySummary` is its
point-in-time rollup with the p50/p95/p99 quantiles operators actually
page on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["LatencySummary", "RequestStats", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    ``q`` is in [0, 100]. Empty input returns 0.0 — a summary over no
    requests reads as all-zero rather than raising mid-report.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    rank = max(1, int(-(-q * len(sorted_values) // 100)))  # ceil
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


@dataclass(frozen=True)
class LatencySummary:
    """Rollup of recorded request latencies (milliseconds) plus QPS."""

    count: int
    elapsed_seconds: float
    qps: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded request latencies."""
        return self.mean_ms * self.count / 1000.0

    def summary(self) -> str:
        return (
            f"{self.count} requests in {self.elapsed_seconds:.2f}s "
            f"({self.qps:,.0f} qps), latency p50={self.p50_ms:.3f}ms "
            f"p95={self.p95_ms:.3f}ms p99={self.p99_ms:.3f}ms "
            f"max={self.max_ms:.3f}ms"
        )


class RequestStats:
    """Thread-safe recorder of per-request latencies.

    QPS is computed over the wall-clock span from the first recorded
    request to the most recent one (or to *now* while traffic is still
    flowing), which matches what an external load generator would
    measure, not the sum of service times.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self._started_at: float = 0.0
        self._last_at: float = 0.0

    def record(self, seconds: float) -> None:
        """Record one request that took ``seconds`` of wall-clock time."""
        now = time.perf_counter()
        with self._lock:
            if not self._latencies:
                self._started_at = now - seconds
            self._latencies.append(seconds)
            self._last_at = now

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._latencies)

    def reset(self) -> None:
        with self._lock:
            self._latencies.clear()
            self._started_at = 0.0
            self._last_at = 0.0

    def summary(self) -> LatencySummary:
        with self._lock:
            lat = sorted(self._latencies)
            elapsed = max(self._last_at - self._started_at, 0.0)
        n = len(lat)
        if n == 0:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        qps = n / elapsed if elapsed > 0 else 0.0
        to_ms = 1000.0
        return LatencySummary(
            count=n,
            elapsed_seconds=elapsed,
            qps=qps,
            mean_ms=sum(lat) / n * to_ms,
            p50_ms=percentile(lat, 50.0) * to_ms,
            p95_ms=percentile(lat, 95.0) * to_ms,
            p99_ms=percentile(lat, 99.0) * to_ms,
            max_ms=lat[-1] * to_ms,
        )
