"""Traffic replay: load-testing a service or cluster with real workloads.

Production query streams are not uniform: a few head queries dominate
(Zipf), traffic arrives in bursts, the head drifts as trends move, and
some of the stream is adversarial to caches. :class:`TrafficReplayer`
replays such workloads — built from the marketplace's own query set
(:mod:`repro.data.queries`) and scenario structure
(:mod:`repro.data.scenarios`) — against the typed gateway contract: a
:class:`~repro.api.backends.ShoalBackend` (including
:class:`~repro.api.http.ShoalClient` for a remote gateway) is driven
as-is; a raw :class:`~repro.core.serving.ShoalService` or
:class:`~repro.serving.router.ClusterRouter` is wrapped in the
matching backend adapter at construction; a string target is treated
as a backend URI and resolved through :func:`repro.api.open_backend`
(``snapshot:DIR`` / ``cluster:DIR`` / ``http://host:port``). One
replayer drives every tier, local or remote, through one dispatch
path.

Workload profiles:

``steady``
    i.i.d. Zipf-skewed draws over the query pool — the baseline shape.
``bursty``
    the same Zipf head, but each drawn query repeats for a burst
    (trending queries hammer the tier in runs, the cache-friendliest
    real pattern).
``drifting``
    the Zipf rank order rotates every ``drift_every`` requests, so the
    hot head moves through the pool — yesterday's tail is today's
    trend, stressing cache eviction.
``adversarial``
    cache-hostile: every request is a distinct query string. Odd
    requests are real queries salted with their own tokens (so they
    still retrieve, but never repeat); even requests are nonsense
    scenario-flavoured tokens that match nothing — the worst case for
    both the result cache and the token → shard index.

Arrival models:

``closed`` (the default)
    each worker issues its next request only after the previous answer
    returns. Simple, but latency-biased: when the server slows down,
    the workload slows down with it, so the worst moments are sampled
    *least* (coordinated omission).
``open``
    request *i* is scheduled at ``t0 + i/rate`` regardless of how the
    server is doing, and its latency is measured from that scheduled
    instant — queueing delay included. This is how real traffic
    arrives; a saturated tier shows up as growing tail latency instead
    of silently shrinking throughput.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro._util import ensure_rng
from repro.api.contract import ApiError, SearchRequest
from repro.core.serving import CacheStats
from repro.data.queries import Query
from repro.data.scenarios import Scenario
from repro.data.zipf import zipf_weights
from repro.serving.stats import LatencySummary, RequestStats

__all__ = [
    "WorkloadConfig",
    "ReplayReport",
    "TrafficReplayer",
    "build_workload",
    "build_write_workload",
    "WORKLOAD_PROFILES",
]

WORKLOAD_PROFILES = ("steady", "bursty", "drifting", "adversarial")


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a replay workload.

    ``pool_variants`` expands the distinct-query pool: each base query
    spawns that many textual variants built by repeating its own first
    token (``"beach dress"`` → ``"beach dress beach"``, …). A variant
    introduces no new term, so shard routing and the candidate set
    stay exactly those of the base query, while cache keys multiply —
    the many-distinct-strings, few-distinct-intents shape of a real
    query log.
    """

    n_requests: int = 1000
    profile: str = "steady"
    zipf_exponent: float = 1.1
    burst_length: int = 16
    drift_every: int = 200
    pool_variants: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.profile not in WORKLOAD_PROFILES:
            raise ValueError(
                f"unknown workload profile {self.profile!r}; "
                f"expected one of {WORKLOAD_PROFILES}"
            )
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        if self.drift_every < 1:
            raise ValueError("drift_every must be >= 1")
        if self.pool_variants < 1:
            raise ValueError("pool_variants must be >= 1")


def _query_pool(
    queries: Sequence[Query], variants: int, rng
) -> List[str]:
    """Distinct query strings, optionally expanded with salted variants."""
    base = sorted({q.text for q in queries})
    if variants == 1:
        pool = list(base)
    else:
        pool = []
        for text in base:
            first = text.split()[0]
            pool.append(text)
            for r in range(1, variants):
                pool.append(text + (" " + first) * r)
    # Shuffle so Zipf rank is not correlated with query id order.
    order = rng.permutation(len(pool))
    return [pool[i] for i in order]


def build_workload(
    queries: Sequence[Query],
    scenarios: Sequence[Scenario] = (),
    config: WorkloadConfig = WorkloadConfig(),
) -> List[str]:
    """The request stream: ``config.n_requests`` query strings in order."""
    rng = ensure_rng(config.seed)
    pool = _query_pool(queries, config.pool_variants, rng)
    if not pool and config.profile != "adversarial":
        raise ValueError("cannot build a workload from an empty query set")
    n = config.n_requests

    if config.profile == "steady":
        weights = zipf_weights(len(pool), config.zipf_exponent)
        picks = rng.choice(len(pool), size=n, p=weights)
        return [pool[i] for i in picks]

    if config.profile == "bursty":
        weights = zipf_weights(len(pool), config.zipf_exponent)
        out: List[str] = []
        while len(out) < n:
            q = pool[int(rng.choice(len(pool), p=weights))]
            burst = 1 + int(rng.integers(config.burst_length))
            out.extend([q] * burst)
        return out[:n]

    if config.profile == "drifting":
        weights = zipf_weights(len(pool), config.zipf_exponent)
        out = []
        offset = 0
        for start in range(0, n, config.drift_every):
            count = min(config.drift_every, n - start)
            picks = rng.choice(len(pool), size=count, p=weights)
            out.extend(pool[(int(i) + offset) % len(pool)] for i in picks)
            # Rotate the rank order: a new head becomes hot.
            offset += max(1, len(pool) // 7)
        return out

    # adversarial: unique strings only — real-but-salted and pure-miss.
    names = [s.name for s in scenarios] or ["probe"]
    out = []
    for i in range(n):
        if i % 2 and pool:
            text = pool[int(rng.integers(len(pool)))]
            out.append(f"{text} {text.split()[0]}{i}x")
        else:
            name = names[int(rng.integers(len(names)))]
            out.append(f"{name}-miss-{i}-zzq")
    return out


def build_write_workload(
    query_log,
    n_events: int,
    *,
    day: Optional[int] = None,
    seed: int = 0,
) -> List[dict]:
    """Wire-shaped ingest events sampled from a generated query log.

    Each element is a ``POST /v1/ingest`` payload (``day`` / ``user_id``
    / ``query_id`` / ``clicked``). Sampling real events keeps the write
    stream statistically faithful to the read stream — the same Zipf
    head, the same click structure. ``day`` re-stamps every event (the
    usual case: replaying history as *today's* live traffic).
    """
    rng = ensure_rng(seed)
    events = query_log.events
    if not events:
        raise ValueError("cannot build a write workload from an empty log")
    out: List[dict] = []
    for _ in range(n_events):
        e = events[int(rng.integers(len(events)))]
        out.append(
            {
                "day": int(e.day if day is None else day),
                "user_id": int(e.user_id),
                "query_id": int(e.query_id),
                "clicked": [int(c) for c in e.clicked_entity_ids],
            }
        )
    return out


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one replay run."""

    profile: str
    n_requests: int
    n_empty: int
    latency: LatencySummary
    cache_before: Optional[CacheStats]
    cache_after: Optional[CacheStats]
    n_writes: int = 0
    n_writes_rejected: int = 0
    arrival: str = "closed"
    rate: Optional[float] = None

    @property
    def qps(self) -> float:
        return self.latency.qps

    @property
    def hit_rate(self) -> float:
        """Cache-*lookup* hit rate over exactly this replay's requests.

        Computed from the target's aggregate cache counters, so for a
        :class:`ClusterRouter` one request can record several lookups
        (a front-cache miss followed by a probe at each candidate
        shard). That makes the rate a property of the cache *tiers*,
        not of requests — compare it across runs on the same target,
        not between a cluster and a single service.
        """
        if self.cache_before is None or self.cache_after is None:
            return 0.0
        hits = self.cache_after.hits - self.cache_before.hits
        misses = self.cache_after.misses - self.cache_before.misses
        total = hits + misses
        return hits / total if total else 0.0

    def summary(self) -> str:
        cache = (
            f", cache hit rate {self.hit_rate:.1%}"
            if self.cache_before is not None
            else ""
        )
        writes = (
            f", {self.n_writes} writes"
            + (
                f" ({self.n_writes_rejected} shed)"
                if self.n_writes_rejected
                else ""
            )
            if self.n_writes
            else ""
        )
        pacing = (
            f", open-loop @ {self.rate:g}/s" if self.arrival == "open" else ""
        )
        return (
            f"[{self.profile}] {self.latency.summary()}, "
            f"{self.n_empty} empty results{cache}{writes}{pacing}"
        )


class TrafficReplayer:
    """Replays a workload against a serving target.

    ``target`` is a gateway-API backend
    (:class:`~repro.api.backends.ShoalBackend`), a raw engine tier
    (:class:`ShoalService` or :class:`ClusterRouter` — wrapped in the
    matching backend adapter here, so dispatch is always the typed
    contract), or a backend URI string (``snapshot:DIR``,
    ``cluster:DIR``, ``http://host:port``) resolved through
    :func:`repro.api.open_backend`. ``concurrency`` drives the target
    from a thread pool (wall-clock QPS is measured either way;
    per-request latency always is).
    """

    def __init__(
        self,
        target,
        *,
        k: int = 5,
        concurrency: int = 1,
        ingest_target=None,
    ):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        # Imported lazily: repro.api adapters import this package.
        from repro.api.backends import (
            ClusterBackend,
            ServiceBackend,
            ShoalBackend,
        )

        if isinstance(target, str):
            from repro.api import open_backend

            target = open_backend(target)
        elif not isinstance(target, ShoalBackend):
            # A raw engine tier: adopt it behind the typed contract so
            # the replay loop has exactly one dispatch path.
            if hasattr(target, "n_shards"):  # ClusterRouter
                target = ClusterBackend(target)
            else:
                target = ServiceBackend(target)
        self._target = target
        self._k = k
        self._concurrency = concurrency
        self._ingest_target = ingest_target

    def _cache_stats(self) -> Optional[CacheStats]:
        probe = getattr(self._target, "cache_stats", None)
        return probe() if callable(probe) else None

    def replay(
        self,
        workload: Sequence[str],
        *,
        profile: str = "custom",
        warmup: int = 0,
        writes: Sequence[dict] = (),
        write_every: int = 10,
        arrival: str = "closed",
        rate: Optional[float] = None,
    ) -> ReplayReport:
        """Issue every workload query in order; return the report.

        ``warmup`` first replays that many leading requests without
        recording them — the warm-tier measurement every serving bench
        should report (cold-start is a separate, one-off cost).

        ``arrival`` picks the load model. ``"closed"`` (default) is
        worker-paced: each worker waits for its answer before issuing
        the next request. ``"open"`` schedules request *i* at
        ``t0 + i/rate`` (``rate`` in requests/s, required) no matter
        how the target is doing, and measures latency from that
        scheduled instant — so queueing delay under saturation is
        *counted*, not coordinated away.

        ``writes`` turns the replay into **mixed read+write traffic**:
        every ``write_every``-th read also submits the next write-mode
        event (cycling through ``writes``) to the target's ingest
        surface — ``ingest(event)`` on an HTTP
        :class:`~repro.api.http.ShoalClient`, ``submit(event)`` on a
        local :class:`~repro.streaming.ingest.IngestPipe` passed as
        ``ingest_target`` at construction. Shed writes
        (``ingest_overloaded``) are counted, not raised: backpressure
        is an expected behaviour of a loaded write path, and the report
        is where it shows up.
        """
        if write_every < 1:
            raise ValueError(f"write_every must be >= 1, got {write_every}")
        if arrival not in ("closed", "open"):
            raise ValueError(
                f"arrival must be 'closed' or 'open', got {arrival!r}"
            )
        if arrival == "open" and (rate is None or rate <= 0):
            raise ValueError(
                "open-loop arrival needs rate > 0 (requests per second)"
            )
        target, k = self._target, self._k
        for q in workload[:warmup]:
            target.search(SearchRequest(query=q, k=k))

        stats = RequestStats()
        measured = workload[warmup:] if warmup else workload
        cache_before = self._cache_stats()
        n_empty = 0
        write_counters = {"sent": 0, "rejected": 0}
        submit = self._ingest_submitter() if writes else None
        writes_list = list(writes)
        write_lock = threading.Lock()

        def maybe_write(request_index: int) -> None:
            if submit is None or request_index % write_every:
                return
            with write_lock:
                event = writes_list[
                    (request_index // write_every) % len(writes_list)
                ]
                write_counters["sent"] += 1
            try:
                submit(event)
            except ApiError as exc:
                if exc.code not in ("ingest_overloaded", "ingest_unavailable"):
                    raise
                with write_lock:
                    write_counters["rejected"] += 1

        def issue(item) -> int:
            index, query = item
            maybe_write(index)
            t0 = time.perf_counter()
            response = target.search(SearchRequest(query=query, k=k))
            stats.record(time.perf_counter() - t0)
            return 0 if response.hits else 1

        def issue_open(item, due: float) -> int:
            # Latency is measured from the *scheduled* arrival, so time
            # a request spends queued behind a slow tier is counted.
            index, query = item
            maybe_write(index)
            response = target.search(SearchRequest(query=query, k=k))
            stats.record(time.perf_counter() - due)
            return 0 if response.hits else 1

        indexed = list(enumerate(measured))
        if arrival == "open":
            futures = []
            with ThreadPoolExecutor(self._concurrency) as pool:
                t0 = time.perf_counter()
                for i, item in enumerate(indexed):
                    due = t0 + i / rate
                    delay = due - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    futures.append(pool.submit(issue_open, item, due))
                n_empty = sum(f.result() for f in futures)
        elif self._concurrency == 1:
            for item in indexed:
                n_empty += issue(item)
        else:
            with ThreadPoolExecutor(self._concurrency) as pool:
                n_empty = sum(pool.map(issue, indexed))

        return ReplayReport(
            profile=profile,
            n_requests=len(measured),
            n_empty=n_empty,
            latency=stats.summary(),
            cache_before=cache_before,
            cache_after=self._cache_stats(),
            n_writes=write_counters["sent"],
            n_writes_rejected=write_counters["rejected"],
            arrival=arrival,
            rate=rate if arrival == "open" else None,
        )

    def _ingest_submitter(self):
        """The write-path hook of the current target (or ingest_target)."""
        candidates = [self._ingest_target, self._target]
        for obj in candidates:
            if obj is None:
                continue
            for attr in ("ingest", "submit"):
                fn = getattr(obj, attr, None)
                if callable(fn):
                    return fn
        raise ValueError(
            "write-mode replay needs a target exposing ingest(event) "
            "(e.g. ShoalClient) or an ingest_target with submit(event) "
            "(e.g. IngestPipe)"
        )
