"""Generation rollout: hot-swap a new model into every serving tier.

A **generation** is one output of the micro-batch updater: a fitted
:class:`~repro.core.pipeline.ShoalModel` plus the entity → category
map, stamped with the WAL sequence number it covers and (optionally)
persisted as a PR-2 versioned snapshot directory.

:class:`GenerationSwitch` owns the *rollout* of a generation across a
heterogeneous set of live serving tiers:

* a :class:`~repro.core.serving.ShoalService` — refreshed via its
  atomic state swap (readers never see a half-installed index);
* a :class:`~repro.serving.router.ClusterRouter` — refreshed via its
  atomic cluster-state swap, rebuilding **only the shards whose
  content fingerprint changed**;
* any :class:`~repro.api.backends.ServiceBackend` /
  :class:`~repro.api.backends.ClusterBackend` — unwrapped to the
  engine they adapt;
* any :class:`~repro.api.middleware.Gateway` — unwrapped to its inner
  backend, and remembered so its result cache is invalidated after the
  engines flip (a TTL'd cache would also age out on its own; explicit
  invalidation keeps the transparency guarantee unconditional).

**Health check + rollback.** After refreshing each tier the switch
replays its probe queries against the tier and compares answers to a
reference service built fresh from the generation's model. Any
mismatch (or exception) marks the tier unhealthy; the switch rolls the
tier back to the previous generation and raises :class:`SwapError`
carrying the full report — serving continues on the old generation,
which is the only safe behaviour for an automated rollout.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import ShoalModel
from repro.core.serving import ShoalService

__all__ = ["Generation", "GenerationSwitch", "SwapError", "SwapReport"]


@dataclass(frozen=True)
class Generation:
    """One versioned output of the streaming updater."""

    number: int
    model: ShoalModel
    entity_categories: Dict[int, int] = field(default_factory=dict)
    applied_seq: int = 0
    last_day: int = 0
    snapshot_dir: Optional[Path] = None

    def summary(self) -> str:
        where = f", snapshot={self.snapshot_dir}" if self.snapshot_dir else ""
        return (
            f"generation {self.number}: window ..{self.last_day}, "
            f"applied_seq={self.applied_seq}, "
            f"{len(self.model.taxonomy)} topics{where}"
        )


@dataclass(frozen=True)
class TargetOutcome:
    """What happened to one serving tier during a swap."""

    name: str
    kind: str
    healthy: bool
    rolled_back: bool
    rebuilt_shards: Tuple[int, ...] = ()
    detail: str = ""


@dataclass(frozen=True)
class SwapReport:
    """Outcome of one :meth:`GenerationSwitch.swap` call."""

    generation: int
    outcomes: Tuple[TargetOutcome, ...]
    gateways_invalidated: int
    duration_s: float

    @property
    def healthy(self) -> bool:
        return all(o.healthy for o in self.outcomes)

    def summary(self) -> str:
        states = ", ".join(
            f"{o.name}={'ok' if o.healthy else 'ROLLED-BACK'}"
            for o in self.outcomes
        )
        return (
            f"swap to generation {self.generation} in "
            f"{self.duration_s * 1000:.1f}ms: {states}; "
            f"{self.gateways_invalidated} gateway cache(s) invalidated"
        )


class SwapError(Exception):
    """A tier failed its post-swap health check (it was rolled back)."""

    def __init__(self, report: SwapReport):
        failed = [o.name for o in report.outcomes if not o.healthy]
        super().__init__(
            f"generation {report.generation} failed health checks on "
            f"{', '.join(failed)}; unhealthy tiers rolled back"
        )
        self.report = report


class _EngineTarget:
    """One attached tier: anything with refresh() + search_topics().

    ``generation`` tracks what THIS tier currently serves — tiers can
    diverge when a swap partially fails, and a later rollback must
    restore each tier to its own last-healthy generation, not to a
    fleet-wide guess.
    """

    def __init__(
        self,
        name: str,
        engine: Any,
        kind: str,
        generation: Optional[Generation] = None,
    ):
        self.name = name
        self.engine = engine
        self.kind = kind
        self.generation = generation


def _classify(target: Any) -> Tuple[Any, str]:
    """(engine, kind) for an attachable target; gateways handled upstream."""
    # Imported lazily to keep this module importable without the full
    # serving stack (and to avoid import cycles via repro.api).
    from repro.api.backends import ClusterBackend, ServiceBackend

    if isinstance(target, ServiceBackend):
        return target.service, "service"
    if isinstance(target, ClusterBackend):
        return target.router, "cluster"
    inner = getattr(target, "replicated_backend", None)
    if inner is not None:
        # A replication FollowerBackend (duck-typed to avoid importing
        # repro.replication here) delegates to the tier it wraps, so
        # attaching it must swap that inner tier — and dedup against an
        # already-attached copy of the same engine.
        return _classify(inner)
    if isinstance(target, ShoalService):
        return target, "service"
    refresh = getattr(target, "refresh", None)
    search = getattr(target, "search_topics", None)
    if callable(refresh) and callable(search):
        # ClusterRouter and duck-typed test doubles land here.
        kind = "cluster" if hasattr(target, "n_shards") else "engine"
        return target, kind
    raise TypeError(
        f"cannot attach {type(target).__name__}: expected a ShoalService, "
        "ClusterRouter, ServiceBackend, ClusterBackend, Gateway, or any "
        "object with refresh() and search_topics()"
    )


class GenerationSwitch:
    """Coordinated, health-checked hot-swap across serving tiers.

    ``probe_queries`` are replayed against every tier after its swap
    and compared with a reference service built from the new model;
    with no probes, swaps are unconditional (still atomic per tier).
    ``baseline`` seeds the previous-generation record rollbacks restore
    to; without one, the first swap cannot roll back (there is nothing
    to roll back *to*) and failures raise without restoration.
    """

    def __init__(
        self,
        *,
        probe_queries: Sequence[str] = (),
        probe_k: int = 5,
        baseline: Optional[Generation] = None,
        rollback_on_failure: bool = True,
    ):
        if probe_k < 1:
            raise ValueError(f"probe_k must be >= 1, got {probe_k}")
        self._probes = tuple(probe_queries)
        self._probe_k = probe_k
        self._rollback = rollback_on_failure
        self._targets: List[_EngineTarget] = []
        self._gateways: List[Any] = []
        self._current = baseline
        self._lock = threading.Lock()
        self._swaps = 0
        self._rollbacks = 0

    # -- wiring --------------------------------------------------------------

    def attach(self, target: Any, name: Optional[str] = None) -> "GenerationSwitch":
        """Register a serving tier (chainable).

        A :class:`~repro.api.middleware.Gateway` is unwrapped — its
        inner backend's engine is swapped, and the gateway itself is
        remembered for result-cache invalidation. Attaching the same
        engine twice (e.g. a backend and its raw service) is collapsed
        to one swap.
        """
        from repro.api.middleware import Gateway

        while isinstance(target, Gateway):
            self._gateways.append(target)
            target = target.backend
        engine, kind = _classify(target)
        if any(t.engine is engine for t in self._targets):
            return self
        label = name or f"{kind}-{len(self._targets)}"
        self._targets.append(
            _EngineTarget(label, engine, kind, generation=self._current)
        )
        return self

    @property
    def current(self) -> Optional[Generation]:
        """The last generation the WHOLE fleet healthily swapped to.

        After a partially failed swap, individual tiers may be ahead of
        this (the healthy ones stayed on the newer generation); the
        per-tier truth is in :meth:`stats` under ``target_generations``.
        """
        return self._current

    @property
    def targets(self) -> List[str]:
        return [t.name for t in self._targets]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "targets": [t.name for t in self._targets],
                "target_generations": {
                    t.name: (
                        None if t.generation is None else t.generation.number
                    )
                    for t in self._targets
                },
                "gateways": len(self._gateways),
                "swaps": self._swaps,
                "rollbacks": self._rollbacks,
                "current_generation": (
                    None if self._current is None else self._current.number
                ),
                "probes": len(self._probes),
            }

    # -- the swap ------------------------------------------------------------

    def _expected_answers(
        self, generation: Generation
    ) -> Dict[str, List]:
        """Probe answers a healthy tier must reproduce, from a fresh
        reference service over the new model (cache disabled — the
        reference must compute, not recall)."""
        if not self._probes:
            return {}
        reference = ShoalService(
            generation.model,
            cache_size=0,
            entity_categories=generation.entity_categories,
        )
        return {
            q: reference.search_topics(q, self._probe_k)
            for q in self._probes
        }

    def _check_health(
        self, target: _EngineTarget, expected: Dict[str, List]
    ) -> Optional[str]:
        """None when healthy, else a description of the first failure."""
        for query, want in expected.items():
            try:
                got = target.engine.search_topics(query, self._probe_k)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                return f"probe {query!r} raised {type(exc).__name__}: {exc}"
            if list(got) != list(want):
                return (
                    f"probe {query!r} diverged from the reference answer "
                    f"({len(got)} vs {len(want)} hits)"
                )
        return None

    def swap(self, generation: Generation) -> SwapReport:
        """Roll ``generation`` onto every attached tier, atomically per
        tier, health-checking each and rolling back failures.

        Raises :class:`SwapError` (with the report attached) if any
        tier failed; healthy tiers stay on the new generation — in a
        sharded deployment a lagging node is re-rolled independently,
        not by yanking the whole fleet back.
        """
        t0 = time.perf_counter()
        # Built OUTSIDE the lock: the reference index build is the
        # expensive part of a swap, and stats() scrapes (GET /metrics)
        # must not stall behind it.
        expected = self._expected_answers(generation)
        with self._lock:
            outcomes: List[TargetOutcome] = []
            any_failed = False
            for target in self._targets:
                # Roll back to what THIS tier last healthily served —
                # tiers diverge when a previous swap partially failed.
                previous = target.generation or self._current
                rebuilt: Tuple[int, ...] = ()
                try:
                    result = target.engine.refresh(
                        generation.model,
                        entity_categories=generation.entity_categories,
                    )
                    if isinstance(result, list):  # ClusterRouter reports
                        rebuilt = tuple(result)
                    failure = self._check_health(target, expected)
                except Exception as exc:  # noqa: BLE001 - refresh blew up
                    failure = f"refresh failed: {type(exc).__name__}: {exc}"
                rolled_back = False
                if failure is None:
                    target.generation = generation
                elif self._rollback and previous is not None:
                    try:
                        target.engine.refresh(
                            previous.model,
                            entity_categories=previous.entity_categories,
                        )
                        target.generation = previous
                        rolled_back = True
                        self._rollbacks += 1
                    except Exception as exc:  # noqa: BLE001
                        failure += (
                            f"; rollback also failed: "
                            f"{type(exc).__name__}: {exc}"
                        )
                any_failed = any_failed or failure is not None
                outcomes.append(
                    TargetOutcome(
                        name=target.name,
                        kind=target.kind,
                        healthy=failure is None,
                        rolled_back=rolled_back,
                        rebuilt_shards=rebuilt,
                        detail=failure or "",
                    )
                )
            # Engines flipped; drop gateway-level results computed
            # against the old generation (epoch-stamped keys make this
            # safe against in-flight puts too).
            for gw in self._gateways:
                gw.invalidate_cache()
            if not any_failed:
                self._current = generation
                self._swaps += 1
            report = SwapReport(
                generation=generation.number,
                outcomes=tuple(outcomes),
                gateways_invalidated=len(self._gateways),
                duration_s=time.perf_counter() - t0,
            )
        if any_failed:
            raise SwapError(report)
        return report
