"""The micro-batch updater: WAL events → window slides → generations.

:class:`StreamingUpdater` is the single consumer of an
:class:`~repro.streaming.ingest.IngestPipe`. Each cycle it

1. takes one micro-batch (bounded by count *and* age),
2. folds the events into its :class:`~repro.store.querylog.QueryLogStore`
   (registering live-discovered query strings first) — idempotently,
   keyed on WAL sequence numbers, so replays never double-apply,
3. slides the :class:`~repro.core.incremental.IncrementalShoal` window
   to the newest ingested day, producing a fresh model,
4. stamps the result as a :class:`~repro.streaming.rollout.Generation`
   — persisted through the PR-2 snapshot store when ``generations_dir``
   is set — and hands it to the
   :class:`~repro.streaming.rollout.GenerationSwitch` for a
   zero-downtime rollout,
5. checkpoints applied progress next to the WAL and compacts segments
   that fell out of the sliding window.

**Crash recovery.** The in-memory store is rebuilt on startup by
:meth:`recover`: seed the base log (the corpus the serving snapshot was
fitted on), then replay the retained WAL. Because WAL append happens
*before* queue handoff and application is keyed by ``seq``, a process
killed anywhere — mid-batch, mid-advance, before the checkpoint — comes
back with exactly the admitted events, none lost, none doubled.

Run it synchronously (:meth:`run_once`, used by tests and the CLI) or
as a daemon thread (:meth:`start` / :meth:`stop`, used by
``serve-http --ingest-wal``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

from repro.core.incremental import IncrementalShoal
from repro.data.queries import Query, QueryLog
from repro.obs.tracer import traced
from repro.store.querylog import QueryLogStore, QueryLogStoreConfig
from repro.streaming.ingest import IngestPipe
from repro.streaming.rollout import Generation, GenerationSwitch, SwapError
from repro.streaming.wal import IngestEvent, write_checkpoint

__all__ = ["StreamingUpdater", "UpdaterStats"]


@dataclass(frozen=True)
class UpdaterStats:
    """Point-in-time progress counters of the updater."""

    events_applied: int
    events_duplicate: int
    events_skipped: int
    applied_seq: int
    generations: int
    swap_failures: int
    rollouts_skipped: int
    last_day: Optional[int]
    running: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events_applied": self.events_applied,
            "events_duplicate": self.events_duplicate,
            "events_skipped": self.events_skipped,
            "applied_seq": self.applied_seq,
            "generations": self.generations,
            "swap_failures": self.swap_failures,
            "rollouts_skipped": self.rollouts_skipped,
            "last_day": self.last_day,
            "running": self.running,
        }


class StreamingUpdater:
    """Drains the ingest pipe into model generations (one consumer).

    ``inc`` must already hold a fitted model (the *base* generation the
    read tier is serving); ``min_batch_events`` batches trickle traffic
    across cycles so a lone event does not trigger a full refit, while
    ``max_batch_age_s`` bounds how stale the window may get.
    """

    def __init__(
        self,
        inc: IncrementalShoal,
        pipe: IngestPipe,
        *,
        switch: Optional[GenerationSwitch] = None,
        store: Optional[QueryLogStore] = None,
        generations_dir: Optional[Union[str, Path]] = None,
        batch_max_events: int = 256,
        batch_max_age_s: float = 0.5,
        min_batch_events: int = 1,
        max_day_skew: int = 2,
        drift_gate=None,
        on_generation=None,
    ):
        if inc.model is None:
            raise ValueError(
                "the IncrementalShoal must hold a fitted model before "
                "streaming updates start (advance() or from_model() first)"
            )
        if min_batch_events < 1:
            raise ValueError(
                f"min_batch_events must be >= 1, got {min_batch_events}"
            )
        if max_day_skew < 1:
            raise ValueError(
                f"max_day_skew must be >= 1, got {max_day_skew}"
            )
        self._inc = inc
        self._pipe = pipe
        self._switch = switch
        window = inc.model.config.window_days
        self._store = store or QueryLogStore(
            QueryLogStoreConfig(window_days=window)
        )
        self._generations_dir = (
            None if generations_dir is None else Path(generations_dir)
        )
        self._batch_max_events = batch_max_events
        self._batch_max_age_s = batch_max_age_s
        self._min_batch_events = min_batch_events
        self._max_day_skew = max_day_skew

        #: Optional repro.analytics.DriftMonitor (duck-typed:
        #: should_skip(prev, new) + stats()); when set, a generation
        #: whose taxonomy partition is trivially different from what is
        #: serving is produced and checkpointed but NOT rolled out.
        self._drift_gate = drift_gate

        #: Optional callable(Generation) invoked after every advanced
        #: generation, before WAL compaction — so a subscriber (e.g. a
        #: replication SegmentShipper) still finds the segments that
        #: produced the generation on disk. Exceptions are contained.
        self._on_generation = on_generation

        self._applied_seq = 0
        self._events_applied = 0
        self._events_duplicate = 0
        self._events_skipped = 0
        self._pending_since_generation = 0
        self._generation_number = 0
        self._swap_failures = 0
        self._rollouts_skipped = 0
        self._last_error: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._state_lock = threading.Lock()

    # -- state seeding / recovery --------------------------------------------

    @property
    def store(self) -> QueryLogStore:
        return self._store

    @property
    def switch(self) -> Optional[GenerationSwitch]:
        return self._switch

    @property
    def applied_seq(self) -> int:
        return self._applied_seq

    @property
    def current_generation(self) -> int:
        return self._generation_number

    def seed_log(self, log: QueryLog) -> int:
        """Load the base query log the serving model was fitted on."""
        with self._state_lock:
            return self._store.ingest(log)

    def recover(self) -> int:
        """Replay the retained WAL into the store (idempotent by seq).

        Returns how many events were newly applied. Call once after
        :meth:`seed_log`, before :meth:`start` — recovered events count
        toward the next generation, so a process killed mid-batch picks
        up exactly where durability left off.
        """
        with self._state_lock:
            return self._apply_events(self._pipe.wal.replay())

    def _apply_events(self, events: Iterable[IngestEvent]) -> int:
        """Fold events into the window, idempotently and defensively.

        An event the window cannot absorb — an unregistered ``query_id``
        with no ``query_text`` to register it under, or a ``day`` jump
        beyond ``max_day_skew`` (a single far-future day would purge
        the entire retention window) — is **skipped and counted**, not
        raised: one poison event must never kill its batch, and the
        WAL replays on every restart, so a raising apply would brick
        recovery permanently. ``applied_seq`` advances past skipped
        events so the decision is just as durable as an application.
        """
        applied = 0
        for event in events:
            if event.seq <= self._applied_seq:
                self._events_duplicate += 1
                continue
            self._applied_seq = event.seq
            if event.query_text is not None:
                try:
                    self._store.register_query(
                        Query(event.query_id, event.query_text, "live", -1)
                    )
                except ValueError:
                    # Conflicting live redefinition: keep the original
                    # registration, the event still counts its clicks.
                    pass
                self._inc.update_queries({event.query_id: event.query_text})
            days = self._store.days()
            if days and event.day > days[-1] + self._max_day_skew:
                self._events_skipped += 1
                self._last_error = (
                    f"skipped event seq={event.seq}: day {event.day} jumps "
                    f"more than {self._max_day_skew} past the window head "
                    f"{days[-1]} (would purge the retention window)"
                )
                continue
            try:
                self._store.append_event(
                    event.day,
                    event.user_id,
                    event.query_id,
                    event.clicked_entity_ids,
                )
            except KeyError:
                self._events_skipped += 1
                self._last_error = (
                    f"skipped event seq={event.seq}: query "
                    f"{event.query_id} is not registered and the event "
                    "carried no query_text"
                )
                continue
            self._events_applied += 1
            self._pending_since_generation += 1
            applied += 1
        return applied

    # -- the micro-batch cycle -----------------------------------------------

    def run_once(self, timeout_s: float = 1.0) -> Optional[Generation]:
        """One cycle: take a batch, apply it, maybe produce a generation.

        Returns the new generation when one was produced (enough events
        pending), else ``None``. Swap failures are counted and recorded
        but not raised — the read path keeps serving the previous
        generation, which is the whole point of the rollback design.
        """
        batch = self._pipe.take_batch(
            max_events=self._batch_max_events,
            max_age_s=self._batch_max_age_s,
            timeout_s=timeout_s,
        )
        with self._state_lock:
            self._apply_events(batch)
            if self._pending_since_generation < self._min_batch_events:
                return None
            return self._advance_generation()

    def force_generation(self) -> Optional[Generation]:
        """Produce a generation from whatever is pending (drain hook)."""
        with self._state_lock:
            if self._pending_since_generation == 0:
                return None
            return self._advance_generation()

    def _advance_generation(self) -> Generation:
        """Slide the window over the store and roll the result out."""
        with traced(
            "updater.batch_fold",
            tags={
                "generation": str(self._generation_number + 1),
                "pending": str(self._pending_since_generation),
            },
        ):
            return self._advance_generation_inner()

    def _advance_generation_inner(self) -> Generation:
        days = self._store.days()
        last_day = days[-1] if days else 0
        update = self._inc.advance(self._store.snapshot(), last_day)
        self._generation_number += 1
        generation = Generation(
            number=self._generation_number,
            model=update.model,
            entity_categories=self._inc.entity_categories,
            applied_seq=self._applied_seq,
            last_day=last_day,
        )
        if self._generations_dir is not None:
            target = self._generations_dir / f"gen-{generation.number:05d}"
            update.model.save(
                target,
                entity_categories=generation.entity_categories,
                metadata={
                    "generation": generation.number,
                    "applied_seq": generation.applied_seq,
                    "last_day": generation.last_day,
                },
            )
            generation = Generation(
                number=generation.number,
                model=generation.model,
                entity_categories=generation.entity_categories,
                applied_seq=generation.applied_seq,
                last_day=generation.last_day,
                snapshot_dir=target,
            )
        self._pending_since_generation = 0
        if self._switch is not None:
            skip_rollout = False
            previous = self._switch.current
            if self._drift_gate is not None and previous is not None:
                # A trivially-different generation is produced and
                # checkpointed (durability is unconditional) but not
                # rolled out: the swap's reference build + fleet-wide
                # cache invalidation buy no reader-visible change.
                try:
                    skip_rollout = self._drift_gate.should_skip(
                        previous, generation
                    )
                except Exception as exc:  # noqa: BLE001 - gate is advisory
                    self._last_error = (
                        f"drift gate failed ({type(exc).__name__}: {exc}); "
                        "rolling out unconditionally"
                    )
            if skip_rollout:
                self._rollouts_skipped += 1
            else:
                try:
                    self._switch.swap(generation)
                except SwapError as exc:
                    self._swap_failures += 1
                    self._last_error = str(exc)
        # Operator-facing progress record, NOT a recovery cursor: the
        # in-memory store rebuilds from the full retained WAL on every
        # restart (recover() needs all window events), so the
        # checkpoint exists to tell an operator — atomically, next to
        # the log — which WAL seq the last shipped generation covered.
        write_checkpoint(
            self._pipe.wal.directory,
            {
                "applied_seq": generation.applied_seq,
                "generation": generation.number,
                "last_day": generation.last_day,
            },
        )
        if self._on_generation is not None:
            # Must run before compaction: a shipper subscriber copies
            # the closed segments that produced this generation.
            try:
                self._on_generation(generation)
            except Exception as exc:  # noqa: BLE001 - subscriber is advisory
                self._last_error = (
                    f"on_generation hook failed "
                    f"({type(exc).__name__}: {exc})"
                )
        # Events older than the new window can never be refit again.
        self._pipe.wal.compact(update.first_day)
        return generation

    # -- background operation ------------------------------------------------

    def start(self) -> "StreamingUpdater":
        """Run the micro-batch loop on a daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("updater already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    self.run_once(timeout_s=0.25)
                except Exception as exc:  # noqa: BLE001 - keep serving
                    self._last_error = f"{type(exc).__name__}: {exc}"

        self._thread = threading.Thread(
            target=loop, name="shoal-streaming-updater", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop the loop; with ``drain`` apply EVERY still-queued event
        (they were all acknowledged as durable) and ship one final
        generation covering them."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
        if drain:
            while True:
                batch = self._pipe.take_batch(
                    max_events=self._batch_max_events,
                    max_age_s=0.0,
                    timeout_s=0.0,
                )
                if not batch:
                    break
                with self._state_lock:
                    self._apply_events(batch)
            self.force_generation()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def last_error(self) -> Optional[str]:
        return self._last_error

    # -- introspection -------------------------------------------------------

    def stats(self) -> UpdaterStats:
        # Under the state lock: the metrics endpoint scrapes from HTTP
        # threads while the updater thread mutates the store, and an
        # unlocked days() iterates the segment dict mid-insert.
        with self._state_lock:
            days = self._store.days()
            return UpdaterStats(
                events_applied=self._events_applied,
                events_duplicate=self._events_duplicate,
                events_skipped=self._events_skipped,
                applied_seq=self._applied_seq,
                generations=self._generation_number,
                swap_failures=self._swap_failures,
                rollouts_skipped=self._rollouts_skipped,
                last_day=days[-1] if days else None,
                running=self.running,
            )

    def stats_dict(self) -> Dict[str, Any]:
        out = self.stats().to_dict()
        if self._switch is not None:
            out["switch"] = self._switch.stats()
        if self._drift_gate is not None:
            out["drift"] = self._drift_gate.stats()
        if self._last_error is not None:
            out["last_error"] = self._last_error
        return out
