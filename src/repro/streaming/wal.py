"""Durable write-ahead log for incoming query events.

The WAL is the durability boundary of the write path: an event is
acknowledged to the client only after its record is in the log, so a
crash between admission and model update loses nothing — the updater
replays the log on restart and rebuilds exactly the state it had.

On-disk layout (one directory per log)::

    wal-00000001.jsonl      closed segment
    wal-00000002.jsonl      ...
    wal-00000003.jsonl      active segment (appends go here)
    CHECKPOINT.json         applied-progress sidecar (atomic rename)

Each record is one JSON line::

    {"crc": 3735928559, "event": {"seq": 17, "day": 7, ...}}

``crc`` is the CRC-32 of the canonical (sorted-key, no-whitespace)
serialisation of ``event``, verified on every replay. Sequence numbers
are assigned by the log, strictly monotonic, and are the idempotency
key of the whole subsystem: replaying the same record twice is
detectable by ``seq`` alone.

**Crash recovery.** A process killed mid-append leaves a torn final
line in the *active* segment. Opening the log detects it, truncates
the segment back to the last intact record, and carries on — that is
the only place corruption is tolerated; a bad checksum anywhere else
raises :class:`WalCorruption` (the storage is damaged, not merely
interrupted).

**Fsync policy.** ``"always"`` fsyncs every append (durable against
power loss, slowest), ``"batch"`` fsyncs on :meth:`sync` — which the
ingest pipe calls once per admitted batch — and ``"never"`` leaves
flushing to the OS (benchmarks only).

**Compaction.** Events feed a sliding-window model, so segments whose
newest event predates the retention window are dead weight;
:meth:`compact` removes closed segments whose ``max_day`` falls before
the window start. The active segment is never compacted.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "IngestEvent",
    "WalCorruption",
    "WriteAheadLog",
    "read_checkpoint",
    "write_checkpoint",
]

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"
_CHECKPOINT = "CHECKPOINT.json"

FSYNC_POLICIES = ("always", "batch", "never")


class WalCorruption(Exception):
    """A record failed its checksum outside the recoverable torn tail."""


@dataclass(frozen=True)
class IngestEvent:
    """One durable query event: a user issued a query and clicked.

    ``seq`` is the log-assigned, strictly monotonic sequence number —
    the idempotency key for replay. ``query_text`` rides along when the
    query string was first seen live (the serving side registers it
    before folding the event into the window).
    """

    seq: int
    day: int
    user_id: int
    query_id: int
    clicked_entity_ids: Tuple[int, ...]
    query_text: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "day": self.day,
            "user_id": self.user_id,
            "query_id": self.query_id,
            "clicked": list(self.clicked_entity_ids),
        }
        if self.query_text is not None:
            out["query_text"] = self.query_text
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "IngestEvent":
        try:
            return cls(
                seq=int(payload["seq"]),
                day=int(payload["day"]),
                user_id=int(payload["user_id"]),
                query_id=int(payload["query_id"]),
                clicked_entity_ids=tuple(
                    int(e) for e in payload.get("clicked", ())
                ),
                query_text=(
                    None
                    if payload.get("query_text") is None
                    else str(payload["query_text"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WalCorruption(f"malformed WAL event {payload!r}: {exc}")


def _canonical(event_dict: Dict[str, Any]) -> bytes:
    return json.dumps(
        event_dict, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _crc(event_dict: Dict[str, Any]) -> int:
    return zlib.crc32(_canonical(event_dict)) & 0xFFFFFFFF


def _segment_number(path: Path) -> int:
    return int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


def _segment_name(number: int) -> str:
    return f"{_SEGMENT_PREFIX}{number:08d}{_SEGMENT_SUFFIX}"


@dataclass
class _SegmentMeta:
    path: Path
    n_events: int = 0
    min_seq: Optional[int] = None
    max_seq: Optional[int] = None
    max_day: Optional[int] = None

    def observe(self, event: IngestEvent) -> None:
        self.n_events += 1
        if self.min_seq is None:
            self.min_seq = event.seq
        self.max_seq = event.seq
        self.max_day = (
            event.day
            if self.max_day is None
            else max(self.max_day, event.day)
        )


def write_checkpoint(directory: Union[str, Path], payload: Dict[str, Any]) -> Path:
    """Atomically persist applied-progress metadata next to the log.

    Written via temp-file + rename so a crash mid-write leaves the
    previous checkpoint intact, never a torn one. This is an
    operator-facing progress record (which seq the last shipped
    generation covered), not a recovery cursor — recovery always
    replays the full retained WAL because the window store is
    in-memory.
    """
    from repro._util import atomic_write_json

    return atomic_write_json(Path(directory) / _CHECKPOINT, payload)


def read_checkpoint(directory: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The last checkpoint payload, or None if none was ever written."""
    path = Path(directory) / _CHECKPOINT
    if not path.is_file():
        return None
    return json.loads(path.read_text())


class WriteAheadLog:
    """Append-only, segmented, checksummed event log (thread-safe).

    Opening an existing directory scans every segment: sequence
    numbering resumes after the highest intact record, per-segment
    day/seq ranges are rebuilt for compaction, and a torn tail on the
    active segment is truncated away (see module docstring).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        segment_max_events: int = 4096,
        fsync: str = "batch",
    ):
        if segment_max_events < 1:
            raise ValueError(
                f"segment_max_events must be >= 1, got {segment_max_events}"
            )
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._segment_max_events = segment_max_events
        self._fsync = fsync
        self._lock = threading.Lock()
        self._appended = 0
        self._fsyncs = 0
        self._compacted_segments = 0
        self._closed = False

        self._segments: List[_SegmentMeta] = []
        self._next_seq = 1
        self._recover()

        if not self._segments:
            self._segments.append(
                _SegmentMeta(self._dir / _segment_name(1))
            )
        active = self._segments[-1]
        self._handle = open(active.path, "a", encoding="utf-8")

    # -- lifecycle -----------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended event will get."""
        with self._lock:
            return self._next_seq

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            if self._fsync != "never":
                self._do_fsync()
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery ------------------------------------------------------------

    def _segment_paths(self) -> List[Path]:
        return sorted(
            (
                p
                for p in self._dir.iterdir()
                if p.name.startswith(_SEGMENT_PREFIX)
                and p.name.endswith(_SEGMENT_SUFFIX)
            ),
            key=_segment_number,
        )

    def _recover(self) -> None:
        """Scan all segments, rebuild metadata, repair a torn tail."""
        paths = self._segment_paths()
        for i, path in enumerate(paths):
            last = i == len(paths) - 1
            meta = _SegmentMeta(path)
            good_bytes = 0
            with open(path, "rb") as fh:
                for raw in fh:
                    try:
                        event = self._decode_line(raw)
                    except WalCorruption:
                        if last and not fh.readline():
                            # Torn tail: the final line of the final
                            # segment — truncate it away below.
                            break
                        raise WalCorruption(
                            f"corrupt record in {path.name} at byte "
                            f"{good_bytes} (not a recoverable torn tail)"
                        )
                    meta.observe(event)
                    good_bytes += len(raw)
            if path.stat().st_size > good_bytes:
                if not last:
                    raise WalCorruption(
                        f"trailing garbage in closed segment {path.name}"
                    )
                with open(path, "r+b") as fh:
                    fh.truncate(good_bytes)
            self._segments.append(meta)
            if meta.max_seq is not None:
                self._next_seq = max(self._next_seq, meta.max_seq + 1)

    @staticmethod
    def _decode_line(raw: bytes) -> IngestEvent:
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WalCorruption(f"undecodable WAL line: {exc}")
        if (
            not isinstance(record, dict)
            or "crc" not in record
            or not isinstance(record.get("event"), dict)
        ):
            raise WalCorruption(f"not a WAL record: {record!r}")
        event_dict = record["event"]
        if _crc(event_dict) != record["crc"]:
            raise WalCorruption(
                f"checksum mismatch for event {event_dict.get('seq')!r}"
            )
        return IngestEvent.from_dict(event_dict)

    # -- writes --------------------------------------------------------------

    def _do_fsync(self) -> None:
        """fsync the active handle, counting every real disk barrier
        (caller holds the lock). The counter is what the coalescing
        benchmark gates on: batched appends must amortize these."""
        os.fsync(self._handle.fileno())
        self._fsyncs += 1

    @staticmethod
    def _encode(event: IngestEvent) -> str:
        event_dict = event.to_dict()
        return json.dumps(
            {"crc": _crc(event_dict), "event": event_dict},
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )

    def _append_locked(
        self,
        *,
        day: int,
        user_id: int,
        query_id: int,
        clicked_entity_ids: Tuple[int, ...] = (),
        query_text: Optional[str] = None,
    ) -> IngestEvent:
        """Assign a seq, write one record, roll if full (no flush/sync)."""
        event = IngestEvent(
            seq=self._next_seq,
            day=day,
            user_id=user_id,
            query_id=query_id,
            clicked_entity_ids=tuple(clicked_entity_ids),
            query_text=query_text,
        )
        self._next_seq += 1
        self._handle.write(self._encode(event) + "\n")
        active = self._segments[-1]
        active.observe(event)
        self._appended += 1
        if active.n_events >= self._segment_max_events:
            self._roll_segment()
        return event

    def append(
        self,
        *,
        day: int,
        user_id: int,
        query_id: int,
        clicked_entity_ids: Tuple[int, ...] = (),
        query_text: Optional[str] = None,
    ) -> IngestEvent:
        """Durably record one event; returns it with its assigned seq."""
        with self._lock:
            if self._closed:
                raise ValueError("write-ahead log is closed")
            event = self._append_locked(
                day=day,
                user_id=user_id,
                query_id=query_id,
                clicked_entity_ids=clicked_entity_ids,
                query_text=query_text,
            )
            self._handle.flush()
            if self._fsync == "always":
                self._do_fsync()
            return event

    def append_many(
        self, batch: Sequence[Mapping[str, Any]]
    ) -> List[IngestEvent]:
        """Durably record a batch of events with ONE disk barrier.

        ``batch`` is a sequence of :meth:`append` keyword dicts
        (``day``, ``query_id`` required; ``user_id``,
        ``clicked_entity_ids``, ``query_text`` optional). Seqs are
        assigned contiguously under one lock hold, and under the
        ``"always"`` policy the whole batch is covered by a single
        trailing fsync — the amortization the coalescing async edge
        exists for. Durable-before-ack is preserved because the caller
        acks only after this returns. Returns the events in order.
        """
        if not batch:
            return []
        events: List[IngestEvent] = []
        with self._lock:
            if self._closed:
                raise ValueError("write-ahead log is closed")
            for fields in batch:
                events.append(
                    self._append_locked(
                        day=fields["day"],
                        user_id=fields.get("user_id", 0),
                        query_id=fields["query_id"],
                        clicked_entity_ids=tuple(
                            fields.get("clicked_entity_ids", ())
                        ),
                        query_text=fields.get("query_text"),
                    )
                )
            self._handle.flush()
            if self._fsync == "always":
                self._do_fsync()
        return events

    def _roll_segment(self) -> None:
        """Close the active segment and open the next (caller holds lock).

        The directory entry is fsynced after the close so a crash right
        after the roll cannot leave a shipper observing a closed
        segment whose name is not yet durable in the directory — a
        closed segment is a *published* artifact (segment shipping
        copies it to followers), so its link must be as durable as its
        bytes.
        """
        self._handle.flush()
        if self._fsync != "never":
            self._do_fsync()
        self._handle.close()
        if self._fsync != "never":
            self._fsync_directory()
        number = _segment_number(self._segments[-1].path) + 1
        meta = _SegmentMeta(self._dir / _segment_name(number))
        self._segments.append(meta)
        self._handle = open(meta.path, "a", encoding="utf-8")

    def _fsync_directory(self) -> None:
        """Make the segment files' directory entries durable."""
        try:
            dir_fd = os.open(self._dir, os.O_RDONLY)
        except OSError:
            return  # platform cannot open directories (e.g. Windows)
        try:
            os.fsync(dir_fd)
        except OSError:
            pass  # directory fsync unsupported on this filesystem
        finally:
            os.close(dir_fd)

    def roll(self) -> Optional[Path]:
        """Publicly close the active segment so it becomes shippable.

        The segment shipper calls this when a freshly produced
        generation's boundary sequence still sits in the active
        segment: rolling makes every event the generation covers part
        of a *closed* (immutable, shippable) segment, which bounds the
        follower publish lag deterministically. A roll of an empty
        active segment is a no-op (returns None) so repeated calls
        cannot litter the log with empty files.
        """
        with self._lock:
            if self._closed:
                raise ValueError("write-ahead log is closed")
            if self._segments[-1].n_events == 0:
                return None
            closed = self._segments[-1].path
            self._roll_segment()
            return closed

    def sync(self) -> None:
        """Flush + fsync the active segment (the "batch" policy hook)."""
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            if self._fsync != "never":
                self._do_fsync()

    # -- reads ---------------------------------------------------------------

    def replay(self, after_seq: int = 0) -> Iterator[IngestEvent]:
        """Yield every intact event with ``seq > after_seq``, in order.

        Safe to call on a live log (appends during iteration may or may
        not be seen — replay before starting writers for exact counts).
        """
        with self._lock:
            paths = [m.path for m in self._segments if m.path.is_file()]
        for i, path in enumerate(paths):
            last = i == len(paths) - 1
            with open(path, "rb") as fh:
                for raw in fh:
                    try:
                        event = self._decode_line(raw)
                    except WalCorruption:
                        if last and not fh.readline():
                            return  # torn live tail — recoverable
                        raise
                    if event.seq > after_seq:
                        yield event

    def event_count(self) -> int:
        """Total intact events currently retained in the log."""
        return sum(1 for _ in self.replay())

    def segments(self) -> List[Path]:
        with self._lock:
            return [m.path for m in self._segments]

    def closed_segments(self) -> List[Dict[str, Any]]:
        """Every closed (immutable) segment, oldest first.

        Each entry carries the metadata a shipper needs to publish the
        segment without re-reading it under the log's lock: ``path``,
        ``n_events``, ``min_seq``, ``max_seq``, ``max_day``. The active
        segment is never included — it is still being appended to, so
        copying it would ship a torn suffix.
        """
        with self._lock:
            return [
                {
                    "path": m.path,
                    "n_events": m.n_events,
                    "min_seq": m.min_seq,
                    "max_seq": m.max_seq,
                    "max_day": m.max_day,
                }
                for m in self._segments[:-1]
            ]

    # -- compaction ----------------------------------------------------------

    def compact(self, retain_from_day: int) -> List[Path]:
        """Drop closed segments fully older than ``retain_from_day``.

        A segment is removable when every event in it has
        ``day < retain_from_day`` — i.e. nothing in it can ever be part
        of the sliding window again. Returns the removed paths.
        """
        removed: List[Path] = []
        with self._lock:
            keep: List[_SegmentMeta] = []
            for meta in self._segments[:-1]:  # never the active segment
                if meta.max_day is not None and meta.max_day < retain_from_day:
                    meta.path.unlink(missing_ok=True)
                    removed.append(meta.path)
                    self._compacted_segments += 1
                else:
                    keep.append(meta)
            keep.append(self._segments[-1])
            self._segments = keep
        return removed

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "directory": str(self._dir),
                "segments": len(self._segments),
                "events_retained": sum(m.n_events for m in self._segments),
                "appended": self._appended,
                "fsyncs": self._fsyncs,
                "compacted_segments": self._compacted_segments,
                "next_seq": self._next_seq,
                "fsync": self._fsync,
            }
