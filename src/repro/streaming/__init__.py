"""Streaming ingest: live query traffic → model updates, zero downtime.

The write path of the serving stack. PRs 1–4 built a production-grade
*read* path (precomputed indexes, snapshots, a sharded cluster, one
typed gateway API); this package turns live query events into new
model generations while that read path keeps answering:

* :mod:`repro.streaming.wal` — :class:`WriteAheadLog`, an append-only,
  segmented, checksummed JSON-lines log of ingest events with fsync
  policies, torn-tail crash recovery, and day-based segment compaction;
* :mod:`repro.streaming.ingest` — :class:`IngestPipe`, the bounded
  admission queue in front of the WAL with count/age batching and
  explicit backpressure policies (shed / block / drop-oldest) surfaced
  as stable gateway :class:`~repro.api.contract.ApiError` codes;
* :mod:`repro.streaming.updater` — :class:`StreamingUpdater`, the
  micro-batch consumer that drains the pipe into
  :class:`~repro.core.incremental.IncrementalShoal` window slides and
  produces versioned snapshot **generations**;
* :mod:`repro.streaming.rollout` — :class:`GenerationSwitch`, which
  hot-swaps a new generation into every attached serving tier
  (:class:`~repro.core.serving.ShoalService`,
  :class:`~repro.serving.router.ClusterRouter`, gateway backends) with
  probe-query health checks and automatic rollback.

Dataflow::

    client ──submit──▶ IngestPipe ──append──▶ WriteAheadLog (durable)
                           │ batch (count/age)
                           ▼
                   StreamingUpdater ──slide──▶ IncrementalShoal
                           │ generation (versioned snapshot)
                           ▼
                   GenerationSwitch ──hot-swap──▶ every serving tier
"""

from repro.streaming.ingest import IngestPipe
from repro.streaming.rollout import (
    Generation,
    GenerationSwitch,
    SwapError,
    SwapReport,
)
from repro.streaming.updater import StreamingUpdater, UpdaterStats
from repro.streaming.wal import (
    IngestEvent,
    WalCorruption,
    WriteAheadLog,
)

__all__ = [
    "IngestEvent",
    "IngestPipe",
    "Generation",
    "GenerationSwitch",
    "StreamingUpdater",
    "SwapError",
    "SwapReport",
    "UpdaterStats",
    "WalCorruption",
    "WriteAheadLog",
]
