"""Admission control for the write path: validate, persist, enqueue.

:class:`IngestPipe` sits between clients (the HTTP ``/v1/ingest``
endpoint, the replayer's write mode, the CLI) and the
:class:`~repro.streaming.updater.StreamingUpdater`:

1. **Validate** the submitted payload (types and bounds) — failures are
   :class:`~repro.api.contract.ApiError` with the contract's stable
   codes, exactly like the read path;
2. **Admit or reject** against a bounded in-memory queue. Overflow
   policy ``"shed"`` rejects with ``ingest_overloaded`` (HTTP 429)
   before any work is done — the load-shedding default; ``"block"``
   waits up to ``block_timeout_s`` for the updater to catch up (then
   sheds); ``"drop_oldest"`` admits by evicting the oldest queued
   event. **Caveat:** an evicted event was already acknowledged and
   WAL-persisted, but the live updater only consumes the queue — the
   event stays out of every generation until a restart replays the
   WAL. That trade (admission over completeness-until-recovery) fits
   replay and bench workloads; serving deployments should keep
   ``shed``;
3. **Persist** the event to the :class:`~repro.streaming.wal.WriteAheadLog`
   *before* acknowledging — the ack means "durable", not "applied";
4. **Hand off** in micro-batches: :meth:`take_batch` groups events by
   count *or* age, whichever threshold trips first, which is what keeps
   update latency bounded under trickle traffic and throughput high
   under floods.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Sequence, Tuple

from repro.api.contract import ApiError
from repro.obs.tracer import traced
from repro.streaming.wal import IngestEvent, WriteAheadLog

__all__ = ["IngestPipe", "OVERFLOW_POLICIES"]

OVERFLOW_POLICIES = ("shed", "block", "drop_oldest")

#: Validation bounds (mirrors the read contract's defensive limits).
MAX_CLICKS_PER_EVENT = 256
MAX_QUERY_TEXT_CHARS = 1024


def _check_int(name: str, value: Any, *, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ApiError(
            "bad_request", f"{name!r} must be an integer, got {value!r}"
        )
    if value < minimum:
        raise ApiError(
            "invalid_argument", f"{name!r} must be >= {minimum}, got {value}"
        )
    return value


def validate_event_payload(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate one wire-shaped ingest event; returns normalised fields.

    Raises :class:`ApiError` (``bad_request`` / ``invalid_argument``)
    exactly like the read contract, so HTTP clients get the same stable
    codes on both paths.
    """
    if not isinstance(payload, Mapping):
        raise ApiError(
            "bad_request",
            f"ingest event must be a JSON object, got "
            f"{type(payload).__name__}",
        )
    allowed = {"day", "user_id", "query_id", "clicked", "query_text"}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ApiError(
            "bad_request", f"unknown ingest field(s): {', '.join(unknown)}"
        )
    for required in ("day", "query_id"):
        if required not in payload:
            raise ApiError(
                "bad_request", f"missing required field {required!r}"
            )
    day = _check_int("day", payload["day"])
    query_id = _check_int("query_id", payload["query_id"])
    user_id = _check_int("user_id", payload.get("user_id", 0))
    clicked_raw = payload.get("clicked", [])
    if isinstance(clicked_raw, (str, bytes)) or not hasattr(
        clicked_raw, "__iter__"
    ):
        raise ApiError(
            "bad_request", "'clicked' must be an array of entity ids"
        )
    clicked: Tuple[int, ...] = tuple(
        _check_int("clicked[]", e) for e in clicked_raw
    )
    if len(clicked) > MAX_CLICKS_PER_EVENT:
        raise ApiError(
            "invalid_argument",
            f"{len(clicked)} clicks exceed the per-event limit of "
            f"{MAX_CLICKS_PER_EVENT}",
        )
    query_text = payload.get("query_text")
    if query_text is not None:
        if not isinstance(query_text, str):
            raise ApiError(
                "bad_request",
                f"'query_text' must be a string or null, got "
                f"{type(query_text).__name__}",
            )
        if not query_text.strip():
            raise ApiError(
                "invalid_argument", "'query_text' must not be empty"
            )
        if len(query_text) > MAX_QUERY_TEXT_CHARS:
            raise ApiError(
                "invalid_argument",
                f"'query_text' is {len(query_text)} characters; the limit "
                f"is {MAX_QUERY_TEXT_CHARS}",
            )
    return {
        "day": day,
        "user_id": user_id,
        "query_id": query_id,
        "clicked_entity_ids": clicked,
        "query_text": query_text,
    }


class IngestPipe:
    """Bounded, WAL-backed admission queue with explicit backpressure."""

    def __init__(
        self,
        wal: WriteAheadLog,
        *,
        max_queue: int = 4096,
        overflow: str = "shed",
        block_timeout_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow!r}"
            )
        if block_timeout_s <= 0:
            raise ValueError(
                f"block_timeout_s must be > 0, got {block_timeout_s}"
            )
        self._wal = wal
        self._max_queue = max_queue
        self._overflow = overflow
        self._block_timeout_s = block_timeout_s
        self._clock = clock
        self._queue: Deque[Tuple[IngestEvent, float]] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._accepted = 0
        self._shed = 0
        self._dropped = 0

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    # -- the write-path entry point ------------------------------------------

    def submit(self, payload: Mapping[str, Any]) -> IngestEvent:
        """Validate → admit → persist → enqueue one event.

        Returns the durable :class:`IngestEvent` (with its assigned
        sequence number). Raises :class:`ApiError`:

        * ``bad_request`` / ``invalid_argument`` — malformed payload;
        * ``ingest_overloaded`` — queue full under ``shed`` (or
          ``block`` after the timeout);
        * ``ingest_unavailable`` — the pipe is closed.
        """
        fields = validate_event_payload(payload)
        with self._not_full:
            if self._closed:
                raise ApiError(
                    "ingest_unavailable", "ingest pipe is closed"
                )
            if len(self._queue) >= self._max_queue:
                if self._overflow == "shed":
                    self._shed += 1
                    raise ApiError(
                        "ingest_overloaded",
                        f"ingest queue is full ({self._max_queue} events); "
                        "retry with backoff",
                    )
                if self._overflow == "drop_oldest":
                    self._queue.popleft()
                    self._dropped += 1
                else:  # block
                    deadline = self._clock() + self._block_timeout_s
                    while len(self._queue) >= self._max_queue:
                        remaining = deadline - self._clock()
                        if self._closed:
                            raise ApiError(
                                "ingest_unavailable", "ingest pipe is closed"
                            )
                        if remaining <= 0 or not self._not_full.wait(
                            timeout=remaining
                        ):
                            if len(self._queue) < self._max_queue:
                                break
                            self._shed += 1
                            raise ApiError(
                                "ingest_overloaded",
                                f"ingest queue stayed full for "
                                f"{self._block_timeout_s:g}s; retry with "
                                "backoff",
                            )
            # Durability before acknowledgement: the WAL record is the
            # admission receipt.
            with traced("ingest.wal_append", tags={"events": "1"}):
                event = self._wal.append(**fields)
            self._queue.append((event, self._clock()))
            self._accepted += 1
            self._not_empty.notify()
            return event

    def submit_many(
        self, payloads: Sequence[Mapping[str, Any]]
    ) -> List[IngestEvent]:
        """Admit a pre-validated batch under one lock hold and ONE WAL
        barrier — the coalescing edge's entry point.

        Every payload must already have passed
        :func:`validate_event_payload` (the edge validates per-request
        so one malformed client cannot fail its batch-mates). The
        backpressure contract mirrors :meth:`submit`, applied to the
        batch head-first:

        * closed pipe → ``ingest_unavailable`` (nothing admitted);
        * ``shed``: admit only what fits; zero room →
          ``ingest_overloaded``; otherwise the admitted prefix is
          returned and the rest counts as shed — the caller detects the
          short return and backpressures per-request;
        * ``drop_oldest``: admit everything, evicting the oldest queued
          events;
        * ``block``: wait up to the timeout for enough room, then shed
          the whole batch (consistent with the "stayed full" message).

        Durable-before-ack holds: events are in the WAL (one fsync per
        batch under the ``"always"`` policy via
        :meth:`~repro.streaming.wal.WriteAheadLog.append_many`) before
        this returns, and the caller acks only after it returns.
        """
        if not payloads:
            return []
        fields = [validate_event_payload(p) for p in payloads]
        n = len(fields)
        with self._not_full:
            if self._closed:
                raise ApiError(
                    "ingest_unavailable", "ingest pipe is closed"
                )
            free = self._max_queue - len(self._queue)
            if self._overflow == "shed":
                n_admit = min(free, n)
                if n_admit == 0:
                    self._shed += n
                    raise ApiError(
                        "ingest_overloaded",
                        f"ingest queue is full ({self._max_queue} events); "
                        "retry with backoff",
                    )
            elif self._overflow == "drop_oldest":
                n_admit = n
                overflow = n - free
                for _ in range(min(max(overflow, 0), len(self._queue))):
                    self._queue.popleft()
                    self._dropped += 1
            else:  # block
                deadline = self._clock() + self._block_timeout_s
                while self._max_queue - len(self._queue) < n:
                    remaining = deadline - self._clock()
                    if self._closed:
                        raise ApiError(
                            "ingest_unavailable", "ingest pipe is closed"
                        )
                    if remaining <= 0 or not self._not_full.wait(
                        timeout=remaining
                    ):
                        if self._max_queue - len(self._queue) >= n:
                            break
                        self._shed += n
                        raise ApiError(
                            "ingest_overloaded",
                            f"ingest queue stayed full for "
                            f"{self._block_timeout_s:g}s; retry with "
                            "backoff",
                        )
                n_admit = n
            # Durability before acknowledgement, one barrier per batch.
            with traced(
                "ingest.wal_append", tags={"events": str(n_admit)}
            ):
                events = self._wal.append_many(fields[:n_admit])
            now = self._clock()
            for event in events:
                self._queue.append((event, now))
            self._accepted += len(events)
            self._shed += n - n_admit
            self._not_empty.notify()
            return events

    # -- the updater-facing side ---------------------------------------------

    def take_batch(
        self,
        *,
        max_events: int = 256,
        max_age_s: float = 0.5,
        timeout_s: float = 1.0,
    ) -> List[IngestEvent]:
        """One micro-batch: up to ``max_events``, or whatever has queued
        once the oldest waiting event is ``max_age_s`` old.

        Blocks up to ``timeout_s`` for the *first* event, then at most
        until the age threshold trips. Returns ``[]`` on timeout or
        when the pipe is closed and drained. The WAL is fsynced once
        per returned batch (the "batch" fsync policy hook).
        """
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        with self._not_empty:
            if not self._queue:
                if self._closed:
                    return []
                self._not_empty.wait(timeout=timeout_s)
            if not self._queue:
                return []
            # Wait for the batch to fill or the head to come of age.
            head_enqueued_at = self._queue[0][1]
            while (
                len(self._queue) < max_events
                and not self._closed
            ):
                remaining = max_age_s - (self._clock() - head_enqueued_at)
                if remaining <= 0:
                    break
                self._not_empty.wait(timeout=remaining)
            batch = []
            while self._queue and len(batch) < max_events:
                batch.append(self._queue.popleft()[0])
            self._not_full.notify_all()
        self._wal.sync()
        return batch

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def close(self) -> None:
        """Refuse new submissions; queued events remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "accepted": self._accepted,
                "shed": self._shed,
                "dropped": self._dropped,
                "queue_depth": len(self._queue),
                "max_queue": self._max_queue,
                "overflow": self._overflow,
                "closed": self._closed,
                "wal": self._wal.stats(),
            }
