"""Simulated user population.

The query log (and later the A/B CTR experiment, paper Sec. 3) is
driven by simulated users. Each user has a small set of preferred
scenarios and an intent-mixing behaviour: when they search, they search
either with a *scenario intent* ("beach dress" — cross-category) or a
*category intent* ("dress" — single category). The paper's central
claim is that topic-based recommendation serves scenario intent better
than the ontology; the click model in :mod:`repro.eval.abtest` uses the
same user objects, so the mechanism is shared end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro._util import check_positive, check_probability, ensure_rng
from repro.data.scenarios import Scenario

__all__ = ["SimulatedUser", "UserPopulation", "UserConfig", "generate_users"]


@dataclass(frozen=True)
class SimulatedUser:
    """A user with latent scenario preferences.

    ``scenario_ids`` are the leaf scenarios this user shops for;
    ``scenario_intent_rate`` is the per-search probability the user
    expresses a scenario (vs. plain category) intent.
    """

    user_id: int
    scenario_ids: tuple
    scenario_intent_rate: float

    def __post_init__(self) -> None:
        if not self.scenario_ids:
            raise ValueError("a user needs at least one preferred scenario")
        check_probability("scenario_intent_rate", self.scenario_intent_rate)


@dataclass(frozen=True)
class UserConfig:
    """Population shape."""

    n_users: int = 500
    scenarios_per_user: int = 2
    scenario_intent_rate: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_users", self.n_users)
        check_positive("scenarios_per_user", self.scenarios_per_user)
        check_probability("scenario_intent_rate", self.scenario_intent_rate)


class UserPopulation:
    """Container for the simulated users."""

    def __init__(self, users: List[SimulatedUser]):
        if not users:
            raise ValueError("population must be non-empty")
        self._users = list(users)

    def __len__(self) -> int:
        return len(self._users)

    def __iter__(self):
        return iter(self._users)

    def __getitem__(self, user_id: int) -> SimulatedUser:
        return self._users[user_id]

    @property
    def users(self) -> List[SimulatedUser]:
        return list(self._users)

    def sample(self, rng: np.random.Generator, size: int) -> List[SimulatedUser]:
        """Draw ``size`` users uniformly with replacement."""
        idx = rng.integers(0, len(self._users), size=size)
        return [self._users[int(i)] for i in idx]


def generate_users(
    scenarios: Sequence[Scenario],
    config: UserConfig = UserConfig(),
) -> UserPopulation:
    """Generate users whose preferences cover the leaf scenarios."""
    rng = ensure_rng(config.seed)
    leaf_ids = [s.scenario_id for s in scenarios if s.parent_id is not None]
    if not leaf_ids:
        raise ValueError("no leaf scenarios available for users")
    per_user = min(config.scenarios_per_user, len(leaf_ids))
    users = []
    for uid in range(config.n_users):
        chosen = tuple(
            sorted(rng.choice(leaf_ids, size=per_user, replace=False).tolist())
        )
        # Vary intent rate slightly per user around the configured mean.
        rate = float(np.clip(rng.normal(config.scenario_intent_rate, 0.1), 0.0, 1.0))
        users.append(SimulatedUser(uid, chosen, rate))
    return UserPopulation(users)
