"""Ground-truth shopping scenarios (what SHOAL is supposed to discover).

The paper's motivating example (Fig. 1b) is the topic "Trip to the
beach" spanning categories "Beach pants", "Swimwear", "Sunblock" — a
*shopping scenario* that the ontology cannot express. In production
these scenarios exist implicitly in user behaviour; our synthetic
marketplace makes them explicit latent variables:

* each scenario is attached to a set of leaf categories it draws from,
* scenarios may be *nested* (a parent scenario "outdoor activities"
  with children "trip to the beach", "mountaineering"), giving the
  hierarchy SHOAL's Parallel HAC should recover,
* item entities and queries are generated conditioned on a scenario,
  which later serves as ground truth for precision/NMI evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from repro._util import check_positive, check_probability, ensure_rng

__all__ = ["Scenario", "ScenarioConfig", "generate_scenarios"]


@dataclass(frozen=True)
class Scenario:
    """A latent shopping scenario.

    ``category_ids`` are the leaf categories whose items participate.
    ``parent_id`` builds the two-level ground-truth hierarchy; root
    scenarios have ``parent_id is None``.
    """

    scenario_id: int
    name: str
    category_ids: tuple
    parent_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.category_ids:
            raise ValueError("a scenario must cover at least one category")


@dataclass(frozen=True)
class ScenarioConfig:
    """Shape of the ground-truth scenario structure.

    ``n_root_scenarios`` parent scenarios each split into
    ``children_per_root`` sub-scenarios. Each sub-scenario covers
    ``categories_per_scenario`` leaf categories sampled from its
    parent's pool; ``category_overlap`` is the probability that a
    category of one sibling also appears in another (scenarios in real
    life overlap: sunblock sells for beach trips *and* hiking).
    """

    n_root_scenarios: int = 6
    children_per_root: int = 3
    categories_per_scenario: int = 5
    category_overlap: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_root_scenarios", self.n_root_scenarios)
        check_positive("children_per_root", self.children_per_root)
        check_positive("categories_per_scenario", self.categories_per_scenario)
        check_probability("category_overlap", self.category_overlap)

    @property
    def n_leaf_scenarios(self) -> int:
        return self.n_root_scenarios * self.children_per_root


_ROOT_THEMES = [
    "beach-holiday",
    "mountaineering",
    "home-office",
    "fitness",
    "baby-care",
    "winter-sports",
    "camping",
    "wedding",
    "gaming-setup",
    "gardening",
    "road-trip",
    "breakfast",
]


def generate_scenarios(
    leaf_category_ids: Sequence[int],
    config: ScenarioConfig = ScenarioConfig(),
) -> List[Scenario]:
    """Generate nested ground-truth scenarios over the given leaf categories.

    Root scenarios partition (softly) the leaf-category space; children
    sample from the parent pool with sibling overlap. Returns roots
    followed by children; ids are dense in that order.
    """
    rng = ensure_rng(config.seed)
    leaf_ids = list(leaf_category_ids)
    if len(leaf_ids) < config.n_root_scenarios:
        raise ValueError(
            f"need at least {config.n_root_scenarios} leaf categories, "
            f"got {len(leaf_ids)}"
        )
    # Partition leaves round-robin into root pools after a shuffle so each
    # root scenario has a distinct-but-arbitrary slice of the ontology.
    shuffled = list(leaf_ids)
    rng.shuffle(shuffled)
    pools: List[List[int]] = [[] for _ in range(config.n_root_scenarios)]
    for i, cid in enumerate(shuffled):
        pools[i % config.n_root_scenarios].append(cid)

    scenarios: List[Scenario] = []
    for r in range(config.n_root_scenarios):
        theme = _ROOT_THEMES[r % len(_ROOT_THEMES)]
        if r >= len(_ROOT_THEMES):
            theme = f"{theme}-{r // len(_ROOT_THEMES)}"
        root_pool = tuple(sorted(pools[r]))
        scenarios.append(Scenario(r, theme, root_pool, None))

    next_id = config.n_root_scenarios
    for r in range(config.n_root_scenarios):
        root = scenarios[r]
        pool = list(root.category_ids)
        per_child = min(config.categories_per_scenario, len(pool))
        for c in range(config.children_per_root):
            chosen = set(
                rng.choice(pool, size=per_child, replace=False).tolist()
            )
            # Sibling overlap: borrow categories from the whole root pool.
            for cid in pool:
                if cid not in chosen and rng.random() < config.category_overlap / max(
                    1, len(pool)
                ) * per_child:
                    chosen.add(cid)
            scenarios.append(
                Scenario(
                    next_id,
                    f"{root.name}/{_child_theme(root.name, c)}",
                    tuple(sorted(chosen)),
                    parent_id=r,
                )
            )
            next_id += 1
    return scenarios


def _child_theme(root_name: str, index: int) -> str:
    flavors = ["essentials", "family", "budget", "premium", "weekend", "pro"]
    return flavors[index % len(flavors)]


def leaf_scenarios(scenarios: Sequence[Scenario]) -> List[Scenario]:
    """Scenarios that have a parent (the fine-grained ground truth)."""
    return [s for s in scenarios if s.parent_id is not None]


def root_scenarios(scenarios: Sequence[Scenario]) -> List[Scenario]:
    """Top-level scenarios (coarse ground truth)."""
    return [s for s in scenarios if s.parent_id is None]


def scenario_by_id(scenarios: Sequence[Scenario]) -> Dict[int, Scenario]:
    return {s.scenario_id: s for s in scenarios}
