"""Synthetic e-commerce marketplace (substitute for proprietary Taobao data).

The paper builds SHOAL from hundreds of millions of Taobao items and a
seven-day sliding window of search queries — data we cannot obtain. This
package generates the closest synthetic equivalent:

* a category **ontology** (the rigid, dictionary-driven taxonomy of
  paper Fig. 1a),
* a vocabulary and **item catalog** with templated titles, collapsed
  into *item entities* as in paper Sec. 2.1,
* latent **shopping scenarios** (ground-truth topics such as "trip to
  the beach") that span multiple ontology categories — exactly the
  structure SHOAL is supposed to recover (paper Fig. 1b),
* a **query log** produced by simulated users who search either with a
  category intent ("dress") or a scenario intent ("beach dress"),
  with Zipfian popularity and configurable noise.

Every generator takes an explicit seed, so a marketplace is a pure
function of its :class:`MarketplaceConfig`.
"""

from repro.data.zipf import ZipfSampler, zipf_weights
from repro.data.ontology import Category, Ontology, OntologyConfig, generate_ontology
from repro.data.vocab import DomainVocabulary, VocabularyConfig, generate_vocabulary
from repro.data.scenarios import Scenario, ScenarioConfig, generate_scenarios
from repro.data.items import Item, ItemEntity, ItemCatalog, ItemConfig, generate_catalog
from repro.data.queries import Query, QueryLog, QueryLogConfig, generate_query_log
from repro.data.users import SimulatedUser, UserPopulation, UserConfig, generate_users
from repro.data.marketplace import Marketplace, MarketplaceConfig, generate_marketplace

__all__ = [
    "ZipfSampler",
    "zipf_weights",
    "Category",
    "Ontology",
    "OntologyConfig",
    "generate_ontology",
    "DomainVocabulary",
    "VocabularyConfig",
    "generate_vocabulary",
    "Scenario",
    "ScenarioConfig",
    "generate_scenarios",
    "Item",
    "ItemEntity",
    "ItemCatalog",
    "ItemConfig",
    "generate_catalog",
    "Query",
    "QueryLog",
    "QueryLogConfig",
    "generate_query_log",
    "SimulatedUser",
    "UserPopulation",
    "UserConfig",
    "generate_users",
    "Marketplace",
    "MarketplaceConfig",
    "generate_marketplace",
]
