"""Category ontology generator (paper Fig. 1a).

The ontology-driven taxonomy is the rigid category tree maintained by
e-commerce platforms ("Ladies' wear" → "Dress"). SHOAL does not replace
it — it builds topics *across* it and then mines correlations between
its leaf categories (paper Sec. 2.4). We therefore need a realistic
category tree as a substrate: a rooted tree of configurable depth and
fan-out whose leaves are the categories items are assigned to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro._util import check_positive, ensure_rng

__all__ = ["Category", "Ontology", "OntologyConfig", "generate_ontology"]

# Department names seed readable category labels; they cycle if the
# configured tree is wider than the list.
_DEPARTMENTS = [
    "apparel",
    "electronics",
    "outdoor",
    "home",
    "beauty",
    "sports",
    "food",
    "toys",
    "office",
    "garden",
    "auto",
    "pet",
    "baby",
    "jewelry",
    "health",
    "music",
]


@dataclass(frozen=True)
class Category:
    """A node of the ontology tree.

    ``category_id`` is dense (0..n-1); ``parent_id`` is ``None`` only
    for the synthetic root. Leaf categories are the ones items attach
    to, mirroring the paper's leaf category "Dress".
    """

    category_id: int
    name: str
    parent_id: Optional[int]
    depth: int

    def is_root(self) -> bool:
        return self.parent_id is None


@dataclass(frozen=True)
class OntologyConfig:
    """Shape of the generated category tree."""

    depth: int = 3
    branching: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("depth", self.depth)
        check_positive("branching", self.branching)


class Ontology:
    """A rooted category tree with O(1) parent/child navigation.

    The tree is immutable after construction. ``leaves()`` returns the
    categories that carry items; ``path_to_root`` supports the
    coarse-matching baseline ("move one level up", paper Sec. 1).
    """

    def __init__(self, categories: List[Category]):
        if not categories:
            raise ValueError("an ontology needs at least a root category")
        self._categories: Dict[int, Category] = {}
        self._children: Dict[int, List[int]] = {}
        self._root_id: Optional[int] = None
        for cat in categories:
            if cat.category_id in self._categories:
                raise ValueError(f"duplicate category_id {cat.category_id}")
            self._categories[cat.category_id] = cat
            self._children.setdefault(cat.category_id, [])
        for cat in categories:
            if cat.parent_id is None:
                if self._root_id is not None:
                    raise ValueError("ontology must have exactly one root")
                self._root_id = cat.category_id
            else:
                if cat.parent_id not in self._categories:
                    raise ValueError(
                        f"category {cat.category_id} references missing parent "
                        f"{cat.parent_id}"
                    )
                self._children[cat.parent_id].append(cat.category_id)
        if self._root_id is None:
            raise ValueError("ontology must have a root (parent_id=None)")

    # -- basic accessors -------------------------------------------------

    def __len__(self) -> int:
        return len(self._categories)

    def __contains__(self, category_id: int) -> bool:
        return category_id in self._categories

    def __iter__(self) -> Iterator[Category]:
        return iter(sorted(self._categories.values(), key=lambda c: c.category_id))

    @property
    def root(self) -> Category:
        assert self._root_id is not None
        return self._categories[self._root_id]

    def get(self, category_id: int) -> Category:
        """Return a category by id, raising ``KeyError`` if absent."""
        return self._categories[category_id]

    def name_of(self, category_id: int) -> str:
        return self._categories[category_id].name

    def children(self, category_id: int) -> List[Category]:
        return [self._categories[c] for c in self._children[category_id]]

    def parent(self, category_id: int) -> Optional[Category]:
        pid = self._categories[category_id].parent_id
        return None if pid is None else self._categories[pid]

    def is_leaf(self, category_id: int) -> bool:
        return not self._children[category_id]

    def leaves(self) -> List[Category]:
        """All leaf categories (the ones items are placed into)."""
        return [c for c in self if self.is_leaf(c.category_id)]

    def leaf_ids(self) -> List[int]:
        return [c.category_id for c in self.leaves()]

    # -- navigation ------------------------------------------------------

    def path_to_root(self, category_id: int) -> List[Category]:
        """Categories from ``category_id`` up to (and including) the root."""
        path = [self.get(category_id)]
        while path[-1].parent_id is not None:
            path.append(self.get(path[-1].parent_id))
        return path

    def lowest_common_ancestor(self, a: int, b: int) -> Category:
        """LCA of two categories; used by the ontology recommender baseline."""
        ancestors_a = {c.category_id for c in self.path_to_root(a)}
        for cat in self.path_to_root(b):
            if cat.category_id in ancestors_a:
                return cat
        return self.root  # unreachable in a valid tree, kept defensive

    def distance(self, a: int, b: int) -> int:
        """Tree distance (number of edges) between two categories."""
        lca = self.lowest_common_ancestor(a, b)
        da = self.get(a).depth - lca.depth
        db = self.get(b).depth - lca.depth
        return da + db

    def subtree_leaf_ids(self, category_id: int) -> List[int]:
        """Leaf ids underneath ``category_id`` (inclusive if it is a leaf)."""
        out: List[int] = []
        stack = [category_id]
        while stack:
            cid = stack.pop()
            kids = self._children[cid]
            if not kids:
                out.append(cid)
            else:
                stack.extend(kids)
        return sorted(out)

    def describe(self) -> str:
        """A short human-readable summary used by examples."""
        return (
            f"Ontology(categories={len(self)}, leaves={len(self.leaves())}, "
            f"depth={max(c.depth for c in self)})"
        )


def generate_ontology(config: OntologyConfig = OntologyConfig()) -> Ontology:
    """Generate a full ``branching``-ary category tree of given depth.

    Names compose the department path ("apparel/apparel-2/apparel-2-1")
    so examples print readable labels while ids stay dense.
    """
    rng = ensure_rng(config.seed)
    categories: List[Category] = [Category(0, "all", None, 0)]
    frontier = [0]
    next_id = 1
    for depth in range(1, config.depth + 1):
        new_frontier: List[int] = []
        for parent_id in frontier:
            parent = categories[parent_id]
            for j in range(config.branching):
                if depth == 1:
                    name = _DEPARTMENTS[(next_id - 1) % len(_DEPARTMENTS)]
                    if next_id - 1 >= len(_DEPARTMENTS):
                        name = f"{name}{(next_id - 1) // len(_DEPARTMENTS)}"
                else:
                    name = f"{parent.name}-{j}"
                categories.append(Category(next_id, name, parent_id, depth))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    # A tiny amount of irregularity: prune a few random leaves so the
    # tree is not perfectly balanced (real ontologies never are).
    leaves = [c.category_id for c in categories if c.depth == config.depth]
    n_prune = max(0, len(leaves) // 16)
    pruned = set(rng.choice(leaves, size=n_prune, replace=False).tolist()) if n_prune else set()
    kept = [c for c in categories if c.category_id not in pruned]
    # Re-index densely so downstream arrays stay compact.
    remap = {c.category_id: i for i, c in enumerate(kept)}
    reindexed = [
        Category(
            remap[c.category_id],
            c.name,
            None if c.parent_id is None else remap[c.parent_id],
            c.depth,
        )
        for c in kept
    ]
    return Ontology(reindexed)
