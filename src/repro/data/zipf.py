"""Zipfian sampling utilities.

Real query logs are heavily skewed: a few head queries dominate while a
long tail appears once or twice. The generators in this package draw
query and item popularity from truncated Zipf distributions so the
bipartite graph exhibits the degree skew the paper's algorithms face in
production.
"""

from __future__ import annotations

import numpy as np

from repro._util import RngLike, check_positive, ensure_rng

__all__ = ["zipf_weights", "ZipfSampler"]


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf probabilities over ranks ``1..n``.

    ``exponent`` controls skew: 0 is uniform, larger is more head-heavy.

    >>> w = zipf_weights(4, 1.0)
    >>> round(float(w.sum()), 6)
    1.0
    >>> bool(w[0] > w[-1])
    True
    """
    check_positive("n", n)
    check_positive("exponent", exponent, allow_zero=True)
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class ZipfSampler:
    """Draw indices ``0..n-1`` with Zipfian probability by rank.

    A thin, seedable wrapper used by the query-log and catalog
    generators. Rank order is the natural index order: index 0 is the
    most popular element.
    """

    def __init__(self, n: int, exponent: float = 1.0, seed: RngLike = None):
        check_positive("n", n)
        self._n = int(n)
        self._exponent = float(exponent)
        self._weights = zipf_weights(self._n, self._exponent)
        self._rng = ensure_rng(seed)

    @property
    def n(self) -> int:
        return self._n

    @property
    def exponent(self) -> float:
        return self._exponent

    @property
    def weights(self) -> np.ndarray:
        """The probability of each index (rank order)."""
        return self._weights.copy()

    def sample(self, size: int = 1) -> np.ndarray:
        """Draw ``size`` indices with replacement."""
        check_positive("size", size)
        return self._rng.choice(self._n, size=size, p=self._weights)

    def sample_one(self) -> int:
        """Draw a single index."""
        return int(self.sample(1)[0])

    def expected_counts(self, total: int) -> np.ndarray:
        """Expected number of occurrences of each index in ``total`` draws."""
        check_positive("total", total, allow_zero=True)
        return self._weights * total
