"""Domain vocabulary generator.

Item titles and queries are built from a structured vocabulary: each
leaf category gets category-specific *product nouns* and *attribute
words*; each shopping scenario gets *scenario words* ("beach",
"camping") that cut across categories; and a pool of generic filler
words ("new", "sale") adds realistic noise shared by everything.

The content-driven similarity of paper Eq. 2 relies on titles of
related items sharing vocabulary — this module controls exactly how
much vocabulary is shared and where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro._util import check_positive, ensure_rng

__all__ = ["VocabularyConfig", "DomainVocabulary", "generate_vocabulary"]

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def _synth_word(rng, min_syllables: int = 2, max_syllables: int = 3) -> str:
    """Generate a pronounceable synthetic word (CV syllables)."""
    n = int(rng.integers(min_syllables, max_syllables + 1))
    parts = []
    for _ in range(n):
        parts.append(_CONSONANTS[int(rng.integers(len(_CONSONANTS)))])
        parts.append(_VOWELS[int(rng.integers(len(_VOWELS)))])
    return "".join(parts)


@dataclass(frozen=True)
class VocabularyConfig:
    """Sizes of each vocabulary stratum."""

    nouns_per_category: int = 6
    attributes_per_category: int = 8
    words_per_scenario: int = 6
    generic_words: int = 40
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("nouns_per_category", self.nouns_per_category)
        check_positive("attributes_per_category", self.attributes_per_category)
        check_positive("words_per_scenario", self.words_per_scenario)
        check_positive("generic_words", self.generic_words)


class DomainVocabulary:
    """Word strata indexed by category and scenario id.

    All words are globally unique across strata, so a token's origin is
    unambiguous — which makes ground-truth-based evaluation of the
    description matcher (paper Sec. 2.3) possible.
    """

    def __init__(
        self,
        category_nouns: Dict[int, List[str]],
        category_attributes: Dict[int, List[str]],
        scenario_words: Dict[int, List[str]],
        generic: List[str],
    ):
        self._category_nouns = category_nouns
        self._category_attributes = category_attributes
        self._scenario_words = scenario_words
        self._generic = list(generic)
        seen: Dict[str, str] = {}
        for stratum, words in self._iter_strata():
            for w in words:
                if w in seen:
                    raise ValueError(
                        f"word {w!r} appears in both {seen[w]} and {stratum}"
                    )
                seen[w] = stratum

    def _iter_strata(self):
        for cid, ws in self._category_nouns.items():
            yield f"nouns[{cid}]", ws
        for cid, ws in self._category_attributes.items():
            yield f"attrs[{cid}]", ws
        for sid, ws in self._scenario_words.items():
            yield f"scenario[{sid}]", ws
        yield "generic", self._generic

    # -- accessors --------------------------------------------------------

    def nouns(self, category_id: int) -> List[str]:
        """Product nouns of a leaf category ("dress", "jeans")."""
        return list(self._category_nouns[category_id])

    def attributes(self, category_id: int) -> List[str]:
        """Attribute words of a leaf category ("denim", "floral")."""
        return list(self._category_attributes[category_id])

    def scenario_words(self, scenario_id: int) -> List[str]:
        """Cross-category words of a scenario ("beach", "sunset")."""
        return list(self._scenario_words[scenario_id])

    def generic_words(self) -> List[str]:
        """Filler words shared by every title and query."""
        return list(self._generic)

    def category_ids(self) -> List[int]:
        return sorted(self._category_nouns)

    def scenario_ids(self) -> List[int]:
        return sorted(self._scenario_words)

    def all_words(self) -> List[str]:
        out: List[str] = []
        for _, ws in self._iter_strata():
            out.extend(ws)
        return out

    def word_origin(self, word: str) -> str:
        """Which stratum a word came from (for diagnostics and tests)."""
        for stratum, ws in self._iter_strata():
            if word in ws:
                return stratum
        raise KeyError(word)

    def __len__(self) -> int:
        return len(self.all_words())


def generate_vocabulary(
    category_ids: Sequence[int],
    scenario_ids: Sequence[int],
    config: VocabularyConfig = VocabularyConfig(),
) -> DomainVocabulary:
    """Generate a :class:`DomainVocabulary` with globally unique words."""
    rng = ensure_rng(config.seed)
    used = set()

    def fresh(prefix: str) -> str:
        # Prefixing by stratum guarantees global uniqueness even when the
        # syllable generator collides.
        for _ in range(1000):
            w = f"{prefix}{_synth_word(rng)}"
            if w not in used:
                used.add(w)
                return w
        raise RuntimeError("vocabulary generator exhausted (increase syllables)")

    category_nouns = {
        cid: [fresh(f"n{cid}") for _ in range(config.nouns_per_category)]
        for cid in category_ids
    }
    category_attributes = {
        cid: [fresh(f"a{cid}") for _ in range(config.attributes_per_category)]
        for cid in category_ids
    }
    scenario_words = {
        sid: [fresh(f"s{sid}") for _ in range(config.words_per_scenario)]
        for sid in scenario_ids
    }
    generic = [fresh("g") for _ in range(config.generic_words)]
    return DomainVocabulary(category_nouns, category_attributes, scenario_words, generic)
