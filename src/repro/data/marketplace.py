"""Top-level synthetic marketplace: one object, one seed, all substrates.

``generate_marketplace`` wires together the ontology, vocabulary,
ground-truth scenarios, item catalog, user population, and query log so
that examples, tests and benches get a fully consistent world from a
single config. Size *profiles* give the benches a common vocabulary for
scaling experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

import numpy as np

from repro.data.items import ItemCatalog, ItemConfig, generate_catalog
from repro.data.ontology import Ontology, OntologyConfig, generate_ontology
from repro.data.queries import QueryLog, QueryLogConfig, generate_query_log
from repro.data.scenarios import (
    Scenario,
    ScenarioConfig,
    generate_scenarios,
    scenario_by_id,
)
from repro.data.users import UserConfig, UserPopulation, generate_users
from repro.data.vocab import DomainVocabulary, VocabularyConfig, generate_vocabulary

__all__ = ["Marketplace", "MarketplaceConfig", "generate_marketplace", "PROFILES"]


@dataclass(frozen=True)
class MarketplaceConfig:
    """All generator configs in one place, sharing a master seed.

    Sub-seeds are derived from ``seed`` so two marketplaces with the
    same config are byte-identical while distinct components remain
    statistically independent.
    """

    ontology: OntologyConfig = OntologyConfig()
    scenarios: ScenarioConfig = ScenarioConfig()
    vocabulary: VocabularyConfig = VocabularyConfig()
    items: ItemConfig = ItemConfig()
    users: UserConfig = UserConfig()
    query_log: QueryLogConfig = QueryLogConfig()
    seed: int = 0

    def with_seed(self, seed: int) -> "MarketplaceConfig":
        return replace(self, seed=seed)


#: Named size profiles used by the scaling benches (E4).
PROFILES: Dict[str, MarketplaceConfig] = {
    "tiny": MarketplaceConfig(
        scenarios=ScenarioConfig(n_root_scenarios=3, children_per_root=2,
                                 categories_per_scenario=3),
        items=ItemConfig(n_entities=120),
        users=UserConfig(n_users=80),
        query_log=QueryLogConfig(events_per_day=400),
    ),
    "small": MarketplaceConfig(
        scenarios=ScenarioConfig(n_root_scenarios=4, children_per_root=3,
                                 categories_per_scenario=4),
        items=ItemConfig(n_entities=300),
        users=UserConfig(n_users=200),
        query_log=QueryLogConfig(events_per_day=1000),
    ),
    "default": MarketplaceConfig(),
    "large": MarketplaceConfig(
        ontology=OntologyConfig(depth=3, branching=5),
        scenarios=ScenarioConfig(n_root_scenarios=8, children_per_root=3,
                                 categories_per_scenario=6),
        items=ItemConfig(n_entities=1500),
        users=UserConfig(n_users=1000),
        query_log=QueryLogConfig(events_per_day=4000),
    ),
    "xlarge": MarketplaceConfig(
        ontology=OntologyConfig(depth=3, branching=6),
        scenarios=ScenarioConfig(n_root_scenarios=10, children_per_root=4,
                                 categories_per_scenario=6),
        items=ItemConfig(n_entities=4000),
        users=UserConfig(n_users=2000),
        query_log=QueryLogConfig(events_per_day=8000),
    ),
}


@dataclass
class Marketplace:
    """A fully generated synthetic marketplace.

    This object is the single input the SHOAL pipeline consumes. Its
    ground-truth fields (``scenarios``, entity ``scenario_id``, query
    ``intent_*``) are used exclusively by :mod:`repro.eval`.
    """

    config: MarketplaceConfig
    ontology: Ontology
    scenarios: List[Scenario]
    vocabulary: DomainVocabulary
    catalog: ItemCatalog
    users: UserPopulation
    query_log: QueryLog

    # -- convenience ------------------------------------------------------

    def scenario(self, scenario_id: int) -> Scenario:
        return scenario_by_id(self.scenarios)[scenario_id]

    def leaf_scenarios(self) -> List[Scenario]:
        return [s for s in self.scenarios if s.parent_id is not None]

    def root_scenarios(self) -> List[Scenario]:
        return [s for s in self.scenarios if s.parent_id is None]

    def n_entities(self) -> int:
        return len(self.catalog)

    def corpus(self) -> List[str]:
        """Training corpus for word2vec: entity titles plus query texts.

        The paper trains word2vec on production text; titles+queries is
        the equivalent text available in this world.
        """
        docs = [e.title for e in self.catalog.entities]
        docs.extend(q.text for q in self.query_log.queries)
        return docs

    def summary(self) -> str:
        return (
            f"Marketplace(entities={len(self.catalog)}, "
            f"items={len(self.catalog.items)}, "
            f"categories={len(self.ontology.leaves())} leaves, "
            f"scenarios={len(self.leaf_scenarios())} leaf / "
            f"{len(self.root_scenarios())} root, "
            f"queries={self.query_log.n_queries()}, "
            f"events={len(self.query_log)})"
        )


def generate_marketplace(
    config: MarketplaceConfig = MarketplaceConfig(),
) -> Marketplace:
    """Generate every substrate of the synthetic world from one config."""
    # Derive independent sub-seeds from the master seed.
    seed_seq = np.random.SeedSequence(config.seed)
    sub = seed_seq.spawn(6)
    seeds = [int(s.generate_state(1)[0]) for s in sub]

    ontology = generate_ontology(replace(config.ontology, seed=seeds[0]))
    leaf_ids = ontology.leaf_ids()
    scenarios = generate_scenarios(
        leaf_ids, replace(config.scenarios, seed=seeds[1])
    )
    scenario_ids = [s.scenario_id for s in scenarios]
    # Vocabulary covers every leaf category (even outside scenarios) so
    # the ontology baseline can form queries anywhere.
    vocabulary = generate_vocabulary(
        leaf_ids, scenario_ids, replace(config.vocabulary, seed=seeds[2])
    )
    catalog = generate_catalog(
        scenarios, vocabulary, replace(config.items, seed=seeds[3])
    )
    users = generate_users(scenarios, replace(config.users, seed=seeds[4]))
    query_log = generate_query_log(
        catalog, scenarios, vocabulary, users,
        replace(config.query_log, seed=seeds[5]),
    )
    return Marketplace(
        config=config,
        ontology=ontology,
        scenarios=scenarios,
        vocabulary=vocabulary,
        catalog=catalog,
        users=users,
        query_log=query_log,
    )
