"""Item catalog and item-entity generator.

Paper Sec. 2.1: "each item entity may contain a set of items with
near-equivalent attribute labels and price". We generate entities first
(the unit the algorithms operate on), then expand each into its member
items. Every entity belongs to one leaf category of the ontology and to
one latent scenario, and carries a templated title built from the
domain vocabulary:

    [scenario words] + [category noun] + [category attributes] + [generic]

That template gives entities in the same scenario overlapping title
vocabulary across categories — the signal Eq. 2 (content similarity)
needs — while entities of the same category share nouns/attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro._util import check_positive, check_probability, ensure_rng
from repro.data.scenarios import Scenario
from repro.data.vocab import DomainVocabulary
from repro.data.zipf import zipf_weights

__all__ = ["Item", "ItemEntity", "ItemCatalog", "ItemConfig", "generate_catalog"]


@dataclass(frozen=True)
class ItemEntity:
    """A group of near-identical items; the vertex unit of SHOAL's graph."""

    entity_id: int
    title: str
    category_id: int
    scenario_id: int            # latent ground truth; evaluation only
    price: float
    n_items: int = 1

    def title_tokens(self) -> List[str]:
        return self.title.split()


@dataclass(frozen=True)
class Item:
    """A concrete item (SKU) belonging to an entity."""

    item_id: int
    entity_id: int
    title: str
    category_id: int
    price: float


@dataclass(frozen=True)
class ItemConfig:
    """Catalog shape parameters.

    ``n_entities`` item entities are distributed over leaf scenarios
    with Zipf skew (popular scenarios carry more inventory). Within an
    entity's scenario, the category is drawn from the scenario's
    category list. ``scenario_word_rate`` controls how many scenario
    words make it into a title (content signal strength);
    ``off_scenario_noise`` is the probability an entity is assigned a
    uniformly random category instead (label noise — the reason
    measured precision is below 100 %).
    """

    n_entities: int = 600
    items_per_entity_mean: float = 3.0
    title_scenario_words: int = 2
    title_attribute_words: int = 2
    title_generic_words: int = 1
    off_scenario_noise: float = 0.02
    scenario_zipf_exponent: float = 0.6
    price_base: float = 20.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_entities", self.n_entities)
        check_positive("items_per_entity_mean", self.items_per_entity_mean)
        check_positive("title_scenario_words", self.title_scenario_words)
        check_positive("title_attribute_words", self.title_attribute_words)
        check_positive("title_generic_words", self.title_generic_words, allow_zero=True)
        check_probability("off_scenario_noise", self.off_scenario_noise)
        check_positive("scenario_zipf_exponent", self.scenario_zipf_exponent, allow_zero=True)
        check_positive("price_base", self.price_base)


class ItemCatalog:
    """The generated inventory: entities, items, and lookup indexes."""

    def __init__(self, entities: List[ItemEntity], items: List[Item]):
        self._entities = list(entities)
        self._items = list(items)
        self._by_category: Dict[int, List[int]] = {}
        self._by_scenario: Dict[int, List[int]] = {}
        for e in self._entities:
            self._by_category.setdefault(e.category_id, []).append(e.entity_id)
            self._by_scenario.setdefault(e.scenario_id, []).append(e.entity_id)

    # -- accessors --------------------------------------------------------

    @property
    def entities(self) -> List[ItemEntity]:
        return list(self._entities)

    @property
    def items(self) -> List[Item]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._entities)

    def entity(self, entity_id: int) -> ItemEntity:
        return self._entities[entity_id]

    def entities_in_category(self, category_id: int) -> List[int]:
        return list(self._by_category.get(category_id, []))

    def entities_in_scenario(self, scenario_id: int) -> List[int]:
        """Ground-truth members of a scenario; for evaluation only."""
        return list(self._by_scenario.get(scenario_id, []))

    def category_ids(self) -> List[int]:
        return sorted(self._by_category)

    def scenario_ids(self) -> List[int]:
        return sorted(self._by_scenario)

    def titles(self) -> List[str]:
        return [e.title for e in self._entities]

    def scenario_labels(self) -> np.ndarray:
        """Ground-truth leaf-scenario label per entity (dense array)."""
        return np.array([e.scenario_id for e in self._entities], dtype=np.int64)

    def category_labels(self) -> np.ndarray:
        return np.array([e.category_id for e in self._entities], dtype=np.int64)


def _make_title(
    rng: np.random.Generator,
    vocab: DomainVocabulary,
    scenario: Scenario,
    category_id: int,
    config: ItemConfig,
) -> str:
    """Compose one entity title from the vocabulary strata."""
    words: List[str] = []
    s_words = vocab.scenario_words(scenario.scenario_id)
    k = min(config.title_scenario_words, len(s_words))
    words.extend(rng.choice(s_words, size=k, replace=False).tolist())
    nouns = vocab.nouns(category_id)
    words.append(nouns[int(rng.integers(len(nouns)))])
    attrs = vocab.attributes(category_id)
    k = min(config.title_attribute_words, len(attrs))
    words.extend(rng.choice(attrs, size=k, replace=False).tolist())
    if config.title_generic_words:
        gen = vocab.generic_words()
        k = min(config.title_generic_words, len(gen))
        words.extend(rng.choice(gen, size=k, replace=False).tolist())
    rng.shuffle(words)
    return " ".join(words)


def generate_catalog(
    scenarios: Sequence[Scenario],
    vocab: DomainVocabulary,
    config: ItemConfig = ItemConfig(),
) -> ItemCatalog:
    """Generate an :class:`ItemCatalog` conditioned on ground-truth scenarios.

    Only *leaf* scenarios (those with a parent) spawn entities; root
    scenarios exist to give the ground-truth hierarchy.
    """
    rng = ensure_rng(config.seed)
    leaf = [s for s in scenarios if s.parent_id is not None]
    if not leaf:
        raise ValueError("no leaf scenarios to generate items from")
    all_leaf_categories = sorted({c for s in leaf for c in s.category_ids})

    weights = zipf_weights(len(leaf), config.scenario_zipf_exponent)
    scenario_draws = rng.choice(len(leaf), size=config.n_entities, p=weights)

    entities: List[ItemEntity] = []
    items: List[Item] = []
    next_item_id = 0
    for entity_id, s_idx in enumerate(scenario_draws):
        scenario = leaf[int(s_idx)]
        if rng.random() < config.off_scenario_noise:
            # Label noise: the entity lands in a random category that may
            # not belong to its scenario at all.
            category_id = int(
                all_leaf_categories[int(rng.integers(len(all_leaf_categories)))]
            )
        else:
            category_id = int(
                scenario.category_ids[int(rng.integers(len(scenario.category_ids)))]
            )
        title = _make_title(rng, vocab, scenario, category_id, config)
        price = float(
            np.round(config.price_base * float(rng.lognormal(0.0, 0.5)), 2)
        )
        n_items = 1 + int(rng.poisson(max(0.0, config.items_per_entity_mean - 1.0)))
        entities.append(
            ItemEntity(entity_id, title, category_id, scenario.scenario_id, price, n_items)
        )
        for _ in range(n_items):
            items.append(
                Item(next_item_id, entity_id, title, category_id, price)
            )
            next_item_id += 1
    return ItemCatalog(entities, items)
