"""Query-log generator (substitute for the Taobao seven-day query log).

Paper Sec. 3: SHOAL is built from "a sliding window containing search
queries in the last seven days". We generate a timestamped query log:

* a fixed set of **query strings** is derived from the vocabulary —
  category queries ("<noun>", "<attr> <noun>") and scenario queries
  ("<scenario-word> <noun>", "<scenario-word> <scenario-word>"),
* simulated users issue queries over a configurable number of days,
  choosing scenario or category intent per their profile,
* each issued query produces clicks on matching item entities; the
  (query, entity) click pairs are the edges of the query–item
  bipartite graph (paper Fig. 2),
* a small `noise_click_rate` adds clicks on unrelated entities, which
  is what makes the raw Jaccard similarity imperfect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro._util import check_positive, check_probability, ensure_rng
from repro.data.items import ItemCatalog
from repro.data.scenarios import Scenario
from repro.data.users import UserPopulation
from repro.data.vocab import DomainVocabulary
from repro.data.zipf import zipf_weights

__all__ = ["Query", "QueryLog", "QueryLogConfig", "generate_query_log"]


@dataclass(frozen=True)
class Query:
    """A distinct query string with its latent intent.

    ``intent_kind`` is ``"scenario"`` or ``"category"``;
    ``intent_id`` is the scenario id or category id respectively.
    The intent fields are ground truth used only by evaluation.
    """

    query_id: int
    text: str
    intent_kind: str
    intent_id: int

    def tokens(self) -> List[str]:
        return self.text.split()


@dataclass(frozen=True)
class QueryEvent:
    """One search event in the log: a user issued a query on a day and
    clicked a set of item entities."""

    event_id: int
    day: int
    user_id: int
    query_id: int
    clicked_entity_ids: tuple


@dataclass(frozen=True)
class QueryLogConfig:
    """Query-log shape.

    ``n_days`` spans the sliding window (paper: 7). ``events_per_day``
    search events are generated per day. ``clicks_per_event_mean``
    entities are clicked per search. ``noise_click_rate`` is the
    probability each click lands on a random entity instead of an
    intent-matching one. ``query_zipf_exponent`` skews which query of
    the eligible set a user issues.
    """

    n_days: int = 7
    events_per_day: int = 2000
    clicks_per_event_mean: float = 3.0
    noise_click_rate: float = 0.05
    query_zipf_exponent: float = 0.8
    queries_per_scenario: int = 8
    queries_per_category: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_days", self.n_days)
        check_positive("events_per_day", self.events_per_day)
        check_positive("clicks_per_event_mean", self.clicks_per_event_mean)
        check_probability("noise_click_rate", self.noise_click_rate)
        check_positive("query_zipf_exponent", self.query_zipf_exponent, allow_zero=True)
        check_positive("queries_per_scenario", self.queries_per_scenario)
        check_positive("queries_per_category", self.queries_per_category)


class QueryLog:
    """The generated log: distinct queries plus timestamped events.

    Provides the aggregation views the pipeline needs — in particular
    ``query_entity_pairs`` (edges of the bipartite graph, restricted to
    a day window) and per-query/per-entity click counts.
    """

    def __init__(self, queries: List[Query], events: List[QueryEvent]):
        self._queries = list(queries)
        self._events = list(events)
        self._by_id = {q.query_id: q for q in self._queries}

    # -- accessors --------------------------------------------------------

    @property
    def queries(self) -> List[Query]:
        return list(self._queries)

    @property
    def events(self) -> List[QueryEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def n_queries(self) -> int:
        return len(self._queries)

    def query(self, query_id: int) -> Query:
        return self._by_id[query_id]

    def query_text(self, query_id: int) -> str:
        return self._by_id[query_id].text

    def days(self) -> List[int]:
        return sorted({e.day for e in self._events})

    # -- aggregation views -------------------------------------------------

    def window(self, first_day: int, last_day: int) -> "QueryLog":
        """Sliding-window view: events with ``first_day <= day <= last_day``."""
        if first_day > last_day:
            raise ValueError("first_day must be <= last_day")
        kept = [e for e in self._events if first_day <= e.day <= last_day]
        return QueryLog(self._queries, kept)

    def query_entity_pairs(self) -> List[Tuple[int, int, int]]:
        """Aggregated (query_id, entity_id, click_count) triples."""
        counts: Dict[Tuple[int, int], int] = {}
        for e in self._events:
            for ent in e.clicked_entity_ids:
                key = (e.query_id, ent)
                counts[key] = counts.get(key, 0) + 1
        return [(q, ent, c) for (q, ent), c in sorted(counts.items())]

    def query_frequencies(self) -> Dict[int, int]:
        """Total number of events per query id."""
        freq: Dict[int, int] = {}
        for e in self._events:
            freq[e.query_id] = freq.get(e.query_id, 0) + 1
        return freq

    def entity_click_counts(self) -> Dict[int, int]:
        """Total clicks received per entity id."""
        counts: Dict[int, int] = {}
        for e in self._events:
            for ent in e.clicked_entity_ids:
                counts[ent] = counts.get(ent, 0) + 1
        return counts


def _build_query_set(
    scenarios: Sequence[Scenario],
    vocab: DomainVocabulary,
    config: QueryLogConfig,
    rng: np.random.Generator,
) -> List[Query]:
    """Compose the distinct query strings with their latent intents."""
    queries: List[Query] = []
    seen_text = set()

    def add(text: str, kind: str, intent_id: int) -> None:
        if text in seen_text:
            return
        seen_text.add(text)
        queries.append(Query(len(queries), text, kind, intent_id))

    leaf = [s for s in scenarios if s.parent_id is not None]
    for s in leaf:
        s_words = vocab.scenario_words(s.scenario_id)
        for _ in range(config.queries_per_scenario):
            w = s_words[int(rng.integers(len(s_words)))]
            style = int(rng.integers(3))
            if style == 0:
                # "<scenario-word> <category noun>"  e.g. "beach dress"
                cid = int(s.category_ids[int(rng.integers(len(s.category_ids)))])
                nouns = vocab.nouns(cid)
                text = f"{w} {nouns[int(rng.integers(len(nouns)))]}"
            elif style == 1 and len(s_words) > 1:
                # "<scenario-word> <scenario-word>"  e.g. "beach trip"
                w2 = w
                while w2 == w:
                    w2 = s_words[int(rng.integers(len(s_words)))]
                text = f"{w} {w2}"
            else:
                text = w
            add(text, "scenario", s.scenario_id)
    all_cats = sorted({c for s in leaf for c in s.category_ids})
    for cid in all_cats:
        nouns = vocab.nouns(cid)
        attrs = vocab.attributes(cid)
        for _ in range(config.queries_per_category):
            noun = nouns[int(rng.integers(len(nouns)))]
            if rng.random() < 0.5:
                text = noun
            else:
                text = f"{attrs[int(rng.integers(len(attrs)))]} {noun}"
            add(text, "category", cid)
    return queries


def generate_query_log(
    catalog: ItemCatalog,
    scenarios: Sequence[Scenario],
    vocab: DomainVocabulary,
    users: UserPopulation,
    config: QueryLogConfig = QueryLogConfig(),
) -> QueryLog:
    """Simulate the sliding-window query log over the catalog.

    For each event: pick a user, pick intent kind by the user's rate,
    pick a query matching that intent (Zipf-skewed), then click
    entities drawn from the intent's matching inventory (scenario
    members for scenario intent, category members for category intent)
    with occasional noise clicks.
    """
    rng = ensure_rng(config.seed)
    queries = _build_query_set(scenarios, vocab, config, rng)

    by_scenario: Dict[int, List[Query]] = {}
    by_category: Dict[int, List[Query]] = {}
    for q in queries:
        if q.intent_kind == "scenario":
            by_scenario.setdefault(q.intent_id, []).append(q)
        else:
            by_category.setdefault(q.intent_id, []).append(q)

    n_entities = len(catalog)
    events: List[QueryEvent] = []
    event_id = 0
    for day in range(config.n_days):
        for _ in range(config.events_per_day):
            user = users[int(rng.integers(len(users)))]
            use_scenario = rng.random() < user.scenario_intent_rate
            if use_scenario:
                sid = int(
                    user.scenario_ids[int(rng.integers(len(user.scenario_ids)))]
                )
                pool = by_scenario.get(sid)
                candidates = catalog.entities_in_scenario(sid)
            else:
                sid = int(
                    user.scenario_ids[int(rng.integers(len(user.scenario_ids)))]
                )
                members = catalog.entities_in_scenario(sid)
                if members:
                    probe = catalog.entity(
                        members[int(rng.integers(len(members)))]
                    )
                    cid = probe.category_id
                else:  # degenerate scenario with no inventory
                    cid = catalog.category_ids()[0]
                pool = by_category.get(cid)
                candidates = catalog.entities_in_category(cid)
            if not pool or not candidates:
                continue
            zw = zipf_weights(len(pool), config.query_zipf_exponent)
            q = pool[int(rng.choice(len(pool), p=zw))]
            n_clicks = 1 + int(rng.poisson(max(0.0, config.clicks_per_event_mean - 1.0)))
            clicked: List[int] = []
            for _ in range(n_clicks):
                if rng.random() < config.noise_click_rate:
                    clicked.append(int(rng.integers(n_entities)))
                else:
                    clicked.append(
                        int(candidates[int(rng.integers(len(candidates)))])
                    )
            events.append(
                QueryEvent(event_id, day, user.user_id, q.query_id, tuple(sorted(set(clicked))))
            )
            event_id += 1
    return QueryLog(queries, events)
