"""The one shared, locked LRU cache of the serving stack.

Before the gateway API existed, :mod:`repro.core.serving` and
:mod:`repro.serving.router` each carried their own result-cache plumbing
around the same private class; this module is the single home for both.
Every cache tier — the engine's query-result cache, the cluster
router's front cache, and the gateway's :class:`CacheMiddleware` — is
an instance of :class:`LRUCache`, so locking semantics, eviction order,
and the :class:`CacheStats` counters are defined exactly once.

``max_size == 0`` disables caching entirely (every get misses, every
put is a no-op) — useful for cold-path benchmarking.

``ttl_seconds`` bounds entry *age*: an entry older than the TTL is
treated as a miss, dropped on access, and counted in
``CacheStats.expirations``. TTL is what lets a result cache drain
naturally after a generation hot-swap instead of requiring a full
invalidation — stale answers age out on their own. ``clock`` is
injectable (monotonic seconds) so tests can drive time
deterministically.

All operations take the internal lock: the serving tier is hammered
from thread pools, and an unlocked ``get`` races ``clear``/eviction on
the underlying ``OrderedDict`` (``move_to_end`` of a key another thread
just dropped raises ``KeyError``) while unlocked counter increments
silently lose updates.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple

__all__ = ["CacheStats", "LRUCache", "MISS"]

#: Sentinel returned by :meth:`LRUCache.get` on a miss, so ``None`` can
#: be cached like any other value.
MISS = object()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a query-result cache."""

    hits: int
    misses: int
    size: int
    max_size: int
    invalidations: int
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def summary(self) -> str:
        expired = (
            f", {self.expirations} expired" if self.expirations else ""
        )
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"(rate={self.hit_rate:.2%}), {self.size}/{self.max_size} "
            f"entries, {self.invalidations} invalidations{expired}"
        )

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "max_size": self.max_size,
            "invalidations": self.invalidations,
            "expirations": self.expirations,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded, thread-safe LRU map with hit/miss counters.

    ``ttl_seconds=None`` (the default) keeps entries until eviction or
    :meth:`clear`; a positive TTL expires entries by age on access.
    """

    _MISS = MISS  # class-level alias kept for legacy call sites

    def __init__(
        self,
        max_size: int,
        *,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_size < 0:
            raise ValueError(f"cache size must be >= 0, got {max_size}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be > 0 or None, got {ttl_seconds}"
            )
        self.max_size = max_size
        self.ttl_seconds = ttl_seconds
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.expirations = 0
        self._clock = clock
        self._lock = threading.Lock()
        # Values are (value, stored_at); stored_at is only consulted
        # when a TTL is configured.
        self._data: "OrderedDict[Hashable, Tuple[Any, float]]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> Any:
        with self._lock:
            entry = self._data.get(key, MISS)
            if entry is MISS:
                self.misses += 1
                return MISS
            value, stored_at = entry
            if (
                self.ttl_seconds is not None
                and self._clock() - stored_at > self.ttl_seconds
            ):
                del self._data[key]
                self.expirations += 1
                self.misses += 1
                return MISS
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self.max_size == 0:
            return
        with self._lock:
            self._data[key] = (value, self._clock())
            self._data.move_to_end(key)
            while len(self._data) > self.max_size:
                self._data.popitem(last=False)

    def purge_expired(self) -> int:
        """Proactively drop every expired entry; returns how many.

        ``get`` already expires lazily; this is for operational sweeps
        (metrics endpoints reporting true live size) and tests.
        """
        if self.ttl_seconds is None:
            return 0
        with self._lock:
            now = self._clock()
            dead = [
                k
                for k, (_, stored_at) in self._data.items()
                if now - stored_at > self.ttl_seconds
            ]
            for k in dead:
                del self._data[k]
            self.expirations += len(dead)
            return len(dead)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.invalidations += 1

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                size=len(self._data),
                max_size=self.max_size,
                invalidations=self.invalidations,
                expirations=self.expirations,
            )
