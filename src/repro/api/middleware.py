"""Composable middleware around any :class:`~repro.api.backends.ShoalBackend`.

A :class:`Gateway` wraps a backend with an ordered middleware stack and
is itself a backend, so stacks compose and every frontend (CLI, HTTP
edge, replayer, benches) gets the same cross-cutting behaviour from one
place:

* :class:`MetricsMiddleware` — per-endpoint p50/p95/p99 latency (the
  same :class:`~repro.serving.stats.RequestStats` recorders the cluster
  router uses) plus error counts by stable code;
* :class:`RateLimitMiddleware` — token-bucket admission control,
  rejecting excess traffic with ``rate_limited`` before it costs any
  backend work;
* :class:`DeadlineMiddleware` — per-request deadlines carried by an
  explicit :class:`~repro.api.context.RequestContext`: the request's own
  ``timeout_ms`` (or the configured default) arms the ambient context —
  creating one when no edge did — so the layers below can *cancel* work
  at their check points, and any overrun that survives to completion is
  still surfaced as ``deadline_exceeded``;
* :class:`CacheMiddleware` — a gateway-level result LRU (the shared
  :class:`~repro.api.cache.LRUCache`) keyed on each request's
  ``cache_key()``.

**Ordering.** :func:`default_middlewares` composes
``metrics → rate-limit → deadline → cache`` outermost-first: metrics
must observe rejections, the rate limiter must reject before any work
is done, the deadline must cover cache misses *and* hits, and the cache
sits innermost so a hit costs one locked dict probe.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.api.backends import ShoalBackend
from repro.api.cache import MISS, CacheStats, LRUCache
from repro.api.context import RequestContext, current_context
from repro.api.contract import (
    ERROR_CODES,
    ApiError,
    BatchRequest,
    BatchResponse,
    RecommendRequest,
    RecommendResponse,
    SearchRequest,
    SearchResponse,
)
from repro.obs.histogram import Histogram, LatencySummary
from repro.obs.tracer import default_tracer, traced

__all__ = [
    "Middleware",
    "CacheMiddleware",
    "RateLimitMiddleware",
    "DeadlineMiddleware",
    "MetricsMiddleware",
    "Gateway",
    "default_middlewares",
]

Request = Union[SearchRequest, RecommendRequest, BatchRequest]
Response = Union[SearchResponse, RecommendResponse, BatchResponse]
Handler = Callable[[Request], Response]


class Middleware:
    """One layer of the stack: observe/short-circuit, then ``call_next``."""

    #: Short name used for the middleware's trace span (``mw.<name>``).
    name = "middleware"

    def handle(self, request: Request, call_next: Handler) -> Response:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """JSON-able counters merged into :meth:`Gateway.stats`."""
        return {}


class CacheMiddleware(Middleware):
    """Gateway-level result cache over the shared locked LRU module.

    ``ttl_seconds`` ages entries out (see :class:`~repro.api.cache.LRUCache`)
    so the gateway cache drains naturally after a generation hot-swap
    instead of requiring a full invalidation; ``clock`` is injectable
    for deterministic tests.
    """

    name = "cache"

    def __init__(
        self,
        max_size: int = 4096,
        *,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._cache = LRUCache(max_size, ttl_seconds=ttl_seconds, clock=clock)
        # Epoch-stamped keys make invalidation race-proof: a request
        # that computed its response against the pre-invalidation
        # backend finishes its put under the OLD epoch, where no new
        # lookup can ever find it — the same stale-put defence the
        # serving engine's version-stamped state keys provide.
        self._epoch = 0

    def handle(self, request: Request, call_next: Handler) -> Response:
        key = (self._epoch, request.cache_key())
        cached = self._cache.get(key)
        if cached is not MISS:
            return cached
        response = call_next(request)
        self._cache.put(key, response)
        return response

    def handle_observed(
        self, request: Request, call_next: Handler
    ) -> Response:
        """The traced-chain variant: additionally tags the ambient
        request context with the hit/miss outcome so the access log
        and the span tree can show where the answer came from."""
        key = (self._epoch, request.cache_key())
        cached = self._cache.get(key)
        ctx = current_context()
        if cached is not MISS:
            if ctx is not None:
                ctx.tags["cache"] = "hit"
            return cached
        if ctx is not None:
            ctx.tags["cache"] = "miss"
        response = call_next(request)
        self._cache.put(key, response)
        return response

    def invalidate(self) -> None:
        self._epoch += 1
        self._cache.clear()

    def cache_stats(self) -> CacheStats:
        return self._cache.stats()

    def stats(self) -> Dict[str, Any]:
        return {"gateway_cache": self._cache.stats().to_dict()}


class RateLimitMiddleware(Middleware):
    """Token-bucket admission control.

    ``rate`` tokens/second refill a bucket of ``burst`` capacity; each
    request spends one token or is rejected with ``rate_limited``.
    ``clock`` is injectable (monotonic seconds) so tests can drive time.
    """

    name = "rate_limit"

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 req/s, got {rate}")
        self._rate = float(rate)
        self._capacity = float(burst if burst is not None else max(rate, 1))
        if self._capacity < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._clock = clock
        self._tokens = self._capacity
        self._refilled_at = clock()
        self._rejected = 0
        self._admitted = 0
        self._lock = threading.Lock()

    def handle(self, request: Request, call_next: Handler) -> Response:
        now = self._clock()
        with self._lock:
            elapsed = max(now - self._refilled_at, 0.0)
            self._tokens = min(
                self._capacity, self._tokens + elapsed * self._rate
            )
            self._refilled_at = now
            if self._tokens < 1.0:
                self._rejected += 1
                raise ApiError(
                    "rate_limited",
                    f"rate limit of {self._rate:g} req/s exceeded",
                )
            self._tokens -= 1.0
            self._admitted += 1
        return call_next(request)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "rate_limit": {
                    "rate_per_s": self._rate,
                    "burst": self._capacity,
                    "admitted": self._admitted,
                    "rejected": self._rejected,
                }
            }


class DeadlineMiddleware(Middleware):
    """Per-request deadline enforcement through the request context.

    The effective deadline is the request's ``timeout_ms`` when set,
    else ``default_timeout_ms`` (``None`` leaves any inherited deadline
    alone). When an edge already installed a
    :class:`~repro.api.context.RequestContext`, the limit *arms* it
    (tighten-only) so the cancellation-aware layers below — backend
    entry, router shard loops — can abandon work mid-flight; when no
    context is ambient (in-process callers), the middleware owns one
    for the duration of the call. An overrun that survives to
    completion is still surfaced as ``deadline_exceeded`` and the
    context cancelled, so nothing downstream keeps polishing an answer
    nobody will read.
    """

    name = "deadline"

    def __init__(
        self,
        default_timeout_ms: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if default_timeout_ms is not None and default_timeout_ms <= 0:
            raise ValueError(
                f"default_timeout_ms must be > 0, got {default_timeout_ms}"
            )
        self._default_ms = default_timeout_ms
        self._clock = clock
        self._expired = 0
        self._lock = threading.Lock()

    def handle(self, request: Request, call_next: Handler) -> Response:
        limit_ms = (
            request.timeout_ms
            if request.timeout_ms is not None
            else self._default_ms
        )
        ctx = current_context()
        owned = False
        if ctx is None:
            if limit_ms is None:
                return call_next(request)
            ctx = RequestContext.for_request(
                timeout_ms=limit_ms, clock=self._clock
            )
            owned = True
        elif limit_ms is not None:
            ctx.arm(limit_ms)

        t0 = self._clock()
        try:
            if owned:
                with ctx.use():
                    response = call_next(request)
            else:
                response = call_next(request)
        except ApiError as exc:
            # Count expiries detected below us (a cancellation check
            # point fired mid-flight) exactly like our own.
            if exc.code == "deadline_exceeded":
                with self._lock:
                    self._expired += 1
            raise
        if ctx.expired:
            elapsed_ms = (self._clock() - t0) * 1000.0
            with self._lock:
                self._expired += 1
            ctx.cancel("deadline expired")
            shown = (
                f"{limit_ms:g}ms" if limit_ms is not None
                else "inherited from the edge"
            )
            raise ApiError(
                "deadline_exceeded",
                f"request took {elapsed_ms:.1f}ms; deadline was {shown}",
            )
        return response

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "deadline": {
                    "default_timeout_ms": self._default_ms,
                    "expired": self._expired,
                }
            }


_ENDPOINT_OF = {
    SearchRequest: "search",
    RecommendRequest: "recommend",
    BatchRequest: "batch",
}


class MetricsMiddleware(Middleware):
    """Unified request metrics: per-endpoint latency + errors by code.

    Latency lands in the shared fixed-bucket
    :class:`~repro.obs.histogram.Histogram` (the same recorder the
    router and the async edge use); :meth:`histograms` hands the live
    recorders to the OpenMetrics exposition layer so ``?format=prom``
    can render real cumulative buckets, not pre-digested percentiles.
    """

    name = "metrics"

    def __init__(self):
        self._stats: Dict[str, Histogram] = {
            name: Histogram() for name in ("search", "recommend", "batch")
        }
        self._errors: Dict[str, int] = {}
        self._lock = threading.Lock()

    def handle(self, request: Request, call_next: Handler) -> Response:
        endpoint = _ENDPOINT_OF.get(type(request), "search")
        t0 = time.perf_counter()
        try:
            response = call_next(request)
        except ApiError as exc:
            with self._lock:
                self._errors[exc.code] = self._errors.get(exc.code, 0) + 1
            self._stats[endpoint].record(time.perf_counter() - t0)
            raise
        self._stats[endpoint].record(time.perf_counter() - t0)
        return response

    def latency(self, endpoint: str) -> LatencySummary:
        return self._stats[endpoint].summary()

    def histograms(self) -> Dict[str, Histogram]:
        """Live per-endpoint recorders, keyed for exposition."""
        return {
            f"gateway_{name}_latency_ms": recorder
            for name, recorder in self._stats.items()
            if recorder.count > 0
        }

    def error_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._errors)

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"errors": self.error_counts()}
        latencies = {}
        for name, recorder in self._stats.items():
            summary = recorder.summary()
            if summary.count == 0:
                continue
            latencies[name] = {
                "count": summary.count,
                "qps": summary.qps,
                "mean_ms": summary.mean_ms,
                "p50_ms": summary.p50_ms,
                "p95_ms": summary.p95_ms,
                "p99_ms": summary.p99_ms,
                "max_ms": summary.max_ms,
            }
        out["latency"] = latencies
        return out


def default_middlewares(
    *,
    cache_size: int = 4096,
    cache_ttl_s: Optional[float] = None,
    rate_limit: Optional[float] = None,
    burst: Optional[int] = None,
    deadline_ms: Optional[float] = None,
) -> List[Middleware]:
    """The canonical stack, outermost first (see module docstring)."""
    stack: List[Middleware] = [MetricsMiddleware()]
    if rate_limit is not None:
        stack.append(RateLimitMiddleware(rate_limit, burst))
    if deadline_ms is not None:
        stack.append(DeadlineMiddleware(deadline_ms))
    if cache_size > 0:
        stack.append(CacheMiddleware(cache_size, ttl_seconds=cache_ttl_s))
    return stack


class Gateway(ShoalBackend):
    """A backend wrapped in a middleware stack — and itself a backend.

    ``middlewares`` is ordered outermost-first; ``None`` installs
    :func:`default_middlewares` with its standard cache + metrics.
    """

    kind = "gateway"

    def __init__(
        self,
        backend: ShoalBackend,
        middlewares: Optional[Sequence[Middleware]] = None,
        *,
        access_log=None,
    ):
        self._backend = backend
        self._middlewares: List[Middleware] = list(
            default_middlewares() if middlewares is None else middlewares
        )
        #: File-like sink for one structured JSON line per request
        #: (``serve-http --access-log``); None disables logging.
        self._access_log = access_log
        self._access_log_lock = threading.Lock()

        def terminal(request: Request) -> Response:
            if isinstance(request, SearchRequest):
                return self._backend.search(request)
            if isinstance(request, RecommendRequest):
                return self._backend.recommend(request)
            if isinstance(request, BatchRequest):
                return self._backend.batch(request)
            raise ApiError(
                "bad_request", f"not an API request: {type(request).__name__}"
            )

        # Two pre-composed chains: the bare one is the tracing-off hot
        # path (no span handles, no ambient lookups per stage), the
        # traced one wraps every stage in an ``mw.<name>`` span. Which
        # one runs is decided once per request in :meth:`_observed`.
        chain: Handler = terminal
        traced_chain: Handler = terminal
        for mw in reversed(self._middlewares):
            chain = _bind_plain(mw, chain)
            traced_chain = _bind(mw, traced_chain)
        self._chain = chain
        self._traced_chain = traced_chain

    @property
    def backend(self) -> ShoalBackend:
        return self._backend

    @property
    def middlewares(self) -> List[Middleware]:
        return list(self._middlewares)

    def handle(
        self,
        request: Request,
        context: Optional[RequestContext] = None,
    ) -> Response:
        """Dispatch any typed request through the full stack.

        ``context`` installs an explicit :class:`RequestContext` as the
        ambient one for the call (edges pass the context they minted);
        omitted, whatever context is already ambient — or none — flows
        through unchanged.
        """
        request.validate()
        if context is not None:
            with context.use():
                return self._observed(request, context)
        ctx = current_context()
        if (
            (ctx is None or ctx.tracer is None)
            and self._access_log is None
            and default_tracer() is None
        ):
            # Tracing and logging both off: straight down the bare
            # pre-composed chain, nothing per-request to observe.
            return self._chain(request)
        return self._observed(request, ctx)

    def _observed(
        self, request: Request, ctx: Optional[RequestContext]
    ) -> Response:
        """Run the middleware chain under a ``gateway`` span and emit
        the per-request access-log line — the one place every edge and
        every hedge attempt funnels through.

        The tracer is resolved exactly once here; with tracing and
        logging both off the request takes the bare pre-composed chain
        with zero per-request instrumentation cost.
        """
        tracer = ctx.tracer if ctx is not None else None
        if tracer is None:
            tracer = default_tracer()
        if tracer is None and self._access_log is None:
            return self._chain(request)
        endpoint = _ENDPOINT_OF.get(type(request), "search")
        if self._access_log is None:
            with tracer.span(
                "gateway", context=ctx, tags={"endpoint": endpoint}
            ):
                return self._traced_chain(request)
        t0 = time.perf_counter()
        status = 200
        error: Optional[str] = None
        try:
            if tracer is None:
                return self._chain(request)
            with tracer.span(
                "gateway", context=ctx, tags={"endpoint": endpoint}
            ):
                return self._traced_chain(request)
        except ApiError as exc:
            status = ERROR_CODES.get(exc.code, 500)
            error = exc.code
            raise
        finally:
            self._log_request(
                ctx, endpoint, status, (time.perf_counter() - t0) * 1000.0,
                error,
            )

    def _log_request(
        self,
        ctx: Optional[RequestContext],
        endpoint: str,
        status: int,
        duration_ms: float,
        error: Optional[str],
    ) -> None:
        tags = ctx.tags if ctx is not None else {}
        record = {
            "ts": round(time.time(), 6),
            "request_id": ctx.request_id if ctx is not None else None,
            "endpoint": endpoint,
            "status": status,
            "duration_ms": round(duration_ms, 3),
            "attempt": tags.get("attempt", "primary"),
            "cache": tags.get("cache"),
            "edge": tags.get("edge"),
        }
        if error is not None:
            record["error"] = error
        line = json.dumps(record, separators=(",", ":")) + "\n"
        try:
            with self._access_log_lock:
                self._access_log.write(line)
                flush = getattr(self._access_log, "flush", None)
                if flush is not None:
                    flush()
        except (OSError, ValueError):  # pragma: no cover - sink went away
            pass

    def search(self, request: SearchRequest) -> SearchResponse:
        return self.handle(request)

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        return self.handle(request)

    def batch(self, request: BatchRequest) -> BatchResponse:
        return self.handle(request)

    def health(self) -> Dict[str, Any]:
        inner = self._backend.health()
        inner["backend"] = f"gateway({inner.get('backend', '?')})"
        return inner

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"backend": self.kind}
        for mw in self._middlewares:
            out.update(mw.stats())
        out["inner"] = self._backend.stats()
        return out

    def invalidate_cache(self) -> None:
        """Drop every gateway-level cached result."""
        for mw in self._middlewares:
            if isinstance(mw, CacheMiddleware):
                mw.invalidate()

    def cache_stats(self) -> Optional[CacheStats]:
        """The gateway-level result-cache counters (None if no cache
        middleware is installed); the replayer probes this."""
        for mw in self._middlewares:
            if isinstance(mw, CacheMiddleware):
                return mw.cache_stats()
        return None

    def histograms(self) -> Dict[str, Histogram]:
        """Live latency recorders for OpenMetrics exposition."""
        out: Dict[str, Histogram] = {}
        for mw in self._middlewares:
            if isinstance(mw, MetricsMiddleware):
                out.update(mw.histograms())
        return out

    def close(self) -> None:
        self._backend.close()


def _bind(mw: Middleware, call_next: Handler) -> Handler:
    # Duck-typed stages (tests) may not declare a name.
    span_name = f"mw.{getattr(mw, 'name', type(mw).__name__.lower())}"
    # A middleware may carry an observed variant of its handler with
    # extra context tagging that the plain chain must not pay for.
    handler = getattr(mw, "handle_observed", mw.handle)

    def bound(request: Request) -> Response:
        with traced(span_name):
            return handler(request, call_next)

    return bound


def _bind_plain(mw: Middleware, call_next: Handler) -> Handler:
    def bound(request: Request) -> Response:
        return mw.handle(request, call_next)

    return bound
