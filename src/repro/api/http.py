"""The network edge: a stdlib JSON gateway server and its client.

:class:`ShoalHttpServer` exposes any
:class:`~repro.api.backends.ShoalBackend` (usually a
:class:`~repro.api.middleware.Gateway`) over HTTP using only
``http.server`` — no third-party web framework. The wire format is the
:mod:`repro.api.contract` JSON codec, so answers are byte-identical to
the in-process backend:

* ``POST /v1/search``     — :class:`SearchRequest` → :class:`SearchResponse`
* ``POST /v1/recommend``  — :class:`RecommendRequest` → :class:`RecommendResponse`
* ``POST /v1/batch``      — :class:`BatchRequest` → :class:`BatchResponse`
* ``POST /v1/ingest``     — write path: one event or ``{"events": [...]}``
  into the attached :class:`~repro.streaming.ingest.IngestPipe`
  (``404 not_found`` when ingest is not enabled; backpressure surfaces
  as ``429 ingest_overloaded`` / ``503 ingest_unavailable``)
* ``GET/POST /v1/analytics`` — :class:`AnalyticsRequest` →
  :class:`AnalyticsResponse` against the attached analytics tier
  (GET takes ``sql``/``report``/``limit``/``sample`` query params;
  ``503 analytics_unavailable`` when no analytics store is attached)
* ``GET  /v1/health``     — liveness + backend identity
* ``GET  /v1/stats``      — cache/latency/error counters
* ``GET  /v1/metrics``    — the versioned scrape point, a
  :class:`MetricsResponse`: backend stats plus ingest-pipe, updater,
  analytics-tier, and async-edge progress (the unversioned alias was
  removed after its one-release deprecation; scrape ``/v1/metrics``).
  ``?format=prom`` renders the same tree as OpenMetrics text instead
* ``GET  /v1/trace``      — one sampled span tree
  (:class:`~repro.api.contract.TraceResponse`); ``?request_id=`` for
  an exact lookup, bare for the most recent (``404 not_found`` when
  tracing is disabled or the trace was not kept)

Errors are :class:`ApiError` payloads with the contract's stable codes
and status mapping (400/404/429/504/500).

:class:`GatewayCore` is the transport-neutral half of the edge: route
names, payload decoding, ingest/analytics/metrics assembly — shared by
this threaded server and the asyncio edge in :mod:`repro.api.aio`, so
the two edges cannot drift apart in behaviour. Each edge mints a
:class:`~repro.api.context.RequestContext` per request and dispatches
under it, which is how deadlines and cancellation reach the layers
below.

:class:`ShoalClient` speaks the same typed contract either over HTTP
(pass a URL) or in-process (pass any backend). The in-process mode
still routes every request and response through the JSON codecs, so a
client cannot accidentally depend on behaviour the wire would not
carry.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Union

from repro.api.backends import ShoalBackend
from repro.api.context import RequestContext
from repro.api.contract import (
    AnalyticsRequest,
    AnalyticsResponse,
    ApiError,
    BatchRequest,
    BatchResponse,
    MetricsResponse,
    RecommendRequest,
    RecommendResponse,
    RESPONSE_TYPES,
    SearchRequest,
    SearchResponse,
    TraceResponse,
    request_from_dict,
)
from repro.obs.exposition import (
    CONTENT_TYPE as OPENMETRICS_CONTENT_TYPE,
    render_openmetrics,
)
from repro.obs.tracer import traced

__all__ = [
    "GatewayCore",
    "RawResponse",
    "ShoalHttpServer",
    "ShoalClient",
    "API_PREFIX",
]

API_PREFIX = "/v1"

#: Bound on accepted request bodies; a contract-sized payload is a few
#: KiB, so anything near this is abuse, not traffic.
MAX_BODY_BYTES = 1 << 20


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, ensure_ascii=False, allow_nan=False).encode(
        "utf-8"
    )


class RawResponse:
    """A non-JSON GET answer (e.g. OpenMetrics text) with its MIME type.

    ``GatewayCore.dispatch_get`` normally returns a JSON payload dict;
    when it returns one of these instead, the edge writes ``body``
    verbatim under ``content_type`` rather than JSON-encoding.
    """

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes, content_type: str) -> None:
        self.body = body
        self.content_type = content_type


class GatewayCore:
    """The transport-neutral heart of the HTTP edge.

    Everything both edges must agree on lives here — endpoint routing,
    typed dispatch, ingest batch semantics, analytics query parsing,
    metrics assembly — while each edge keeps only its I/O: socket
    handling, keep-alive hygiene, and (for the async edge) hedging and
    coalescing. Answers are therefore byte-identical across edges by
    construction, not by convention.

    ``edge_stats`` is an optional zero-argument callable returning the
    serving edge's own counters (hedges, cancellations, coalescer
    batches); when set, they appear as the ``edge`` section of
    ``GET /v1/metrics``. ``replication_stats`` is the same shape for
    the replication role — a shipper's publish counters on a primary,
    a follower's lag (segments behind, seqs behind, epoch) on a
    replica — surfacing as the ``replication`` section.
    """

    def __init__(
        self,
        backend: ShoalBackend,
        *,
        ingest_pipe=None,
        updater=None,
        analytics_engine=None,
        analytics_tailer=None,
        edge_stats=None,
        replication_stats=None,
        tracer=None,
        edge_histograms=None,
    ):
        self.backend = backend
        self.ingest_pipe = ingest_pipe
        self.updater = updater
        self.analytics_engine = analytics_engine
        self.analytics_tailer = analytics_tailer
        self.edge_stats = edge_stats
        self.replication_stats = replication_stats
        #: Optional :class:`repro.obs.tracer.Tracer`; enables
        #: ``GET /v1/trace`` and the ``tracer`` metrics section.
        self.tracer = tracer
        #: Optional zero-arg callable -> {name: Histogram} with the
        #: edge's own live latency recorders, rendered as real
        #: histogram families by ``?format=prom``.
        self.edge_histograms = edge_histograms

    # -- typed read dispatch -------------------------------------------------

    def dispatch_request(
        self, request, *, context: Optional[RequestContext] = None
    ):
        """Dispatch one decoded contract request to the backend.

        ``context`` (when the edge minted one) becomes the ambient
        :class:`RequestContext` for the whole call — middleware arms
        it, backend and router poll it.
        """
        if context is not None:
            with context.use():
                return self._dispatch(request)
        return self._dispatch(request)

    def _dispatch(self, request):
        if isinstance(request, AnalyticsRequest):
            return self.handle_analytics(request)
        if isinstance(request, SearchRequest):
            return self.backend.search(request)
        if isinstance(request, RecommendRequest):
            return self.backend.recommend(request)
        if isinstance(request, BatchRequest):
            return self.backend.batch(request)
        raise ApiError(
            "bad_request", f"not an API request: {type(request).__name__}"
        )

    def decode_post(self, endpoint: str, payload: Dict[str, Any]):
        """Decode + validate a POST payload for ``endpoint`` (reads
        only — ``ingest`` routes through the ingest entry points)."""
        return request_from_dict(endpoint, payload)

    # -- write path ----------------------------------------------------------

    def ingest_events_from_payload(self, payload: Dict[str, Any]) -> list:
        """Shape-check an ingest POST body and return its event dicts.

        The whole batch is validated *before* any event is admitted, so
        a malformed payload can never leave a prefix of the batch
        durably applied behind a 400 — retries of a rejected-for-shape
        batch are safe. Raises ``not_found`` when ingest is disabled.
        """
        if self.ingest_pipe is None:
            raise ApiError(
                "not_found", "ingest is not enabled on this server"
            )
        from repro.streaming.ingest import validate_event_payload

        events = payload.get("events")
        if events is None:
            events = [payload]  # single bare event object
        if isinstance(events, (str, bytes)) or not isinstance(events, list):
            raise ApiError("bad_request", "'events' must be an array")
        if not events:
            raise ApiError("invalid_argument", "no events to ingest")
        for event in events:  # shape-check everything before admitting
            validate_event_payload(event)
        return events

    def handle_ingest(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Admit one event or a small batch into the ingest pipe.

        Mid-batch backpressure can still split a batch (durability is
        per event by design); the ``ingest_overloaded`` error then
        reports how many events were already admitted so the client can
        resubmit only the tail.
        """
        events = self.ingest_events_from_payload(payload)
        last_seq = 0
        accepted = 0
        for event in events:
            try:
                admitted = self.ingest_pipe.submit(event)
            except ApiError as exc:
                raise partial_batch_error(exc, accepted, last_seq)
            accepted += 1
            last_seq = admitted.seq
        return {"accepted": accepted, "last_seq": last_seq}

    # -- analytics -----------------------------------------------------------

    def handle_analytics(self, request: AnalyticsRequest):
        """Serve one analytics query from the attached tier."""
        if self.analytics_engine is None:
            raise ApiError(
                "analytics_unavailable",
                "no analytics store is attached to this server "
                "(start it with --analytics-db)",
            )
        return self.analytics_engine.query(request)

    def analytics_request_from_query(
        self, raw_query: str
    ) -> AnalyticsRequest:
        """GET /v1/analytics: build the request from query parameters."""
        params = urllib.parse.parse_qs(raw_query, keep_blank_values=True)
        payload: Dict[str, Any] = {}
        for key in ("sql", "report"):
            if key in params:
                payload[key] = params[key][-1]
        if "limit" in params:
            raw = params["limit"][-1]
            try:
                payload["limit"] = int(raw)
            except ValueError:
                raise ApiError(
                    "bad_request", f"'limit' must be an integer, got {raw!r}"
                )
        if "sample" in params:
            raw = params["sample"][-1].lower()
            if raw in ("", "1", "true", "yes"):
                payload["sample"] = True
            elif raw in ("0", "false", "no"):
                payload["sample"] = False
            else:
                raise ApiError(
                    "bad_request", f"'sample' must be a boolean, got {raw!r}"
                )
        return AnalyticsRequest.from_dict(payload)

    # -- operational surface -------------------------------------------------

    def metrics(self) -> MetricsResponse:
        """The one scrape point: read-path stats + write-path progress."""
        analytics: Optional[Dict[str, Any]] = None
        if (
            self.analytics_tailer is not None
            or self.analytics_engine is not None
        ):
            analytics = {}
            if self.analytics_tailer is not None:
                analytics.update(self.analytics_tailer.stats())
            if self.analytics_engine is not None:
                analytics.update(self.analytics_engine.stats())
        return MetricsResponse(
            backend=self.backend.stats(),
            ingest=(
                None if self.ingest_pipe is None else self.ingest_pipe.stats()
            ),
            updater=(
                None if self.updater is None else self.updater.stats_dict()
            ),
            analytics=analytics,
            edge=None if self.edge_stats is None else self.edge_stats(),
            replication=(
                None
                if self.replication_stats is None
                else self.replication_stats()
            ),
            tracer=None if self.tracer is None else self.tracer.stats(),
        )

    def render_prom(self) -> bytes:
        """The whole metrics tree as OpenMetrics text.

        Scalar leaves of ``GET /v1/metrics`` flatten into gauge
        families; live latency recorders (the gateway's per-endpoint
        histograms and the edge's read recorder) render as real
        histogram families with bucket counts.
        """
        histograms = {}
        backend_histograms = getattr(self.backend, "histograms", None)
        if callable(backend_histograms):
            histograms.update(backend_histograms())
        if self.edge_histograms is not None:
            histograms.update(self.edge_histograms())
        return render_openmetrics(
            self.metrics().to_dict(), histograms=histograms
        ).encode("utf-8")

    def handle_trace(self, raw_query: str = "") -> Dict[str, Any]:
        """GET /v1/trace: one sampled span tree, as a TraceResponse.

        ``?request_id=`` looks up an exact trace (child attempt ids
        like ``req-7.1`` resolve to their root trace ``req-7``); with
        no parameter the most recently sampled trace is returned.
        """
        if self.tracer is None:
            raise ApiError(
                "not_found", "tracing is not enabled on this server"
            )
        params = urllib.parse.parse_qs(raw_query, keep_blank_values=True)
        request_id = params.get("request_id", [None])[-1]
        if request_id:
            trace = self.tracer.export(request_id)
            if trace is None:
                raise ApiError(
                    "not_found",
                    f"no sampled trace for request {request_id!r} "
                    "(it may not have been kept by the tail sampler, "
                    "or has been evicted)",
                )
        else:
            trace = self.tracer.latest()
            if trace is None:
                raise ApiError(
                    "not_found", "no traces have been sampled yet"
                )
        return TraceResponse(
            request_id=trace["request_id"],
            endpoint=trace["endpoint"],
            duration_ms=trace["duration_ms"],
            sampled=trace["sampled"],
            spans=tuple(trace["spans"]),
            ts=trace["ts"],
        ).to_dict()

    def dispatch_get(
        self, endpoint: str, raw_query: str = ""
    ) -> "Dict[str, Any] | RawResponse":
        """Serve one GET endpoint; returns the JSON payload dict (or a
        :class:`RawResponse` for non-JSON formats)."""
        if endpoint == "health":
            return self.backend.health()
        if endpoint == "stats":
            return self.backend.stats()
        if endpoint == "metrics":
            params = urllib.parse.parse_qs(
                raw_query, keep_blank_values=True
            )
            fmt = params.get("format", ["json"])[-1] or "json"
            if fmt == "prom":
                return RawResponse(
                    self.render_prom(), OPENMETRICS_CONTENT_TYPE
                )
            if fmt != "json":
                raise ApiError(
                    "bad_request",
                    f"unknown metrics format {fmt!r}; "
                    "expected 'json' or 'prom'",
                )
            return self.metrics().to_dict()
        if endpoint == "trace":
            return self.handle_trace(raw_query)
        if endpoint == "analytics":
            request = self.analytics_request_from_query(raw_query)
            return self.handle_analytics(request).to_dict()
        raise ApiError(
            "not_found", f"no such path: {API_PREFIX}/{endpoint}"
        )


def partial_batch_error(
    exc: ApiError, accepted: int, last_seq: int
) -> ApiError:
    """Re-raise a mid-batch ingest failure annotated with how much of
    the batch is already durable (both edges and the in-process client
    emit the identical message shape)."""
    if not accepted:
        return exc
    return ApiError(
        exc.code,
        f"{exc.message} (the first {accepted} event(s) of "
        f"this batch were admitted, last_seq={last_seq}; "
        "resubmit only the rest)",
    )


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routes /v1/* onto the server's :class:`GatewayCore`; all JSON."""

    server_version = "ShoalHttp/1.0"
    protocol_version = "HTTP/1.1"

    # Set by ShoalHttpServer on the handler subclass it builds.
    core: GatewayCore = None  # type: ignore[assignment]
    quiet: bool = True

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if not self.quiet:
            super().log_message(fmt, *args)

    # -- plumbing ------------------------------------------------------------

    def _send(self, status: int, payload) -> None:
        if isinstance(payload, RawResponse):
            body, content_type = payload.body, payload.content_type
        else:
            body = _json_bytes(payload)
            content_type = "application/json; charset=utf-8"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, err: ApiError) -> None:
        self._send(err.http_status, err.to_dict())

    def _read_body(self) -> Dict[str, Any]:
        """Parse the JSON request body.

        Every failure path either consumes the declared body or marks
        the connection for close first: this handler speaks HTTP/1.1
        keep-alive, and unread body bytes would otherwise be parsed as
        the *next* request line, desyncing the connection.
        """
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self.close_connection = True  # cannot know how much to drain
            raise ApiError("bad_request", "malformed Content-Length header")
        if length <= 0:
            raise ApiError("bad_request", "request body is required")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # refuse to drain abuse-sized bodies
            raise ApiError(
                "invalid_argument",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError("bad_request", f"body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ApiError("bad_request", "body must be a JSON object")
        return payload

    def _endpoint(self) -> str:
        path = self.path.split("?", 1)[0].rstrip("/")
        if not path.startswith(API_PREFIX + "/"):
            raise ApiError("not_found", f"no such path: {self.path}")
        return path[len(API_PREFIX) + 1:]

    # -- verbs ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802
        try:
            # Consume the body BEFORE routing: a 404 (or any error sent
            # with the body still unread) would leave those bytes to be
            # misparsed as the next request on this keep-alive
            # connection. _read_body marks the connection for close on
            # the paths where draining is impossible.
            try:
                payload = self._read_body()
            except ApiError as body_error:
                self._endpoint()  # prefer not_found for unknown paths
                raise body_error
            endpoint = self._endpoint()
            if endpoint == "ingest":
                self._send(200, self.core.handle_ingest(payload))
                return
            request = self.core.decode_post(endpoint, payload)
            # The edge mints the RequestContext: the deadline the
            # middleware arms and the token the layers below poll. A
            # synchronous edge cannot preempt its own worker thread, so
            # cancellation here only trims in-flight shard loops — the
            # async edge is the one that acts on it mid-request.
            ctx = RequestContext.for_request(
                timeout_ms=getattr(request, "timeout_ms", None),
                tags={"edge": "thread", "endpoint": endpoint},
                tracer=self.core.tracer,
            )
            with traced("edge.request", context=ctx):
                response = self.core.dispatch_request(request, context=ctx)
            self._send(200, response.to_dict())
        except ApiError as err:
            self._send_error(err)
        except BrokenPipeError:  # client went away mid-write
            pass
        except Exception as exc:  # never leak a traceback onto the wire
            self._send_error(ApiError("backend_error", str(exc)))

    def _drain_unexpected_body(self) -> None:
        """Consume a body a GET should not have (keep-alive hygiene)."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self.close_connection = True
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
        elif length > 0:
            self.rfile.read(length)

    def do_GET(self) -> None:  # noqa: N802
        self._drain_unexpected_body()
        try:
            endpoint = self._endpoint()
            raw_query = urllib.parse.urlsplit(self.path).query
            self._send(200, self.core.dispatch_get(endpoint, raw_query))
        except ApiError as err:
            self._send_error(err)
        except BrokenPipeError:
            pass
        except Exception as exc:
            self._send_error(ApiError("backend_error", str(exc)))


class ShoalHttpServer:
    """Serve a backend over HTTP from a thread-per-request stdlib server.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url``) — the pattern tests and examples use. :meth:`start` runs
    the accept loop on a daemon thread; :meth:`serve_forever` blocks
    (the CLI path). Both are shut down by :meth:`shutdown`, which also
    closes the wrapped backend.
    """

    def __init__(
        self,
        backend: ShoalBackend,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        quiet: bool = True,
        ingest_pipe=None,
        updater=None,
        analytics_engine=None,
        analytics_tailer=None,
        replication_stats=None,
        tracer=None,
    ):
        self._backend = backend
        self._ingest_pipe = ingest_pipe
        self._updater = updater
        self._analytics_engine = analytics_engine
        self._analytics_tailer = analytics_tailer
        self._core = GatewayCore(
            backend,
            ingest_pipe=ingest_pipe,
            updater=updater,
            analytics_engine=analytics_engine,
            analytics_tailer=analytics_tailer,
            replication_stats=replication_stats,
            tracer=tracer,
        )
        handler = type(
            "_BoundGatewayHandler",
            (_GatewayHandler,),
            {"core": self._core, "quiet": quiet},
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def backend(self) -> ShoalBackend:
        return self._backend

    @property
    def core(self) -> GatewayCore:
        """The transport-neutral dispatch core this edge serves."""
        return self._core

    @property
    def ingest_pipe(self):
        """The attached write path (None when ingest is disabled)."""
        return self._ingest_pipe

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ShoalHttpServer":
        """Serve on a background daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"shoal-http-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` / Ctrl-C."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        if self._ingest_pipe is not None:
            self._ingest_pipe.close()  # refuse writes before the edge dies
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._updater is not None:
            self._updater.stop(drain=False)
        if self._analytics_tailer is not None:
            # Drain: the WAL is final once the pipe is closed, so one
            # last pass leaves the store exactly matching it.
            self._analytics_tailer.stop(drain=True)
        if self._analytics_engine is not None:
            self._analytics_engine.store.close()
        self._backend.close()

    def __enter__(self) -> "ShoalHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ShoalClient(ShoalBackend):
    """The typed contract over HTTP — or in-process, same semantics.

    ``target`` is either a gateway base URL (``"http://host:port"``) or
    any :class:`ShoalBackend`. Both transports serialize the request to
    the wire dict and parse the response back through the contract
    codecs, so switching a frontend between in-process and remote
    serving changes exactly one constructor argument and nothing else.
    """

    kind = "client"

    def __init__(
        self, target: Union[str, ShoalBackend], *, timeout: float = 10.0
    ):
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
        self._timeout = timeout
        if isinstance(target, str):
            if not target.startswith(("http://", "https://")):
                raise ApiError(
                    "invalid_argument",
                    f"client target must be an http(s) URL or a backend, "
                    f"got {target!r}",
                )
            self._base_url: Optional[str] = target.rstrip("/")
            self._inner: Optional[ShoalBackend] = None
        elif isinstance(target, ShoalBackend):
            self._base_url = None
            self._inner = target
        else:
            raise ApiError(
                "invalid_argument",
                f"client target must be an http(s) URL or a backend, "
                f"got {type(target).__name__}",
            )

    @property
    def base_url(self) -> Optional[str]:
        """The remote gateway URL, or None for an in-process client."""
        return self._base_url

    # -- transports ----------------------------------------------------------

    def _http(
        self, method: str, endpoint: str, payload: Optional[Dict[str, Any]]
    ) -> Dict[str, Any]:
        url = f"{self._base_url}{API_PREFIX}/{endpoint}"
        data = None if payload is None else _json_bytes(payload)
        req = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json; charset=utf-8"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self._timeout) as resp:
                body = resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            parsed = None
            try:
                parsed = ApiError.from_dict(json.loads(raw.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError, ValueError,
                    ApiError):
                # Not a contract error payload (a proxy/LB answered for
                # the gateway, or the body is garbage): classify by the
                # HTTP status class instead of trusting the body.
                pass
            if parsed is not None:
                raise parsed
            code = (
                "unavailable" if exc.code in (502, 503)
                else "deadline_exceeded" if exc.code == 504
                else "rate_limited" if exc.code == 429
                else "backend_error" if exc.code >= 500
                else "bad_request"
            )
            raise ApiError(
                code, f"HTTP {exc.code} from {url}: {raw[:200]!r}"
            )
        except urllib.error.URLError as exc:
            raise ApiError("unavailable", f"cannot reach {url}: {exc.reason}")
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(
                "backend_error", f"non-JSON response from {url}: {exc}"
            )
        if not isinstance(parsed, dict):
            raise ApiError(
                "backend_error", f"non-object response from {url}"
            )
        return parsed

    def _roundtrip(self, endpoint: str, request) -> Dict[str, Any]:
        """request → wire dict → transport → wire dict, validated."""
        request.validate()
        if self._base_url is not None:
            return self._http("POST", endpoint, request.to_dict())
        # In-process: exercise the same codecs the wire would.
        inner_request = request_from_dict(endpoint, request.to_dict())
        if endpoint == "search":
            response = self._inner.search(inner_request)
        elif endpoint == "recommend":
            response = self._inner.recommend(inner_request)
        else:
            response = self._inner.batch(inner_request)
        return response.to_dict()

    # -- typed contract ------------------------------------------------------

    def search(self, request: SearchRequest) -> SearchResponse:
        return SearchResponse.from_dict(self._roundtrip("search", request))

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        return RecommendResponse.from_dict(
            self._roundtrip("recommend", request)
        )

    def batch(self, request: BatchRequest) -> BatchResponse:
        response = BatchResponse.from_dict(self._roundtrip("batch", request))
        if response.kind != request.kind:
            raise ApiError(
                "backend_error",
                f"batch response kind {response.kind!r} does not match "
                f"request kind {request.kind!r}",
            )
        return response

    # -- write path ----------------------------------------------------------

    def ingest(self, event: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one query event to the gateway's write path.

        Returns ``{"accepted": 1, "last_seq": N}``; raises
        :class:`ApiError` with the write path's stable codes
        (``ingest_overloaded`` under load shed, ``ingest_unavailable``
        when the pipe is closed, ``not_found`` when the server has no
        ingest enabled).
        """
        if self._base_url is not None:
            return self._http("POST", "ingest", dict(event))
        inner_ingest = getattr(self._inner, "ingest", None)
        if inner_ingest is None:
            raise ApiError(
                "not_found", "ingest is not enabled on this backend"
            )
        return inner_ingest(event)

    def ingest_batch(self, events: list) -> Dict[str, Any]:
        """Submit several events in one round trip.

        Both transports share the server's batch semantics: an empty
        batch is ``invalid_argument``, and a mid-batch failure reports
        how many leading events were already admitted (durably), so
        retry-the-tail logic is transport-independent.
        """
        events = list(events)
        if self._base_url is not None:
            return self._http("POST", "ingest", {"events": events})
        if not events:
            raise ApiError("invalid_argument", "no events to ingest")
        out = {"accepted": 0, "last_seq": 0}
        for event in events:
            try:
                result = self.ingest(event)
            except ApiError as exc:
                if out["accepted"]:
                    raise ApiError(
                        exc.code,
                        f"{exc.message} (the first {out['accepted']} "
                        f"event(s) of this batch were admitted, "
                        f"last_seq={out['last_seq']}; resubmit only the "
                        "rest)",
                    )
                raise
            out["accepted"] += result.get("accepted", 1)
            out["last_seq"] = result.get("last_seq", out["last_seq"])
        return out

    # -- analytics -----------------------------------------------------------

    def analytics(self, request: AnalyticsRequest) -> AnalyticsResponse:
        """Run one analytics query (raw SQL or a canned report).

        Raises :class:`ApiError` with the analytics tier's stable codes:
        ``analytics_bad_sql`` for a rejected statement,
        ``analytics_timeout`` past the time budget, and
        ``analytics_unavailable`` when the server has no analytics
        store attached.
        """
        request.validate()
        if self._base_url is not None:
            return AnalyticsResponse.from_dict(
                self._http("POST", "analytics", request.to_dict())
            )
        inner_analytics = getattr(self._inner, "analytics", None)
        if inner_analytics is None:
            raise ApiError(
                "analytics_unavailable",
                "no analytics tier is attached to this backend",
            )
        return inner_analytics(request)

    # -- operational surface -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        if self._base_url is not None:
            return self._http("GET", "health", None)
        return self._inner.health()

    def stats(self) -> Dict[str, Any]:
        if self._base_url is not None:
            return self._http("GET", "stats", None)
        return self._inner.stats()

    def metrics(self) -> MetricsResponse:
        """The gateway's versioned scrape point (GET /v1/metrics)."""
        if self._base_url is not None:
            return MetricsResponse.from_dict(
                self._http("GET", "metrics", None)
            )
        return MetricsResponse(backend=self._inner.stats())

    def metrics_prom(self) -> str:
        """GET /v1/metrics?format=prom — the OpenMetrics text body."""
        if self._base_url is None:
            raise ApiError(
                "not_found",
                "OpenMetrics exposition requires an HTTP gateway target",
            )
        endpoint = "metrics?format=prom"
        url = f"{self._base_url}{API_PREFIX}/{endpoint}"
        try:
            with urllib.request.urlopen(
                urllib.request.Request(url, method="GET"),
                timeout=self._timeout,
            ) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ApiError(
                "backend_error",
                f"HTTP {exc.code} from {url}: {exc.read()[:200]!r}",
            )
        except urllib.error.URLError as exc:
            raise ApiError("unavailable", f"cannot reach {url}: {exc.reason}")

    def trace(self, request_id: Optional[str] = None) -> TraceResponse:
        """Fetch one sampled span tree (GET /v1/trace).

        With ``request_id`` (root or hedge-child id) an exact lookup;
        without, the most recently sampled trace. Raises ``not_found``
        when the trace was not kept or tracing is disabled.
        """
        endpoint = "trace"
        if request_id is not None:
            endpoint += f"?request_id={urllib.parse.quote(request_id)}"
        if self._base_url is not None:
            return TraceResponse.from_dict(self._http("GET", endpoint, None))
        raise ApiError(
            "not_found", "tracing is not enabled on this backend"
        )

    def close(self) -> None:
        if self._inner is not None:
            self._inner.close()


def _assert_response_types_registered() -> None:
    """Guard: the endpoint tables of contract and client must agree."""
    assert set(RESPONSE_TYPES) == {
        "search", "recommend", "batch", "analytics", "trace",
    }


_assert_response_types_registered()
