"""The one public serving API: typed contract, backends, middleware, edge.

Every frontend in the repo — CLI subcommands, examples, benches, the
traffic replayer, CI — serves through this package instead of touching
a concrete read tier. The pieces:

* :mod:`repro.api.contract` — versioned request/response dataclasses
  (``SearchRequest``, ``RecommendRequest``, ``BatchRequest`` and their
  responses), JSON codecs, validation, and :class:`ApiError` with
  stable error codes;
* :mod:`repro.api.backends` — the :class:`ShoalBackend` contract with
  adapters for the single service, the sharded cluster, and snapshot
  directories, plus :func:`open_backend` for URI-based construction;
* :mod:`repro.api.middleware` — the composable gateway stack (metrics,
  token-bucket rate limiting, per-request deadlines, result cache) and
  :class:`Gateway`;
* :mod:`repro.api.context` — :class:`RequestContext` /
  :class:`CancelToken`: the per-request deadline + cancellation +
  identity object every edge mints and every layer below polls;
* :mod:`repro.api.http` — :class:`ShoalHttpServer` (stdlib JSON edge),
  :class:`GatewayCore` (the transport-neutral dispatch both edges
  share), and :class:`ShoalClient` (same typed contract in-process or
  remote);
* :mod:`repro.api.aio` — :class:`AsyncShoalServer`, the asyncio edge
  with deadline cancellation, hedging, and ingest coalescing;
* :mod:`repro.api.cache` — the shared locked LRU every cache tier uses.

Typical use::

    from repro.api import Gateway, SearchRequest, open_backend

    backend = open_backend("snapshot:/models/today")
    gateway = Gateway(backend)          # default middleware stack
    response = gateway.search(SearchRequest(query="beach dress", k=5))

This module resolves its exports lazily so that low-level modules
(e.g. :mod:`repro.core.serving`, which uses :mod:`repro.api.cache`)
can be imported without dragging in the whole gateway stack — and
without import cycles.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

_EXPORTS = {
    # cache
    "CacheStats": "repro.api.cache",
    "LRUCache": "repro.api.cache",
    # contract
    "SCHEMA_VERSION": "repro.api.contract",
    "MAX_K": "repro.api.contract",
    "MAX_QUERY_CHARS": "repro.api.contract",
    "MAX_BATCH_QUERIES": "repro.api.contract",
    "MAX_ANALYTICS_ROWS": "repro.api.contract",
    "MAX_SQL_CHARS": "repro.api.contract",
    "ANALYTICS_REPORTS": "repro.api.contract",
    "ERROR_CODES": "repro.api.contract",
    "ApiError": "repro.api.contract",
    "SearchRequest": "repro.api.contract",
    "SearchResponse": "repro.api.contract",
    "RecommendRequest": "repro.api.contract",
    "RecommendResponse": "repro.api.contract",
    "BatchRequest": "repro.api.contract",
    "BatchResponse": "repro.api.contract",
    "AnalyticsRequest": "repro.api.contract",
    "AnalyticsResponse": "repro.api.contract",
    "MetricsResponse": "repro.api.contract",
    "TraceResponse": "repro.api.contract",
    "request_from_dict": "repro.api.contract",
    # context
    "RequestContext": "repro.api.context",
    "CancelToken": "repro.api.context",
    "current_context": "repro.api.context",
    # backends
    "ShoalBackend": "repro.api.backends",
    "ServiceBackend": "repro.api.backends",
    "ClusterBackend": "repro.api.backends",
    "open_backend": "repro.api.backends",
    # middleware
    "Middleware": "repro.api.middleware",
    "CacheMiddleware": "repro.api.middleware",
    "RateLimitMiddleware": "repro.api.middleware",
    "DeadlineMiddleware": "repro.api.middleware",
    "MetricsMiddleware": "repro.api.middleware",
    "Gateway": "repro.api.middleware",
    "default_middlewares": "repro.api.middleware",
    # http edges
    "ShoalHttpServer": "repro.api.http",
    "GatewayCore": "repro.api.http",
    "ShoalClient": "repro.api.http",
    "AsyncShoalServer": "repro.api.aio",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.api' has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for the next lookup
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.api.aio import AsyncShoalServer  # noqa: F401
    from repro.api.backends import (  # noqa: F401
        ClusterBackend,
        ServiceBackend,
        ShoalBackend,
        open_backend,
    )
    from repro.api.cache import CacheStats, LRUCache  # noqa: F401
    from repro.api.contract import (  # noqa: F401
        AnalyticsRequest,
        AnalyticsResponse,
        ApiError,
        BatchRequest,
        BatchResponse,
        MetricsResponse,
        RecommendRequest,
        RecommendResponse,
        SearchRequest,
        SearchResponse,
        TraceResponse,
    )
    from repro.api.context import (  # noqa: F401
        CancelToken,
        RequestContext,
        current_context,
    )
    from repro.api.http import (  # noqa: F401
        GatewayCore,
        ShoalClient,
        ShoalHttpServer,
    )
    from repro.api.middleware import (  # noqa: F401
        CacheMiddleware,
        DeadlineMiddleware,
        Gateway,
        MetricsMiddleware,
        Middleware,
        RateLimitMiddleware,
        default_middlewares,
    )
