"""Pluggable serving backends behind one typed contract.

:class:`ShoalBackend` is the single serving interface of the repo:
``search`` / ``recommend`` / ``batch`` over the typed dataclasses of
:mod:`repro.api.contract`. Concrete adapters wrap each read tier —

* :class:`ServiceBackend` — a single in-process
  :class:`~repro.core.serving.ShoalService` (built from a model or a
  snapshot directory);
* :class:`ClusterBackend` — a sharded
  :class:`~repro.serving.router.ClusterRouter` (built from a model, a
  shard set, or a cluster snapshot directory);
* :class:`~repro.api.http.ShoalClient` — the same contract over HTTP
  or delegating in-process (lives in :mod:`repro.api.http`).

so frontends never construct or dispatch on a concrete tier.
:func:`open_backend` turns a backend URI into the right adapter::

    open_backend("snapshot:/path/to/model-snapshot")   # single service
    open_backend("local:/path/to/model-snapshot")      # alias of snapshot:
    open_backend("cluster:/path/to/cluster-snapshot")  # sharded router
    open_backend("follower:/path/to/ship-feed")        # replication follower
    open_backend("http://10.0.0.7:8080")               # remote gateway
    open_backend("/path/to/either-kind-of-dir")        # sniffed from MANIFEST

The pre-gateway convenience names (``search_topics``,
``recommend_entities_for_query``, ...) lived here as deprecated
delegates for one release and are now gone: frontends construct
request dataclasses and call ``search`` / ``recommend`` / ``batch``.
The engine tiers (:class:`~repro.core.serving.ShoalService`,
:class:`~repro.serving.router.ClusterRouter`) keep their raw method
quartet — that is the engine surface these adapters wrap, not the
public API.
"""

from __future__ import annotations

import abc
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.api.context import current_context
from repro.api.contract import (
    SCHEMA_VERSION,
    ApiError,
    BatchRequest,
    BatchResponse,
    RecommendRequest,
    RecommendResponse,
    SearchRequest,
    SearchResponse,
)
from repro.core.serving import ShoalService
from repro.obs.tracer import traced

__all__ = [
    "ShoalBackend",
    "ServiceBackend",
    "ClusterBackend",
    "open_backend",
]


class ShoalBackend(abc.ABC):
    """The one serving contract every read tier is served through.

    Subclasses implement the three typed entry points plus the
    operational surface (``health`` / ``stats`` / ``close``); nothing
    else is part of the contract.
    """

    #: Stable adapter identifier reported by :meth:`health`/:meth:`stats`.
    kind: str = "abstract"

    # -- typed contract ------------------------------------------------------

    @abc.abstractmethod
    def search(self, request: SearchRequest) -> SearchResponse:
        """Ranked topics for one query (scenario A)."""

    @abc.abstractmethod
    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        """Topic-matched entity slate for one query (Fig. 4b)."""

    @abc.abstractmethod
    def batch(self, request: BatchRequest) -> BatchResponse:
        """One search/recommend result per query, in order."""

    # -- operational surface -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Liveness + identity; cheap enough for a poll loop."""
        return {
            "status": "ok",
            "backend": self.kind,
            "version": SCHEMA_VERSION,
        }

    def stats(self) -> Dict[str, Any]:
        """Operational counters (cache tiers, latency) as JSON-able data."""
        return {"backend": self.kind}

    def close(self) -> None:
        """Release transport/engine resources (idempotent)."""

    def __enter__(self) -> "ShoalBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _EngineBackend(ShoalBackend):
    """Adapter over an in-process tier exposing the engine method quartet.

    Both :class:`~repro.core.serving.ShoalService` and
    :class:`~repro.serving.router.ClusterRouter` expose ``search_topics``
    / ``search_topics_batch`` / ``recommend_entities_for_query`` /
    ``recommend_batch`` with identical signatures (a contract test pins
    that), so one adapter body serves both tiers.
    """

    def __init__(self, engine):
        self._engine = engine

    @staticmethod
    def _checkpoint() -> None:
        """Cancellation-aware call point: refuse to start engine work
        for a request whose ambient context is already expired or
        cancelled (the async edge relies on this to abandon hedge
        losers and blown deadlines before they cost shard time)."""
        ctx = current_context()
        if ctx is not None:
            ctx.raise_if_done()

    def search(self, request: SearchRequest) -> SearchResponse:
        request.validate()
        self._checkpoint()
        with traced("backend.search", tags={"kind": self.kind}):
            try:
                hits = self._engine.search_topics(request.query, request.k)
            except ApiError:
                raise
            except Exception as exc:
                raise ApiError(
                    "backend_error", f"{self.kind} search failed: {exc}"
                )
        return SearchResponse(hits=tuple(hits))

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        request.validate()
        self._checkpoint()
        with traced("backend.recommend", tags={"kind": self.kind}):
            try:
                ids = self._engine.recommend_entities_for_query(
                    request.query, request.k
                )
            except ApiError:
                raise
            except Exception as exc:
                raise ApiError(
                    "backend_error", f"{self.kind} recommend failed: {exc}"
                )
        return RecommendResponse(entity_ids=tuple(ids))

    def batch(self, request: BatchRequest) -> BatchResponse:
        request.validate()
        self._checkpoint()
        with traced("backend.batch", tags={"kind": self.kind}):
            try:
                if request.kind == "search":
                    rows = self._engine.search_topics_batch(
                        list(request.queries), request.k
                    )
                else:
                    rows = self._engine.recommend_batch(
                        list(request.queries), request.k
                    )
            except ApiError:
                raise
            except Exception as exc:
                raise ApiError(
                    "backend_error", f"{self.kind} batch failed: {exc}"
                )
        return BatchResponse(
            kind=request.kind, results=tuple(tuple(r) for r in rows)
        )

    def categories_of_topic(self, topic_id: int) -> List[int]:
        """Engine extension (not part of the wire contract): the
        ontology categories of one topic, for rich CLI/example output."""
        return self._engine.categories_of_topic(topic_id)

    def cache_stats(self):
        """Engine extension: aggregate :class:`CacheStats` of the tier
        (the replayer's hit-rate reporting probes this)."""
        return self._engine.cache_stats()

    def invalidate_cache(self) -> None:
        """Engine extension: drop every cached result in the tier."""
        invalidate = getattr(self._engine, "invalidate_cache", None)
        if invalidate is None:  # ClusterRouter names it invalidate_caches
            self._engine.invalidate_caches()
        else:
            invalidate()

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["cache"] = self._engine.cache_stats().to_dict()
        return out


class ServiceBackend(_EngineBackend):
    """The single-process read tier behind the gateway contract."""

    kind = "local"

    def __init__(self, service: ShoalService):
        super().__init__(service)

    @classmethod
    def from_model(
        cls,
        model,
        *,
        entity_categories: Optional[Dict[int, int]] = None,
        cache_size: int = 4096,
        tokenizer=None,
        collection_stats=None,
    ) -> "ServiceBackend":
        """Stand up a fresh :class:`ShoalService` over a fitted model."""
        return cls(
            ShoalService(
                model,
                tokenizer,
                cache_size=cache_size,
                entity_categories=entity_categories,
                collection_stats=collection_stats,
            )
        )

    @classmethod
    def from_snapshot(
        cls, directory: Union[str, Path], *, cache_size: int = 4096
    ) -> "ServiceBackend":
        """Warm-start from a ``fit --save`` model snapshot directory."""
        return cls(
            ShoalService.from_snapshot(directory, cache_size=cache_size)
        )

    @property
    def service(self) -> ShoalService:
        """The wrapped engine, for engine-level scenarios (B/C/D) and
        benches that compare gateway dispatch against the raw tier."""
        return self._engine


class ClusterBackend(_EngineBackend):
    """The sharded read tier behind the same gateway contract."""

    kind = "cluster"

    def __init__(self, router):
        super().__init__(router)

    @classmethod
    def from_model(
        cls,
        model,
        n_shards: int,
        *,
        n_replicas: int = 1,
        entity_categories: Optional[Dict[int, int]] = None,
        cache_size: int = 4096,
        tokenizer=None,
    ) -> "ClusterBackend":
        from repro.serving.router import ClusterRouter

        return cls(
            ClusterRouter.from_model(
                model,
                n_shards,
                n_replicas=n_replicas,
                entity_categories=entity_categories,
                cache_size=cache_size,
                tokenizer=tokenizer,
            )
        )

    @classmethod
    def from_shard_set(
        cls,
        shard_set,
        *,
        n_replicas: int = 1,
        cache_size: int = 4096,
        tokenizer=None,
    ) -> "ClusterBackend":
        from repro.serving.router import ClusterRouter

        return cls(
            ClusterRouter(
                shard_set,
                n_replicas=n_replicas,
                cache_size=cache_size,
                tokenizer=tokenizer,
            )
        )

    @classmethod
    def from_snapshot(
        cls,
        directory: Union[str, Path],
        *,
        n_replicas: int = 1,
        cache_size: int = 4096,
        tokenizer=None,
    ) -> "ClusterBackend":
        """Warm-start from a ``serve-cluster --save-shards`` directory."""
        from repro.serving.router import ClusterRouter

        return cls(
            ClusterRouter.from_snapshot(
                directory,
                n_replicas=n_replicas,
                cache_size=cache_size,
                tokenizer=tokenizer,
            )
        )

    @property
    def router(self):
        """The wrapped :class:`ClusterRouter`, for plan/stat inspection."""
        return self._engine

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        router = self._engine
        out["n_shards"] = router.n_shards
        out["n_replicas"] = router.n_replicas
        latency = router.request_stats()
        out["latency"] = {
            "count": latency.count,
            "qps": latency.qps,
            "p50_ms": latency.p50_ms,
            "p95_ms": latency.p95_ms,
            "p99_ms": latency.p99_ms,
        }
        return out


def _sniff_directory(path: Path) -> str:
    """Which snapshot family a bare directory path holds."""
    if (path / "CLUSTER_MANIFEST.json").is_file():
        return "cluster"
    if (path / "MANIFEST.json").is_file():
        return "snapshot"
    raise ApiError(
        "invalid_argument",
        f"{path} has neither MANIFEST.json nor CLUSTER_MANIFEST.json; "
        "pass an explicit 'snapshot:DIR' or 'cluster:DIR' URI",
    )


def open_backend(
    uri: str,
    *,
    cache_size: int = 4096,
    n_replicas: int = 1,
    timeout: float = 10.0,
) -> ShoalBackend:
    """One front door from a backend URI to a ready adapter.

    Supported schemes: ``snapshot:DIR`` (alias ``local:DIR``) for a
    single-service model snapshot, ``cluster:DIR`` for a sharded
    cluster snapshot, ``follower:DIR`` for an embedded replication
    follower tailing a ship feed, ``http://`` / ``https://`` for a
    remote gateway, and a bare directory path whose manifest decides
    between the first two. Every malformed URI — unknown scheme, empty target, missing or
    unreadable snapshot — raises :class:`ApiError`
    (``invalid_argument``) naming what was wrong, never a raw
    ``OSError``.
    """
    if not isinstance(uri, str) or not uri:
        raise ApiError("invalid_argument", f"not a backend URI: {uri!r}")
    if uri.startswith(("http://", "https://")):
        from repro.api.http import ShoalClient

        return ShoalClient(uri, timeout=timeout)
    for scheme in ("snapshot:", "local:"):
        if uri.startswith(scheme):
            return _open_snapshot(
                scheme, uri[len(scheme):], cache_size=cache_size
            )
    if uri.startswith("cluster:"):
        target = uri[len("cluster:"):]
        if not target:
            raise ApiError(
                "invalid_argument",
                "'cluster:' URI is missing its snapshot directory",
            )
        try:
            return ClusterBackend.from_snapshot(
                target, n_replicas=n_replicas, cache_size=cache_size
            )
        except ApiError:
            raise
        except (OSError, ValueError, KeyError) as exc:
            raise ApiError(
                "invalid_argument",
                f"cannot open cluster snapshot {target!r}: {exc}",
            )
    if uri.startswith("follower:"):
        target = uri[len("follower:"):]
        if not target:
            raise ApiError(
                "invalid_argument",
                "'follower:' URI is missing its replication feed directory",
            )
        return _open_follower(
            target, cache_size=cache_size, n_replicas=n_replicas
        )
    scheme_match = _SCHEME_RE.match(uri)
    if scheme_match is not None:
        raise ApiError(
            "invalid_argument",
            f"unknown backend scheme {scheme_match.group(1)!r} in {uri!r}: "
            "expected snapshot:, local:, cluster:, follower:, http:// or "
            "https://",
        )
    path = Path(uri)
    if path.is_dir():
        if _sniff_directory(path) == "cluster":
            return ClusterBackend.from_snapshot(
                path, n_replicas=n_replicas, cache_size=cache_size
            )
        return ServiceBackend.from_snapshot(path, cache_size=cache_size)
    raise ApiError(
        "invalid_argument",
        f"cannot open backend {uri!r}: expected 'snapshot:DIR', "
        "'local:DIR', 'cluster:DIR', an http(s):// URL, or an existing "
        "snapshot directory",
    )


#: A URI-ish prefix (e.g. ``ftp:``) that is not a plain path. Single
#: letters are excluded so Windows-style ``C:\...`` never matches.
_SCHEME_RE = re.compile(r"^([A-Za-z][A-Za-z0-9+.-]+):")


def _open_follower(target: str, *, cache_size: int, n_replicas: int):
    """Join a replication feed as an embedded follower.

    Bootstraps a :class:`repro.replication.Follower` over a throwaway
    workdir, catches it up to the feed's current epoch, and leaves its
    tail loop running in the background — the returned backend serves
    reads that track the primary's coordinated swaps. Closing the
    backend stops the loop.
    """
    import tempfile

    from repro.replication import Follower
    from repro.replication.feed import FeedError

    try:
        follower = Follower(
            target,
            tempfile.mkdtemp(prefix="shoal-follower-"),
            n_replicas=n_replicas,
            cache_size=cache_size,
        )
        backend = follower.bootstrap()
        follower.catch_up(timeout_s=120.0)
        follower.start()
        return backend
    except (FeedError, OSError, ValueError, KeyError) as exc:
        raise ApiError(
            "invalid_argument",
            f"cannot open replication feed {target!r}: {exc}",
        )


def _open_snapshot(
    scheme: str, target: str, *, cache_size: int
) -> "ServiceBackend":
    if not target:
        raise ApiError(
            "invalid_argument",
            f"{scheme!r} URI is missing its snapshot directory",
        )
    try:
        return ServiceBackend.from_snapshot(target, cache_size=cache_size)
    except ApiError:
        raise
    except (OSError, ValueError, KeyError) as exc:
        raise ApiError(
            "invalid_argument",
            f"cannot open model snapshot {target!r}: {exc}",
        )
