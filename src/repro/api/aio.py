"""The asyncio HTTP edge: same contract as the threaded edge, plus
deadline cancellation, request hedging, and ingest coalescing.

:class:`AsyncShoalServer` serves the exact wire protocol of
:class:`~repro.api.http.ShoalHttpServer` — same endpoints, same JSON
codecs, byte-identical bodies — through one ``asyncio`` event loop
instead of a thread per connection, so it holds thousands of idle
keep-alive connections at the cost of a socket each. All routing and
dispatch is delegated to the shared :class:`~repro.api.http.GatewayCore`,
so the two edges cannot drift apart in behaviour; what this module adds
is everything a blocking edge cannot do:

* **Deadline cancellation** — every read request gets a
  :class:`~repro.api.context.RequestContext` armed with its
  ``timeout_ms`` (or the server default). When the deadline passes, the
  edge answers 504 *immediately* and cancels the context; the worker
  thread still grinding in the backend observes the cancellation at the
  next router/backend check point and abandons the shard work, instead
  of completing an answer nobody will read.

* **Hedging** — if the primary attempt has not answered after a delay
  (fixed via ``hedge_after_ms``, or auto-derived as the edge's observed
  p95 read latency), a second attempt is launched with a child context;
  the router's least-loaded placement naturally lands it on an idle
  replica. First successful answer wins; the loser's context is
  cancelled (surfacing as the ``cancelled`` code at its next check
  point, swallowed here). Answers stay byte-identical because both
  attempts compute the same deterministic result.

* **Ingest coalescing** — concurrent ``POST /v1/ingest`` calls are
  buffered for up to ``coalesce_max_delay_ms`` (or until
  ``coalesce_max_events`` queue up) and admitted through
  :meth:`~repro.streaming.ingest.IngestPipe.submit_many`, which covers
  the whole batch with ONE WAL fsync — amortizing the disk barrier that
  dominates single-event writes under fan-in. Durable-before-ack is
  preserved (futures resolve only after ``submit_many`` returns) and so
  are the ``ingest_overloaded`` / ``ingest_unavailable`` backpressure
  codes, including the partial-batch "resubmit only the rest"
  accounting when admission splits a coalesced batch.

The threaded edge remains available behind ``serve-http --edge thread``
for one release; this edge is the default successor.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.backends import ShoalBackend
from repro.api.context import RequestContext
from repro.api.contract import (
    AnalyticsRequest,
    ApiError,
)
from repro.api.http import (
    API_PREFIX,
    MAX_BODY_BYTES,
    GatewayCore,
    RawResponse,
    _json_bytes,
    partial_batch_error,
)
from repro.obs.tracer import traced
from repro.serving.stats import RequestStats

__all__ = ["AsyncShoalServer"]

_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    499: "Client Closed Request",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Auto hedge policy: do not hedge until this many read samples exist
#: (a p95 of three requests is noise), and never hedge faster than the
#: floor — a sub-millisecond delay would double every request.
_HEDGE_MIN_SAMPLES = 50
_HEDGE_FLOOR_MS = 1.0


def _silence(task: "asyncio.Future") -> None:
    """Mark a losing/abandoned task's eventual exception as observed."""

    def _observe(done: "asyncio.Future") -> None:
        if not done.cancelled():
            done.exception()

    task.add_done_callback(_observe)


class _EdgeError(Exception):
    """An :class:`ApiError` plus the keep-alive verdict for this socket."""

    def __init__(self, err: ApiError, close: bool = False):
        super().__init__(err.message)
        self.err = err
        self.close = close


class _EdgeStats:
    """The async edge's own counters, exposed as ``/v1/metrics``'s
    ``edge`` section. Mutated only on the event-loop thread; read from
    executor threads (single int loads, safe under the GIL)."""

    def __init__(self) -> None:
        self.connections_open = 0
        self.connections_total = 0
        self.hedges_launched = 0
        self.hedges_won = 0
        self.cancelled = 0
        self.deadline_expired = 0
        self.read_stats = RequestStats()

    def to_dict(
        self, coalescer: Optional["_IngestCoalescer"]
    ) -> Dict[str, Any]:
        summary = self.read_stats.summary()
        out: Dict[str, Any] = {
            "kind": "async",
            "connections": {
                "open": self.connections_open,
                "total": self.connections_total,
            },
            "hedges": {
                "launched": self.hedges_launched,
                "won": self.hedges_won,
            },
            "cancelled": self.cancelled,
            "deadline_expired": self.deadline_expired,
            "reads": {
                "count": summary.count,
                "p50_ms": summary.p50_ms,
                "p95_ms": summary.p95_ms,
                "p99_ms": summary.p99_ms,
            },
        }
        if coalescer is not None:
            out["coalescer"] = coalescer.stats()
        return out


class _IngestCoalescer:
    """Buffer single ingest POSTs into batched WAL admissions.

    Lives entirely on the event-loop thread (no locks): requests append
    ``(events, future)`` pairs, and a flush — triggered by the pending
    count reaching ``max_events`` or the oldest entry ageing past
    ``max_delay_s`` — pushes everything through
    :meth:`IngestPipe.submit_many` on the executor, then resolves each
    request's future from the admitted prefix. One flush = at most one
    fsync, however many clients were coalesced into it.
    """

    def __init__(
        self,
        pipe,
        run_blocking: Callable,
        *,
        max_events: int,
        max_delay_s: float,
    ):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self._pipe = pipe
        self._run_blocking = run_blocking
        self._max_events = max_events
        self._max_delay_s = max_delay_s
        self._pending: List[Tuple[list, "asyncio.Future"]] = []
        self._pending_events = 0
        self._timer: Optional["asyncio.TimerHandle"] = None
        self._batches = 0
        self._events = 0

    async def submit(self, events: list) -> Dict[str, Any]:
        """Queue pre-validated events; resolves once they are durable."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending.append((events, future))
        self._pending_events += len(events)
        if self._pending_events >= self._max_events:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            await self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self._max_delay_s, self._fire)
        return await future

    def _fire(self) -> None:
        self._timer = None
        asyncio.ensure_future(self._flush())

    async def drain(self) -> None:
        """Flush whatever is pending (shutdown path)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        await self._flush()

    async def _flush(self) -> None:
        pending, self._pending = self._pending, []
        self._pending_events = 0
        if not pending:
            return
        flat = [event for events, _ in pending for event in events]

        def flush_batch():
            # Runs on the worker thread so the WAL-append span nests
            # under this one in a single background trace.
            with traced(
                "ingest.coalesce_flush",
                tags={
                    "events": str(len(flat)),
                    "requests": str(len(pending)),
                },
            ):
                return self._pipe.submit_many(flat)

        try:
            admitted = await self._run_blocking(flush_batch)
        except ApiError as exc:
            self._reject_all(pending, exc)
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._reject_all(
                pending, ApiError("backend_error", f"ingest failed: {exc}")
            )
            return
        self._batches += 1
        self._events += len(admitted)
        # Resolve per-request futures from the admitted prefix: fully
        # covered requests ack, the straddling request gets the
        # partial-batch accounting, fully-shed requests backpressure.
        n_admitted = len(admitted)
        idx = 0
        overloaded = ApiError(
            "ingest_overloaded",
            "ingest queue is full; retry with backoff",
        )
        for events, future in pending:
            n = len(events)
            if future.done():  # client task already gone
                idx = min(idx + n, n_admitted)
                continue
            if idx + n <= n_admitted:
                future.set_result(
                    {"accepted": n, "last_seq": admitted[idx + n - 1].seq}
                )
                idx += n
            elif idx < n_admitted:
                accepted = n_admitted - idx
                future.set_exception(
                    partial_batch_error(
                        overloaded, accepted, admitted[-1].seq
                    )
                )
                idx = n_admitted
            else:
                future.set_exception(overloaded)

    @staticmethod
    def _reject_all(pending, exc: ApiError) -> None:
        for _, future in pending:
            if not future.done():
                future.set_exception(exc)

    def stats(self) -> Dict[str, Any]:
        return {
            "batches": self._batches,
            "events": self._events,
            "max_events": self._max_events,
            "max_delay_ms": self._max_delay_s * 1000.0,
        }


class AsyncShoalServer:
    """Serve a backend over HTTP from one asyncio event loop.

    Drop-in peer of :class:`~repro.api.http.ShoalHttpServer` (same
    constructor surface, ``.host`` / ``.port`` / ``.url``, ``start()``
    / ``serve_forever()`` / ``shutdown()``, context-manager protocol)
    with the async-only behaviours described in the module docstring.

    ``hedge_after_ms``: ``None`` derives the hedge delay from the
    edge's observed p95 read latency (no hedging until enough samples);
    ``0`` hedges any request not answered by the first scheduler tick
    (useful in CI to guarantee hedge coverage); ``> 0`` is a fixed
    delay in milliseconds.
    """

    def __init__(
        self,
        backend: ShoalBackend,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        quiet: bool = True,
        ingest_pipe=None,
        updater=None,
        analytics_engine=None,
        analytics_tailer=None,
        default_timeout_ms: Optional[float] = None,
        hedge_after_ms: Optional[float] = None,
        coalesce_max_events: int = 64,
        coalesce_max_delay_ms: float = 5.0,
        max_workers: Optional[int] = None,
        replication_stats=None,
        tracer=None,
    ):
        if hedge_after_ms is not None and hedge_after_ms < 0:
            raise ValueError(
                f"hedge_after_ms must be >= 0, got {hedge_after_ms}"
            )
        self._backend = backend
        self._requested = (host, port)
        self._quiet = quiet
        self._ingest_pipe = ingest_pipe
        self._updater = updater
        self._analytics_engine = analytics_engine
        self._analytics_tailer = analytics_tailer
        self._default_timeout_ms = default_timeout_ms
        self._hedge_after_ms = hedge_after_ms
        self._coalesce_max_events = coalesce_max_events
        self._coalesce_max_delay_ms = coalesce_max_delay_ms
        self._stats = _EdgeStats()
        self._coalescer: Optional[_IngestCoalescer] = None
        self._tracer = tracer
        self._core = GatewayCore(
            backend,
            ingest_pipe=ingest_pipe,
            updater=updater,
            analytics_engine=analytics_engine,
            analytics_tailer=analytics_tailer,
            edge_stats=lambda: self._stats.to_dict(self._coalescer),
            replication_stats=replication_stats,
            tracer=tracer,
            edge_histograms=lambda: (
                {"edge_read_latency_ms": self._stats.read_stats}
                if self._stats.read_stats.count > 0
                else {}
            ),
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers or 32,
            thread_name_prefix="shoal-aio-worker",
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._bound: Optional[Tuple[str, int]] = None
        self._closed = False

    # -- public surface (mirrors ShoalHttpServer) ----------------------------

    @property
    def backend(self) -> ShoalBackend:
        return self._backend

    @property
    def core(self) -> GatewayCore:
        return self._core

    @property
    def ingest_pipe(self):
        return self._ingest_pipe

    @property
    def host(self) -> str:
        return self._bound[0] if self._bound else self._requested[0]

    @property
    def port(self) -> int:
        return self._bound[1] if self._bound else self._requested[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AsyncShoalServer":
        """Run the event loop on a background daemon thread."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop,
            name=f"shoal-aio-{self._requested[1]}",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise RuntimeError("async edge failed to start in time")
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` / Ctrl-C."""
        if self._thread is not None:
            # start() already runs the loop on its daemon thread; park
            # here so Ctrl-C lands on the caller (who runs shutdown()).
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)
            return
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        main_task = self._loop.create_task(self._main())
        try:
            self._loop.run_until_complete(main_task)
        except KeyboardInterrupt:
            # Resume the loop just long enough for _main's graceful
            # shutdown (close listener, drain the coalescer) to run.
            self._loop.call_soon(self._stop_event.set)
            self._loop.run_until_complete(main_task)

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Stop the loop first: _main drains the coalescer while the
        # ingest pipe is still open, so buffered events are not lost.
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._signal_stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._ingest_pipe is not None:
            self._ingest_pipe.close()
        if self._updater is not None:
            self._updater.stop(drain=False)
        if self._analytics_tailer is not None:
            self._analytics_tailer.stop(drain=True)
        if self._analytics_engine is not None:
            self._analytics_engine.store.close()
        self._backend.close()
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "AsyncShoalServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- event loop lifecycle ------------------------------------------------

    def _signal_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
            leftovers = [
                t for t in asyncio.all_tasks(self._loop) if not t.done()
            ]
            for task in leftovers:
                task.cancel()
            if leftovers:
                self._loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True)
                )
        finally:
            self._ready.set()  # never leave start() hanging on a crash
            self._loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        if self._ingest_pipe is not None:
            self._coalescer = _IngestCoalescer(
                self._ingest_pipe,
                self._run_blocking,
                max_events=self._coalesce_max_events,
                max_delay_s=self._coalesce_max_delay_ms / 1000.0,
            )
        server = await asyncio.start_server(
            self._handle_conn, self._requested[0], self._requested[1]
        )
        sockname = server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            if self._coalescer is not None:
                await self._coalescer.drain()

    async def _run_blocking(self, fn: Callable):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn)

    # -- HTTP/1.1 ------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._stats.connections_open += 1
        self._stats.connections_total += 1
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, raw_path, _version = (
                        request_line.decode("latin-1").split(None, 2)
                    )
                except ValueError:
                    break  # not HTTP; drop the connection
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload, close = await self._serve_one(
                    method, raw_path, headers, reader
                )
                if isinstance(payload, RawResponse):
                    body = payload.body
                    content_type = payload.content_type
                else:
                    body = _json_bytes(payload)
                    content_type = "application/json; charset=utf-8"
                closing = close or not keep_alive
                conn_header = "Connection: close\r\n" if closing else ""
                head = (
                    f"HTTP/1.1 {status} {_PHRASES.get(status, 'Unknown')}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"{conn_header}"
                    "\r\n"
                ).encode("latin-1")
                writer.write(head + body)
                await writer.drain()
                if closing:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self._stats.connections_open -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_one(
        self,
        method: str,
        raw_path: str,
        headers: Dict[str, str],
        reader: asyncio.StreamReader,
    ) -> Tuple[int, Any, bool]:
        """Route one request; returns (status, payload, close_socket).
        ``payload`` is a JSON dict or a :class:`RawResponse`."""
        path, _, raw_query = raw_path.partition("?")
        path = path.rstrip("/")
        force_close = False
        try:
            if method == "GET":
                # Same hygiene as the threaded edge: an unexpected GET
                # body is drained (or, when undrainable, the socket is
                # marked for close) and the request still served.
                force_close = await self._drain_body(reader, headers)
                endpoint = self._endpoint(path)
                payload = await self._run_blocking(
                    lambda: self._core.dispatch_get(endpoint, raw_query)
                )
                return 200, payload, force_close
            if method == "POST":
                try:
                    payload = await self._read_body(reader, headers)
                except _EdgeError as body_error:
                    self._endpoint(path)  # prefer not_found
                    raise body_error
                endpoint = self._endpoint(path)
                if endpoint == "ingest":
                    return 200, await self._handle_ingest(payload), False
                return 200, await self._dispatch_read(endpoint, payload), False
            raise ApiError("not_found", f"method {method} is not supported")
        except _EdgeError as exc:
            return (
                exc.err.http_status,
                exc.err.to_dict(),
                exc.close or force_close,
            )
        except ApiError as err:
            return err.http_status, err.to_dict(), force_close
        except Exception as exc:  # never leak a traceback onto the wire
            err = ApiError("backend_error", str(exc))
            return err.http_status, err.to_dict(), force_close

    @staticmethod
    def _endpoint(path: str) -> str:
        if not path.startswith(API_PREFIX + "/"):
            raise ApiError("not_found", f"no such path: {path}")
        return path[len(API_PREFIX) + 1:]

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> Dict[str, Any]:
        """Parse the JSON body with the threaded edge's keep-alive
        hygiene: every failure either consumes the declared bytes or
        closes the socket, so leftovers are never parsed as the next
        request line."""
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _EdgeError(
                ApiError("bad_request", "malformed Content-Length header"),
                close=True,
            )
        if length <= 0:
            raise _EdgeError(
                ApiError("bad_request", "request body is required")
            )
        if length > MAX_BODY_BYTES:
            raise _EdgeError(
                ApiError(
                    "invalid_argument",
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit",
                ),
                close=True,
            )
        raw = await reader.readexactly(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _EdgeError(
                ApiError("bad_request", f"body is not valid JSON: {exc}")
            )
        if not isinstance(payload, dict):
            raise _EdgeError(
                ApiError("bad_request", "body must be a JSON object")
            )
        return payload

    @staticmethod
    async def _drain_body(
        reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bool:
        """Consume a body a GET should not have; True = close socket."""
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return True
        if length > MAX_BODY_BYTES:
            return True
        if length > 0:
            await reader.readexactly(length)
        return False

    # -- reads: deadline + hedging -------------------------------------------

    async def _dispatch_read(
        self, endpoint: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        request = self._core.decode_post(endpoint, payload)
        if isinstance(request, AnalyticsRequest):
            # The analytics tier has its own time budget and a single
            # store — nothing to hedge against.
            response = await self._run_blocking(
                lambda: self._core.dispatch_request(request)
            )
            return response.to_dict()
        timeout_ms = (
            request.timeout_ms
            if request.timeout_ms is not None
            else self._default_timeout_ms
        )
        ctx = RequestContext.for_request(
            timeout_ms=timeout_ms,
            tags={"edge": "async", "endpoint": endpoint},
            tracer=self._tracer,
        )
        t0 = time.perf_counter()
        # The root span lives on the event loop; attempts run on
        # executor threads, so each is parented explicitly (contextvars
        # do not cross run_in_executor).
        with traced("edge.request", context=ctx) as root:
            response = await self._hedged_dispatch(request, ctx, root.span)
        self._stats.read_stats.record(time.perf_counter() - t0)
        return response.to_dict()

    def _hedge_delay_s(self) -> Optional[float]:
        """Seconds to wait before hedging, or None (don't hedge yet)."""
        if self._hedge_after_ms is not None:
            return self._hedge_after_ms / 1000.0
        summary = self._stats.read_stats.summary()
        if summary.count < _HEDGE_MIN_SAMPLES:
            return None
        return max(summary.p95_ms, _HEDGE_FLOOR_MS) / 1000.0

    def _attempt(self, request, attempt_ctx: RequestContext, parent_span=None):
        """One dispatch attempt on the executor, under its context."""
        role = attempt_ctx.tags.get("attempt", "primary")

        def run():
            # contextvars do not cross run_in_executor: the worker
            # enters the context itself (and parents its span to the
            # edge root explicitly).
            with traced(
                "edge.attempt",
                context=attempt_ctx,
                parent=parent_span,
                tags={"attempt": role},
            ):
                return self._core.dispatch_request(
                    request, context=attempt_ctx
                )

        loop = asyncio.get_running_loop()
        return asyncio.ensure_future(
            loop.run_in_executor(self._executor, run)
        )

    def _fail_deadline(self, ctx: RequestContext, attempts) -> None:
        """Deadline expiry: answer 504 NOW, cancel the in-flight work."""
        ctx.cancel("deadline expired")
        self._stats.deadline_expired += 1
        for task, _attempt_ctx in attempts:
            _silence(task)
        raise ApiError(
            "deadline_exceeded",
            f"request {ctx.request_id} exceeded its deadline; "
            "in-flight shard work was cancelled",
        )

    async def _hedged_dispatch(
        self, request, ctx: RequestContext, parent_span=None
    ):
        attempts: List[Tuple["asyncio.Future", RequestContext]] = []
        primary_ctx = ctx.child(tags={"attempt": "primary"})
        primary = self._attempt(request, primary_ctx, parent_span)
        attempts.append((primary, primary_ctx))

        def remaining_s() -> Optional[float]:
            rem = ctx.remaining_ms()
            return None if rem is None else max(rem, 0.0) / 1000.0

        # Phase 1: give the primary its head start.
        hedge_delay = self._hedge_delay_s()
        if hedge_delay is not None:
            rem = remaining_s()
            head_start = (
                hedge_delay if rem is None else min(hedge_delay, rem)
            )
            done, _ = await asyncio.wait({primary}, timeout=head_start)
            if not done and not ctx.expired:
                hedge_ctx = ctx.child(tags={"attempt": "hedge"})
                attempts.append(
                    (self._attempt(request, hedge_ctx, parent_span), hedge_ctx)
                )
                self._stats.hedges_launched += 1

        # Phase 2: first success wins; losers are cancelled.
        pending = {task for task, _ in attempts if not task.done()}
        done = {task for task, _ in attempts if task.done()}
        errors: List[BaseException] = []
        while True:
            for task in done:
                exc = task.exception()
                if exc is None:
                    return self._finish(task, attempts)
                errors.append(exc)
            if not pending:
                raise errors[0]
            if ctx.expired:
                self._fail_deadline(ctx, attempts)
            done, pending = await asyncio.wait(
                pending,
                timeout=remaining_s(),
                return_when=asyncio.FIRST_COMPLETED,
            )
            if not done:  # the deadline ran out mid-wait
                self._fail_deadline(ctx, attempts)

    def _finish(self, winner, attempts):
        """Collect the winning answer; cancel and silence the rest."""
        for task, attempt_ctx in attempts:
            if task is winner:
                if attempt_ctx.tags.get("attempt") == "hedge":
                    self._stats.hedges_won += 1
                continue
            if not task.done():
                attempt_ctx.cancel("hedge lost")
                self._stats.cancelled += 1
            _silence(task)
        return winner.result()

    # -- writes: coalescing --------------------------------------------------

    async def _handle_ingest(
        self, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        # Per-request shape validation happens HERE, before coalescing,
        # so one malformed client 400s alone instead of failing the
        # strangers batched alongside it.
        events = self._core.ingest_events_from_payload(payload)
        if self._coalescer is None:  # pragma: no cover - guarded above
            raise ApiError(
                "not_found", "ingest is not enabled on this server"
            )
        return await self._coalescer.submit(events)
