"""Explicit per-request context: deadline, cancellation, identity.

Every request that enters an edge gets one :class:`RequestContext`
carrying the four things the whole serving path needs to agree on:

* a **deadline** — absolute, on the context's own monotonic clock, so
  "how much time is left" has one answer no matter which layer asks;
* a **cancellation token** — cooperative: the edge flips it, the
  blocking layers poll it at their natural check points (between shard
  probes, between batch items) and abandon work instead of finishing
  answers nobody will read;
* a **request id** — one string to correlate edge, middleware, and
  shard logs;
* **trace tags** — free-form key/value breadcrumbs (endpoint, edge,
  hedge role).

The context is *threaded*, not passed parameter-by-parameter: the edge
(or :meth:`~repro.api.middleware.Gateway.handle`) installs it in a
:mod:`contextvars` variable via :meth:`RequestContext.use`, and every
layer below reads it back with :func:`current_context`. Because the
async edge dispatches blocking work to executor threads, the worker
function itself enters ``use()`` — contextvars do not propagate across
``run_in_executor`` — so the ambient context is always set by whichever
thread actually runs the request.

**Hedging.** :meth:`RequestContext.child` derives a per-attempt context
that shares the parent's deadline and chains its token to the parent's:
cancelling the parent cancels every attempt, cancelling one child (the
hedge loser) stops only that attempt.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import threading
import time
from typing import Callable, Dict, Iterator, Mapping, Optional

from repro.api.contract import ApiError

__all__ = ["CancelToken", "RequestContext", "current_context"]


class CancelToken:
    """A cooperative cancellation flag, optionally chained to a parent.

    Thread-safe and monotonic: once cancelled, a token stays cancelled
    and keeps its first reason. A child token (built by :meth:`child`)
    also reports cancelled whenever any ancestor is — the mechanism
    that lets "cancel the request" fan out to every hedged attempt
    without callback registration.
    """

    def __init__(self, parent: Optional["CancelToken"] = None):
        self._event = threading.Event()
        self._reason: Optional[str] = None
        self._parent = parent

    def cancel(self, reason: str = "cancelled") -> None:
        """Flip the flag (idempotent; the first reason wins)."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        return self._parent is not None and self._parent.cancelled

    @property
    def reason(self) -> Optional[str]:
        """Why the token was cancelled (None while it is live)."""
        if self._event.is_set():
            return self._reason
        if self._parent is not None:
            return self._parent.reason
        return None

    def child(self) -> "CancelToken":
        """A dependent token: parent cancellation implies child."""
        return CancelToken(parent=self)


#: Process-wide request id source; ids only need to be unique, not dense.
_REQUEST_IDS = itertools.count(1)

_CURRENT: contextvars.ContextVar[Optional["RequestContext"]] = (
    contextvars.ContextVar("shoal_request_context", default=None)
)


def current_context() -> Optional["RequestContext"]:
    """The ambient :class:`RequestContext`, or None outside a request."""
    return _CURRENT.get()


class RequestContext:
    """Deadline + cancellation + identity for one request in flight.

    ``deadline`` is absolute on ``clock`` (monotonic seconds); arm one
    with :meth:`arm`, which only ever *tightens* — a layer can shorten
    the budget it inherited, never extend it. ``clock`` is injectable
    for deterministic tests.
    """

    def __init__(
        self,
        *,
        request_id: Optional[str] = None,
        deadline: Optional[float] = None,
        token: Optional[CancelToken] = None,
        tags: Optional[Mapping[str, str]] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[object] = None,
    ):
        self.request_id = (
            request_id if request_id is not None
            else f"req-{next(_REQUEST_IDS)}"
        )
        self.token = token if token is not None else CancelToken()
        self.tags: Dict[str, str] = dict(tags or {})
        #: Optional :class:`repro.obs.tracer.Tracer` — spans opened via
        #: :func:`repro.obs.tracer.traced` inherit this request's id
        #: and tag map. Duck-typed so the context stays a leaf module.
        self.tracer = tracer
        self._clock = clock
        self._deadline = deadline
        self._children = itertools.count(1)

    @classmethod
    def for_request(
        cls,
        *,
        timeout_ms: Optional[float] = None,
        tags: Optional[Mapping[str, str]] = None,
        clock: Callable[[], float] = time.monotonic,
        tracer: Optional[object] = None,
    ) -> "RequestContext":
        """The edge entry point: a fresh context, optionally armed."""
        ctx = cls(tags=tags, clock=clock, tracer=tracer)
        if timeout_ms is not None:
            ctx.arm(timeout_ms)
        return ctx

    # -- deadline ------------------------------------------------------------

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    @property
    def deadline(self) -> Optional[float]:
        """Absolute deadline in ``clock`` seconds (None = unbounded)."""
        return self._deadline

    def arm(self, timeout_ms: float) -> None:
        """Set the deadline to ``timeout_ms`` from now, only tightening."""
        if timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be > 0, got {timeout_ms}")
        candidate = self._clock() + timeout_ms / 1000.0
        if self._deadline is None or candidate < self._deadline:
            self._deadline = candidate

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds left before the deadline (None = unbounded).

        Can go negative once expired — callers use the sign, loggers
        the magnitude.
        """
        if self._deadline is None:
            return None
        return (self._deadline - self._clock()) * 1000.0

    @property
    def expired(self) -> bool:
        return self._deadline is not None and self._clock() >= self._deadline

    # -- cancellation --------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        return self.token.cancelled

    def cancel(self, reason: str = "cancelled") -> None:
        """Cancel this request (and, via token chaining, its children)."""
        self.token.cancel(reason)

    @property
    def done(self) -> bool:
        """True when further work on this request is pointless."""
        return self.expired or self.cancelled

    def raise_if_done(self) -> None:
        """The check point the blocking layers call between work units.

        Raises :class:`ApiError` with ``deadline_exceeded`` when the
        deadline has passed, ``cancelled`` when the token was flipped
        (hedge lost, client gone) — so abandoned work unwinds with the
        same stable codes everything else uses.
        """
        if self.expired:
            overrun = -(self.remaining_ms() or 0.0)
            raise ApiError(
                "deadline_exceeded",
                f"request {self.request_id} exceeded its deadline "
                f"({overrun:.1f}ms over)",
            )
        if self.cancelled:
            raise ApiError(
                "cancelled",
                f"request {self.request_id} was cancelled "
                f"({self.token.reason or 'no reason recorded'})",
            )

    # -- derivation & propagation --------------------------------------------

    def child(
        self, *, tags: Optional[Mapping[str, str]] = None
    ) -> "RequestContext":
        """A per-attempt context for hedging: same deadline and clock,
        a chained token, merged tags, a derived request id."""
        merged = dict(self.tags)
        merged.update(tags or {})
        return RequestContext(
            request_id=f"{self.request_id}.{next(self._children)}",
            deadline=self._deadline,
            token=self.token.child(),
            tags=merged,
            clock=self._clock,
            tracer=self.tracer,
        )

    @contextlib.contextmanager
    def use(self) -> Iterator["RequestContext"]:
        """Install this context as the ambient one for the enclosed
        block (re-entrant; restores whatever was ambient before)."""
        handle = _CURRENT.set(self)
        try:
            yield self
        finally:
            _CURRENT.reset(handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        remaining = self.remaining_ms()
        budget = "inf" if remaining is None else f"{remaining:.1f}ms"
        return (
            f"RequestContext({self.request_id}, remaining={budget}, "
            f"cancelled={self.cancelled}, tags={self.tags})"
        )
