"""The gateway API contract: typed requests, responses, and errors.

Every frontend — CLI, examples, benches, the traffic replayer, the
HTTP edge — talks to the serving stack through the dataclasses in this
module. The contract is versioned (``SCHEMA_VERSION``), validated on
both construction-from-wire and dispatch, and JSON-codable: each type
carries ``to_dict`` / ``from_dict`` such that
``from_dict(to_dict(x)) == x`` exactly (floats survive because JSON
round-trips Python's shortest ``repr``).

Errors are :class:`ApiError` values with *stable* machine-readable
codes (see ``ERROR_CODES``) and a deterministic HTTP status mapping,
so a client can branch on ``err.code`` regardless of which backend or
transport produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.serving import TopicHit

__all__ = [
    "SCHEMA_VERSION",
    "MAX_K",
    "MAX_QUERY_CHARS",
    "MAX_BATCH_QUERIES",
    "MAX_ANALYTICS_ROWS",
    "MAX_SQL_CHARS",
    "ANALYTICS_REPORTS",
    "ERROR_CODES",
    "ApiError",
    "SearchRequest",
    "SearchResponse",
    "RecommendRequest",
    "RecommendResponse",
    "BatchRequest",
    "BatchResponse",
    "AnalyticsRequest",
    "AnalyticsResponse",
    "MetricsResponse",
    "TraceResponse",
    "SPAN_STATUSES",
    "request_from_dict",
    "topic_hit_to_dict",
    "topic_hit_from_dict",
]

#: Version stamped into every wire payload. Bump on incompatible
#: schema changes; servers reject mismatched versions with
#: ``unsupported_version``.
SCHEMA_VERSION = 1

#: Validation bounds enforced by :meth:`validate` on every request.
MAX_K = 100
MAX_QUERY_CHARS = 1024
MAX_BATCH_QUERIES = 256

#: Analytics bounds: row cap per response and SQL text length.
MAX_ANALYTICS_ROWS = 1000
MAX_SQL_CHARS = 4096

#: Canned analytics reports the tier serves without raw SQL.
ANALYTICS_REPORTS = ("trending", "daily", "topics", "shed")

#: code -> HTTP status. The set of codes is part of the contract.
ERROR_CODES: Dict[str, int] = {
    "bad_request": 400,        # malformed payload / wrong field types
    "invalid_argument": 400,   # well-formed but out-of-bounds values
    "unsupported_version": 400,
    "not_found": 404,          # unknown endpoint or resource
    "rate_limited": 429,
    "deadline_exceeded": 504,
    "cancelled": 499,          # request abandoned (hedge lost, client gone)
    "backend_error": 500,      # the tier behind the gateway failed
    "unavailable": 502,        # transport could not reach the backend
    # Write-path (streaming ingest) backpressure — see repro.streaming:
    "ingest_overloaded": 429,  # bounded ingest queue is full (load shed)
    "ingest_unavailable": 503, # ingest pipe closed / not enabled
    # Analytics tier (HTAP read replica over the WAL) — repro.analytics:
    "analytics_bad_sql": 400,     # statement rejected by the allowlist
    "analytics_unavailable": 503, # no analytics store attached / closed
    "analytics_timeout": 504,     # query exceeded its time budget
}


class ApiError(Exception):
    """A contract-level failure with a stable, machine-readable code."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(
                f"unknown error code {code!r}; expected one of "
                f"{sorted(ERROR_CODES)}"
            )
        super().__init__(message)
        self.code = code
        self.message = message

    @property
    def http_status(self) -> int:
        return ERROR_CODES[self.code]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SCHEMA_VERSION,
            "error": {"code": self.code, "message": self.message},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ApiError":
        err = payload.get("error")
        if not isinstance(err, Mapping) or "code" not in err:
            raise ApiError(
                "bad_request", f"not an error payload: {payload!r}"
            )
        code = err["code"]
        if code not in ERROR_CODES:
            code = "backend_error"
        return cls(code, str(err.get("message", "")))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ApiError(code={self.code!r}, message={self.message!r})"


# -- field validators --------------------------------------------------------


def _check_version(version: Any) -> None:
    if not isinstance(version, int) or isinstance(version, bool):
        raise ApiError(
            "bad_request", f"'version' must be an integer, got {version!r}"
        )
    if version != SCHEMA_VERSION:
        raise ApiError(
            "unsupported_version",
            f"schema version {version} is not supported "
            f"(this server speaks version {SCHEMA_VERSION})",
        )


def _check_query(query: Any, *, name: str = "query") -> None:
    if not isinstance(query, str):
        raise ApiError(
            "bad_request", f"{name!r} must be a string, got {type(query).__name__}"
        )
    if not query.strip():
        raise ApiError("invalid_argument", f"{name!r} must not be empty")
    if len(query) > MAX_QUERY_CHARS:
        raise ApiError(
            "invalid_argument",
            f"{name!r} is {len(query)} characters; the limit is "
            f"{MAX_QUERY_CHARS}",
        )


def _check_k(k: Any) -> None:
    if not isinstance(k, int) or isinstance(k, bool):
        raise ApiError("bad_request", f"'k' must be an integer, got {k!r}")
    if not 1 <= k <= MAX_K:
        raise ApiError(
            "invalid_argument", f"'k' must be in [1, {MAX_K}], got {k}"
        )


def _check_timeout(timeout_ms: Any) -> None:
    if timeout_ms is None:
        return
    if isinstance(timeout_ms, bool) or not isinstance(timeout_ms, (int, float)):
        raise ApiError(
            "bad_request",
            f"'timeout_ms' must be a number or null, got {timeout_ms!r}",
        )
    if timeout_ms <= 0:
        raise ApiError(
            "invalid_argument", f"'timeout_ms' must be > 0, got {timeout_ms}"
        )


def _take(
    payload: Mapping[str, Any], allowed: Sequence[str], kind: str
) -> Dict[str, Any]:
    """The payload's fields, rejecting non-mappings and unknown keys."""
    if not isinstance(payload, Mapping):
        raise ApiError(
            "bad_request",
            f"{kind} payload must be a JSON object, got "
            f"{type(payload).__name__}",
        )
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ApiError(
            "bad_request", f"unknown {kind} field(s): {', '.join(unknown)}"
        )
    return dict(payload)


# -- topic hits on the wire --------------------------------------------------


def topic_hit_to_dict(hit: TopicHit) -> Dict[str, Any]:
    return {
        "topic_id": hit.topic_id,
        "score": hit.score,
        "label": hit.label,
        "n_entities": hit.n_entities,
        "n_categories": hit.n_categories,
    }


def topic_hit_from_dict(payload: Mapping[str, Any]) -> TopicHit:
    fields = _take(
        payload,
        ("topic_id", "score", "label", "n_entities", "n_categories"),
        "topic hit",
    )
    try:
        return TopicHit(
            topic_id=int(fields["topic_id"]),
            score=float(fields["score"]),
            label=str(fields["label"]),
            n_entities=int(fields["n_entities"]),
            n_categories=int(fields["n_categories"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ApiError("bad_request", f"malformed topic hit: {exc}")


# -- requests ----------------------------------------------------------------


@dataclass(frozen=True)
class SearchRequest:
    """Scenario A (Query → Topic) over the gateway."""

    query: str
    k: int = 5
    timeout_ms: Optional[float] = None
    version: int = SCHEMA_VERSION

    def validate(self) -> "SearchRequest":
        _check_version(self.version)
        _check_query(self.query)
        _check_k(self.k)
        _check_timeout(self.timeout_ms)
        return self

    def cache_key(self) -> Tuple:
        """Result-cache identity: everything that can change the answer."""
        return ("search", self.query, self.k)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "version": self.version, "query": self.query, "k": self.k,
        }
        if self.timeout_ms is not None:
            out["timeout_ms"] = self.timeout_ms
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SearchRequest":
        fields = _take(
            payload, ("version", "query", "k", "timeout_ms"), "search"
        )
        if "query" not in fields:
            raise ApiError("bad_request", "missing required field 'query'")
        return cls(
            query=fields["query"],
            k=fields.get("k", 5),
            timeout_ms=fields.get("timeout_ms"),
            version=fields.get("version", SCHEMA_VERSION),
        ).validate()


@dataclass(frozen=True)
class RecommendRequest:
    """Topic-matched entity recommendation (the Fig. 4b slate)."""

    query: str
    k: int = 10
    timeout_ms: Optional[float] = None
    version: int = SCHEMA_VERSION

    def validate(self) -> "RecommendRequest":
        _check_version(self.version)
        _check_query(self.query)
        _check_k(self.k)
        _check_timeout(self.timeout_ms)
        return self

    def cache_key(self) -> Tuple:
        return ("recommend", self.query, self.k)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "version": self.version, "query": self.query, "k": self.k,
        }
        if self.timeout_ms is not None:
            out["timeout_ms"] = self.timeout_ms
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RecommendRequest":
        fields = _take(
            payload, ("version", "query", "k", "timeout_ms"), "recommend"
        )
        if "query" not in fields:
            raise ApiError("bad_request", "missing required field 'query'")
        return cls(
            query=fields["query"],
            k=fields.get("k", 10),
            timeout_ms=fields.get("timeout_ms"),
            version=fields.get("version", SCHEMA_VERSION),
        ).validate()


@dataclass(frozen=True)
class BatchRequest:
    """A panel of queries answered in one round trip.

    ``kind`` selects the per-query operation: ``"search"`` returns one
    topic-hit list per query, ``"recommend"`` one entity slate per
    query. ``k`` applies to every query in the batch.
    """

    queries: Tuple[str, ...]
    k: int = 5
    kind: str = "search"
    timeout_ms: Optional[float] = None
    version: int = SCHEMA_VERSION

    def __post_init__(self):
        # Tolerate list input from direct construction; the wire codec
        # and dataclass equality both want tuples.
        if not isinstance(self.queries, tuple):
            object.__setattr__(self, "queries", tuple(self.queries))

    def validate(self) -> "BatchRequest":
        _check_version(self.version)
        if self.kind not in ("search", "recommend"):
            raise ApiError(
                "invalid_argument",
                f"batch 'kind' must be 'search' or 'recommend', "
                f"got {self.kind!r}",
            )
        if not self.queries:
            raise ApiError("invalid_argument", "batch has no queries")
        if len(self.queries) > MAX_BATCH_QUERIES:
            raise ApiError(
                "invalid_argument",
                f"batch of {len(self.queries)} queries exceeds the limit "
                f"of {MAX_BATCH_QUERIES}",
            )
        for i, q in enumerate(self.queries):
            _check_query(q, name=f"queries[{i}]")
        _check_k(self.k)
        _check_timeout(self.timeout_ms)
        return self

    def cache_key(self) -> Tuple:
        return ("batch", self.kind, self.queries, self.k)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "version": self.version,
            "kind": self.kind,
            "queries": list(self.queries),
            "k": self.k,
        }
        if self.timeout_ms is not None:
            out["timeout_ms"] = self.timeout_ms
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatchRequest":
        fields = _take(
            payload,
            ("version", "kind", "queries", "k", "timeout_ms"),
            "batch",
        )
        queries = fields.get("queries")
        if queries is None:
            raise ApiError("bad_request", "missing required field 'queries'")
        if isinstance(queries, str) or not isinstance(queries, Sequence):
            raise ApiError(
                "bad_request", "'queries' must be an array of strings"
            )
        return cls(
            queries=tuple(queries),
            k=fields.get("k", 5),
            kind=fields.get("kind", "search"),
            timeout_ms=fields.get("timeout_ms"),
            version=fields.get("version", SCHEMA_VERSION),
        ).validate()


# -- responses ---------------------------------------------------------------


@dataclass(frozen=True)
class SearchResponse:
    """Ranked topic hits for one query."""

    hits: Tuple[TopicHit, ...]
    version: int = SCHEMA_VERSION

    def __post_init__(self):
        if not isinstance(self.hits, tuple):
            object.__setattr__(self, "hits", tuple(self.hits))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "hits": [topic_hit_to_dict(h) for h in self.hits],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SearchResponse":
        fields = _take(payload, ("version", "hits"), "search response")
        hits = fields.get("hits")
        if not isinstance(hits, Sequence) or isinstance(hits, str):
            raise ApiError("bad_request", "'hits' must be an array")
        version = fields.get("version", SCHEMA_VERSION)
        _check_version(version)
        return cls(
            hits=tuple(topic_hit_from_dict(h) for h in hits),
            version=version,
        )


@dataclass(frozen=True)
class RecommendResponse:
    """An entity slate for one query."""

    entity_ids: Tuple[int, ...]
    version: int = SCHEMA_VERSION

    def __post_init__(self):
        if not isinstance(self.entity_ids, tuple):
            object.__setattr__(self, "entity_ids", tuple(self.entity_ids))

    def to_dict(self) -> Dict[str, Any]:
        return {"version": self.version, "entity_ids": list(self.entity_ids)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RecommendResponse":
        fields = _take(
            payload, ("version", "entity_ids"), "recommend response"
        )
        ids = fields.get("entity_ids")
        if not isinstance(ids, Sequence) or isinstance(ids, str):
            raise ApiError("bad_request", "'entity_ids' must be an array")
        version = fields.get("version", SCHEMA_VERSION)
        _check_version(version)
        try:
            entity_ids = tuple(int(e) for e in ids)
        except (TypeError, ValueError) as exc:
            raise ApiError("bad_request", f"malformed entity id: {exc}")
        return cls(entity_ids=entity_ids, version=version)


@dataclass(frozen=True)
class BatchResponse:
    """Per-query results of a :class:`BatchRequest`, in request order.

    For ``kind == "search"`` each element of ``results`` is a tuple of
    :class:`TopicHit`; for ``kind == "recommend"`` a tuple of entity
    ids.
    """

    kind: str
    results: Tuple[Tuple, ...] = field(default_factory=tuple)
    version: int = SCHEMA_VERSION

    def __post_init__(self):
        object.__setattr__(
            self, "results", tuple(tuple(r) for r in self.results)
        )

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == "search":
            results = [
                [topic_hit_to_dict(h) for h in hits] for hits in self.results
            ]
        else:
            results = [list(ids) for ids in self.results]
        return {"version": self.version, "kind": self.kind, "results": results}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatchResponse":
        fields = _take(
            payload, ("version", "kind", "results"), "batch response"
        )
        kind = fields.get("kind")
        if kind not in ("search", "recommend"):
            raise ApiError(
                "bad_request",
                f"batch response 'kind' must be 'search' or 'recommend', "
                f"got {kind!r}",
            )
        results = fields.get("results")
        if not isinstance(results, Sequence) or isinstance(results, str):
            raise ApiError("bad_request", "'results' must be an array")
        version = fields.get("version", SCHEMA_VERSION)
        _check_version(version)
        rows: list = []
        for row in results:
            if not isinstance(row, Sequence) or isinstance(row, str):
                raise ApiError(
                    "bad_request", "each batch result must be an array"
                )
            if kind == "search":
                rows.append(tuple(topic_hit_from_dict(h) for h in row))
            else:
                try:
                    rows.append(tuple(int(e) for e in row))
                except (TypeError, ValueError) as exc:
                    raise ApiError(
                        "bad_request", f"malformed entity id: {exc}"
                    )
        return cls(kind=kind, results=tuple(rows), version=version)


# -- analytics ---------------------------------------------------------------


#: JSON-scalar cell types an analytics row may carry on the wire.
_CELL_TYPES = (int, float, str, bool, type(None))


@dataclass(frozen=True)
class AnalyticsRequest:
    """One analytics query: raw read-only SQL *or* a canned report.

    Exactly one of ``sql`` / ``report`` must be set. ``sql`` is run
    through the tier's read-only allowlist (a single SELECT/WITH
    statement); ``report`` names one of :data:`ANALYTICS_REPORTS`.
    With ``sample=True`` the SQL sees the store's reservoir sample of
    the event stream instead of the full ``events`` table — the
    Logservatory pattern for iterative query development.
    """

    sql: Optional[str] = None
    report: Optional[str] = None
    limit: int = 100
    sample: bool = False
    timeout_ms: Optional[float] = None
    version: int = SCHEMA_VERSION

    def validate(self) -> "AnalyticsRequest":
        _check_version(self.version)
        if self.sql is not None and not isinstance(self.sql, str):
            raise ApiError(
                "bad_request",
                f"'sql' must be a string, got {type(self.sql).__name__}",
            )
        if self.report is not None and not isinstance(self.report, str):
            raise ApiError(
                "bad_request",
                f"'report' must be a string, got {type(self.report).__name__}",
            )
        if (self.sql is None) == (self.report is None):
            raise ApiError(
                "invalid_argument",
                "exactly one of 'sql' or 'report' must be set",
            )
        if self.sql is not None:
            if not self.sql.strip():
                raise ApiError("invalid_argument", "'sql' must not be empty")
            if len(self.sql) > MAX_SQL_CHARS:
                raise ApiError(
                    "invalid_argument",
                    f"'sql' is {len(self.sql)} characters; the limit is "
                    f"{MAX_SQL_CHARS}",
                )
        if self.report is not None and self.report not in ANALYTICS_REPORTS:
            raise ApiError(
                "invalid_argument",
                f"unknown report {self.report!r}; expected one of "
                f"{', '.join(ANALYTICS_REPORTS)}",
            )
        if not isinstance(self.limit, int) or isinstance(self.limit, bool):
            raise ApiError(
                "bad_request", f"'limit' must be an integer, got {self.limit!r}"
            )
        if not 1 <= self.limit <= MAX_ANALYTICS_ROWS:
            raise ApiError(
                "invalid_argument",
                f"'limit' must be in [1, {MAX_ANALYTICS_ROWS}], got "
                f"{self.limit}",
            )
        if not isinstance(self.sample, bool):
            raise ApiError(
                "bad_request",
                f"'sample' must be a boolean, got {self.sample!r}",
            )
        _check_timeout(self.timeout_ms)
        return self

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"version": self.version, "limit": self.limit}
        if self.sql is not None:
            out["sql"] = self.sql
        if self.report is not None:
            out["report"] = self.report
        if self.sample:
            out["sample"] = True
        if self.timeout_ms is not None:
            out["timeout_ms"] = self.timeout_ms
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnalyticsRequest":
        fields = _take(
            payload,
            ("version", "sql", "report", "limit", "sample", "timeout_ms"),
            "analytics",
        )
        return cls(
            sql=fields.get("sql"),
            report=fields.get("report"),
            limit=fields.get("limit", 100),
            sample=fields.get("sample", False),
            timeout_ms=fields.get("timeout_ms"),
            version=fields.get("version", SCHEMA_VERSION),
        ).validate()


@dataclass(frozen=True)
class AnalyticsResponse:
    """A relational result: named columns and JSON-scalar rows.

    ``truncated`` marks a result cut at the request's row limit;
    ``sampled`` marks an answer computed over the reservoir sample
    rather than the full event stream.
    """

    columns: Tuple[str, ...]
    rows: Tuple[Tuple, ...] = field(default_factory=tuple)
    truncated: bool = False
    sampled: bool = False
    elapsed_ms: float = 0.0
    version: int = SCHEMA_VERSION

    def __post_init__(self):
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(
            self, "rows", tuple(tuple(r) for r in self.rows)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
            "truncated": self.truncated,
            "sampled": self.sampled,
            "elapsed_ms": self.elapsed_ms,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnalyticsResponse":
        fields = _take(
            payload,
            ("version", "columns", "rows", "truncated", "sampled",
             "elapsed_ms"),
            "analytics response",
        )
        columns = fields.get("columns")
        if not isinstance(columns, Sequence) or isinstance(columns, str):
            raise ApiError("bad_request", "'columns' must be an array")
        if not all(isinstance(c, str) for c in columns):
            raise ApiError("bad_request", "column names must be strings")
        rows = fields.get("rows", [])
        if not isinstance(rows, Sequence) or isinstance(rows, str):
            raise ApiError("bad_request", "'rows' must be an array")
        parsed_rows = []
        for row in rows:
            if not isinstance(row, Sequence) or isinstance(row, str):
                raise ApiError(
                    "bad_request", "each analytics row must be an array"
                )
            for cell in row:
                if not isinstance(cell, _CELL_TYPES):
                    raise ApiError(
                        "bad_request",
                        f"analytics cells must be JSON scalars, got "
                        f"{type(cell).__name__}",
                    )
            parsed_rows.append(tuple(row))
        truncated = fields.get("truncated", False)
        sampled = fields.get("sampled", False)
        if not isinstance(truncated, bool) or not isinstance(sampled, bool):
            raise ApiError(
                "bad_request", "'truncated'/'sampled' must be booleans"
            )
        elapsed_ms = fields.get("elapsed_ms", 0.0)
        if isinstance(elapsed_ms, bool) or not isinstance(
            elapsed_ms, (int, float)
        ):
            raise ApiError("bad_request", "'elapsed_ms' must be a number")
        version = fields.get("version", SCHEMA_VERSION)
        _check_version(version)
        return cls(
            columns=tuple(columns),
            rows=tuple(parsed_rows),
            truncated=truncated,
            sampled=sampled,
            elapsed_ms=elapsed_ms,
            version=version,
        )


# -- tracing -----------------------------------------------------------------


#: Terminal span states a sampled trace may carry on the wire.
SPAN_STATUSES = ("ok", "error", "cancelled")


def _span_from_dict(payload: Mapping[str, Any]) -> Dict[str, Any]:
    fields = _take(
        payload,
        ("span_id", "parent_id", "name", "tags", "start_ms",
         "duration_ms", "status", "detail"),
        "span",
    )
    for key in ("span_id", "name", "status"):
        if not isinstance(fields.get(key), str):
            raise ApiError(
                "bad_request", f"span {key!r} must be a string"
            )
    if fields["status"] not in SPAN_STATUSES:
        raise ApiError(
            "bad_request",
            f"span status must be one of {', '.join(SPAN_STATUSES)}, "
            f"got {fields['status']!r}",
        )
    parent_id = fields.get("parent_id")
    if parent_id is not None and not isinstance(parent_id, str):
        raise ApiError("bad_request", "'parent_id' must be a string or null")
    detail = fields.get("detail")
    if detail is not None and not isinstance(detail, str):
        raise ApiError("bad_request", "'detail' must be a string or null")
    tags = fields.get("tags", {})
    if not isinstance(tags, Mapping) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in tags.items()
    ):
        raise ApiError(
            "bad_request", "span 'tags' must map strings to strings"
        )
    for key in ("start_ms", "duration_ms"):
        value = fields.get(key, 0.0)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ApiError("bad_request", f"span {key!r} must be a number")
    return {
        "span_id": fields["span_id"],
        "parent_id": parent_id,
        "name": fields["name"],
        "tags": dict(tags),
        "start_ms": fields.get("start_ms", 0.0),
        "duration_ms": fields.get("duration_ms", 0.0),
        "status": fields["status"],
        "detail": detail,
    }


@dataclass(frozen=True)
class TraceResponse:
    """One sampled span tree, as ``GET /v1/trace`` returns it.

    ``spans`` is in ``(start_ms, span_id)`` order; exactly one span has
    ``parent_id == None`` (the edge root), every other ``parent_id``
    names an earlier span, and ``start_ms`` values are relative to the
    root's start. ``sampled`` records why the tail-based sampler kept
    this trace (``"error"``, ``"deadline"``, or ``"slow"``); ``ts`` is
    the wall-clock finalize time (epoch seconds).
    """

    request_id: str
    endpoint: str
    duration_ms: float
    sampled: str
    spans: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)
    ts: float = 0.0
    version: int = SCHEMA_VERSION

    def __post_init__(self):
        object.__setattr__(self, "spans", tuple(self.spans))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "request_id": self.request_id,
            "endpoint": self.endpoint,
            "duration_ms": self.duration_ms,
            "sampled": self.sampled,
            "ts": self.ts,
            "spans": [dict(s) for s in self.spans],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceResponse":
        fields = _take(
            payload,
            ("version", "request_id", "endpoint", "duration_ms",
             "sampled", "ts", "spans"),
            "trace response",
        )
        for key in ("request_id", "endpoint", "sampled"):
            if not isinstance(fields.get(key), str):
                raise ApiError(
                    "bad_request", f"trace {key!r} must be a string"
                )
        for key in ("duration_ms", "ts"):
            value = fields.get(key, 0.0)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ApiError(
                    "bad_request", f"trace {key!r} must be a number"
                )
        spans = fields.get("spans")
        if not isinstance(spans, Sequence) or isinstance(spans, str):
            raise ApiError("bad_request", "'spans' must be an array")
        if not spans:
            raise ApiError("bad_request", "a trace must carry spans")
        version = fields.get("version", SCHEMA_VERSION)
        _check_version(version)
        return cls(
            request_id=fields["request_id"],
            endpoint=fields["endpoint"],
            duration_ms=fields["duration_ms"],
            sampled=fields["sampled"],
            spans=tuple(_span_from_dict(s) for s in spans),
            ts=fields.get("ts", 0.0),
            version=version,
        )


def _check_section(value: Any, name: str) -> Optional[Dict[str, Any]]:
    """A metrics section: a JSON object or absent."""
    if value is None:
        return None
    if not isinstance(value, Mapping):
        raise ApiError(
            "bad_request",
            f"metrics section {name!r} must be a JSON object, got "
            f"{type(value).__name__}",
        )
    return dict(value)


@dataclass(frozen=True)
class MetricsResponse:
    """The versioned scrape point: one JSON object per subsystem.

    ``backend`` is always present (the read tier's stats); ``ingest``,
    ``updater``, ``analytics``, ``edge``, and ``replication`` appear
    when the corresponding subsystem is attached to the server
    (``edge`` is the async edge's hedging/cancellation/coalescing
    counters; ``replication`` is the shipper's publish counters on a
    primary or the follower's lag — segments behind, seqs behind,
    epoch — on a replica).
    """

    backend: Dict[str, Any] = field(default_factory=dict)
    ingest: Optional[Dict[str, Any]] = None
    updater: Optional[Dict[str, Any]] = None
    analytics: Optional[Dict[str, Any]] = None
    edge: Optional[Dict[str, Any]] = None
    replication: Optional[Dict[str, Any]] = None
    tracer: Optional[Dict[str, Any]] = None
    version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "version": self.version,
            "backend": dict(self.backend),
        }
        if self.ingest is not None:
            out["ingest"] = dict(self.ingest)
        if self.updater is not None:
            out["updater"] = dict(self.updater)
        if self.analytics is not None:
            out["analytics"] = dict(self.analytics)
        if self.edge is not None:
            out["edge"] = dict(self.edge)
        if self.replication is not None:
            out["replication"] = dict(self.replication)
        if self.tracer is not None:
            out["tracer"] = dict(self.tracer)
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricsResponse":
        fields = _take(
            payload,
            (
                "version",
                "backend",
                "ingest",
                "updater",
                "analytics",
                "edge",
                "replication",
                "tracer",
            ),
            "metrics response",
        )
        backend = fields.get("backend")
        if not isinstance(backend, Mapping):
            raise ApiError(
                "bad_request", "metrics 'backend' must be a JSON object"
            )
        version = fields.get("version", SCHEMA_VERSION)
        _check_version(version)
        return cls(
            backend=dict(backend),
            ingest=_check_section(fields.get("ingest"), "ingest"),
            updater=_check_section(fields.get("updater"), "updater"),
            analytics=_check_section(fields.get("analytics"), "analytics"),
            edge=_check_section(fields.get("edge"), "edge"),
            replication=_check_section(
                fields.get("replication"), "replication"
            ),
            tracer=_check_section(fields.get("tracer"), "tracer"),
            version=version,
        )


#: Wire-endpoint name -> request codec, shared by the HTTP server and
#: the in-process client transport.
REQUEST_TYPES = {
    "search": SearchRequest,
    "recommend": RecommendRequest,
    "batch": BatchRequest,
    "analytics": AnalyticsRequest,
}

RESPONSE_TYPES = {
    "search": SearchResponse,
    "recommend": RecommendResponse,
    "batch": BatchResponse,
    "analytics": AnalyticsResponse,
    # GET-only: served from the tracer ring, never POSTed, so it has
    # no REQUEST_TYPES row.
    "trace": TraceResponse,
}


def request_from_dict(endpoint: str, payload: Mapping[str, Any]):
    """Decode + validate a wire payload for ``endpoint``.

    Raises :class:`ApiError` with ``not_found`` for unknown endpoints,
    ``bad_request`` / ``invalid_argument`` / ``unsupported_version``
    for payload problems.
    """
    try:
        cls = REQUEST_TYPES[endpoint]
    except KeyError:
        raise ApiError("not_found", f"unknown endpoint {endpoint!r}")
    return cls.from_dict(payload)
