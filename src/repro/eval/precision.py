"""Expert sampling precision evaluation (paper Sec. 3).

The paper's protocol: "experts pick 1000 topics and randomly select 100
items placed under each topic to evaluate the precision", yielding
"more than 98 %". We replay the exact protocol with the synthetic
ground truth standing in for the experts:

* sample up to ``n_topics`` topics (the paper samples 1000; synthetic
  taxonomies have fewer — we sample all if fewer exist);
* per topic, sample up to ``items_per_topic`` member entities;
* a sampled entity is judged CORRECT if its ground-truth scenario
  matches the topic's *dominant* scenario — exactly what a human
  expert does when asked "does this item belong to this topic?";
* optionally a noisy-judge model flips a small fraction of judgements,
  modelling expert disagreement.

Precision = correct judgements / total judgements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional


from repro._util import RngLike, check_positive, check_probability, ensure_rng
from repro.core.taxonomy import Taxonomy, Topic

__all__ = ["PrecisionConfig", "ExpertJudge", "PrecisionReport", "SamplingPrecisionEvaluator"]


@dataclass(frozen=True)
class PrecisionConfig:
    """Sampling protocol parameters (paper: 1000 topics × 100 items)."""

    n_topics: int = 1000
    items_per_topic: int = 100
    judge_error_rate: float = 0.0
    use_root_topics: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_topics", self.n_topics)
        check_positive("items_per_topic", self.items_per_topic)
        check_probability("judge_error_rate", self.judge_error_rate)


class ExpertJudge:
    """Judges whether an entity belongs to a topic, from ground truth.

    The judge decides per the *dominant ground-truth scenario* of the
    topic — the interpretable concept a human expert would infer from
    browsing the topic — and errs at ``error_rate`` (flipping the
    verdict) to model expert noise.
    """

    def __init__(
        self,
        entity_scenarios: Mapping[int, int],
        error_rate: float = 0.0,
        seed: RngLike = None,
    ):
        check_probability("error_rate", error_rate)
        self._scenarios = dict(entity_scenarios)
        self._error_rate = error_rate
        self._rng = ensure_rng(seed)

    def dominant_scenario(self, topic: Topic) -> Optional[int]:
        """Majority ground-truth scenario among the topic's entities."""
        counts: Dict[int, int] = {}
        for e in topic.entity_ids:
            s = self._scenarios.get(e)
            if s is not None:
                counts[s] = counts.get(s, 0) + 1
        if not counts:
            return None
        return max(sorted(counts), key=lambda s: counts[s])

    def judge(self, entity_id: int, topic: Topic, concept: Optional[int] = None) -> bool:
        """True iff the entity belongs to the topic's concept.

        ``concept`` (the dominant scenario) may be precomputed by the
        caller to avoid recomputation per sampled item.
        """
        if concept is None:
            concept = self.dominant_scenario(topic)
        truth = self._scenarios.get(entity_id)
        verdict = truth is not None and concept is not None and truth == concept
        if self._error_rate > 0 and self._rng.random() < self._error_rate:
            return not verdict
        return verdict


@dataclass
class PrecisionReport:
    """Outcome of one sampling evaluation."""

    n_topics_sampled: int
    n_items_judged: int
    n_correct: int
    per_topic_precision: Dict[int, float] = field(default_factory=dict)

    @property
    def precision(self) -> float:
        if self.n_items_judged == 0:
            return 0.0
        return self.n_correct / self.n_items_judged

    def worst_topics(self, k: int = 5) -> List[tuple]:
        """(topic_id, precision) of the k worst-scoring sampled topics."""
        ordered = sorted(self.per_topic_precision.items(), key=lambda tp: (tp[1], tp[0]))
        return ordered[:k]

    def summary(self) -> str:
        return (
            f"precision={self.precision:.4f} "
            f"({self.n_correct}/{self.n_items_judged} items over "
            f"{self.n_topics_sampled} topics)"
        )


class SamplingPrecisionEvaluator:
    """Runs the paper's sampling protocol over a taxonomy."""

    def __init__(self, config: PrecisionConfig = PrecisionConfig()):
        self._config = config

    @property
    def config(self) -> PrecisionConfig:
        return self._config

    def evaluate(
        self,
        taxonomy: Taxonomy,
        entity_scenarios: Mapping[int, int],
    ) -> PrecisionReport:
        """Sample topics and items, judge each, aggregate precision."""
        cfg = self._config
        rng = ensure_rng(cfg.seed)
        judge = ExpertJudge(
            entity_scenarios, cfg.judge_error_rate, seed=ensure_rng(cfg.seed + 1)
        )

        pool = (
            taxonomy.root_topics() if cfg.use_root_topics else taxonomy.topics()
        )
        pool = [t for t in pool if t.size > 0]
        if not pool:
            return PrecisionReport(0, 0, 0)
        n_topics = min(cfg.n_topics, len(pool))
        chosen_idx = rng.choice(len(pool), size=n_topics, replace=False)
        chosen = [pool[int(i)] for i in chosen_idx]

        total = 0
        correct = 0
        per_topic: Dict[int, float] = {}
        for topic in chosen:
            concept = judge.dominant_scenario(topic)
            members = topic.entity_ids
            k = min(cfg.items_per_topic, len(members))
            sampled = rng.choice(len(members), size=k, replace=False)
            topic_correct = 0
            for i in sampled:
                if judge.judge(members[int(i)], topic, concept):
                    topic_correct += 1
            total += k
            correct += topic_correct
            per_topic[topic.topic_id] = topic_correct / k if k else 0.0
        return PrecisionReport(
            n_topics_sampled=n_topics,
            n_items_judged=total,
            n_correct=correct,
            per_topic_precision=per_topic,
        )
