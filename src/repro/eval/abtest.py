"""Simulated online A/B test (paper Sec. 3: +5 % CTR over 3M users).

The paper's experiment: the control group sees recommendations from
*ontology-category matching* (Fig. 4a), the experiment group from
*SHOAL topic matching* (Fig. 4b); the treatment lifted CTR by ~5 %.

We reproduce the mechanism, not the traffic: simulated users (the same
objects that generated the query log) issue searches; a recommender
produces ``slate_size`` entities; the click model gives each shown
entity a click probability depending on how well it matches the user's
*current intent*:

* ``p_click_scenario`` — the entity's ground-truth scenario equals the
  user's active scenario intent (the strongest match);
* ``p_click_category`` — not scenario-matched, but the entity's
  category belongs to the active scenario (categorically plausible);
* ``p_click_random`` — unrelated inventory (baseline curiosity).

The uplift arises — as in the paper — because scenario intents span
multiple categories: a category recommender can only cover one
category per matched query, while the topic recommender surfaces the
whole scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List


from repro._util import check_positive, check_probability, ensure_rng
from repro.data.marketplace import Marketplace

__all__ = ["ABTestConfig", "ClickModel", "ABTestReport", "ABTestSimulator"]

#: A recommender maps (user_id, query_text) -> list of entity ids.
Recommender = Callable[[int, str], List[int]]


@dataclass(frozen=True)
class ABTestConfig:
    """Experiment parameters."""

    n_impressions: int = 20_000
    slate_size: int = 8
    p_click_scenario: float = 0.12
    p_click_category: float = 0.06
    p_click_random: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_impressions", self.n_impressions)
        check_positive("slate_size", self.slate_size)
        for name in ("p_click_scenario", "p_click_category", "p_click_random"):
            check_probability(name, getattr(self, name))


class ClickModel:
    """Scenario-conditioned click probabilities (see module docstring)."""

    def __init__(self, marketplace: Marketplace, config: ABTestConfig):
        self._config = config
        self._entity_scenario = {
            e.entity_id: e.scenario_id for e in marketplace.catalog.entities
        }
        self._entity_category = {
            e.entity_id: e.category_id for e in marketplace.catalog.entities
        }
        self._scenario_categories = {
            s.scenario_id: set(s.category_ids) for s in marketplace.scenarios
        }

    def click_probability(self, entity_id: int, intent_scenario: int) -> float:
        """P(click | shown entity, user's active scenario intent)."""
        cfg = self._config
        if self._entity_scenario.get(entity_id) == intent_scenario:
            return cfg.p_click_scenario
        category = self._entity_category.get(entity_id)
        if category is not None and category in self._scenario_categories.get(
            intent_scenario, ()
        ):
            return cfg.p_click_category
        return cfg.p_click_random


@dataclass
class ABTestReport:
    """CTR outcome of one arm-pair run."""

    control_impressions: int
    control_clicks: int
    treatment_impressions: int
    treatment_clicks: int

    @property
    def control_ctr(self) -> float:
        if self.control_impressions == 0:
            return 0.0
        return self.control_clicks / self.control_impressions

    @property
    def treatment_ctr(self) -> float:
        if self.treatment_impressions == 0:
            return 0.0
        return self.treatment_clicks / self.treatment_impressions

    @property
    def relative_uplift(self) -> float:
        """(treatment − control) / control; the paper reports ~+5 %."""
        if self.control_ctr == 0.0:
            return 0.0
        return (self.treatment_ctr - self.control_ctr) / self.control_ctr

    def summary(self) -> str:
        return (
            f"control CTR={self.control_ctr:.4f}, "
            f"treatment CTR={self.treatment_ctr:.4f}, "
            f"uplift={self.relative_uplift * 100:+.1f}%"
        )


class ABTestSimulator:
    """Runs control vs. treatment recommenders over simulated traffic.

    Both arms see *the same* impression stream (user, intent, query):
  a paired design that removes traffic variance from the comparison,
    like the bucketised split of a production A/B system.
    """

    def __init__(self, marketplace: Marketplace, config: ABTestConfig = ABTestConfig()):
        self._marketplace = marketplace
        self._config = config
        self._click_model = ClickModel(marketplace, config)
        self._scenario_queries = self._index_scenario_queries()

    def _index_scenario_queries(self) -> Dict[int, List[str]]:
        """Scenario id → query texts expressing that scenario intent."""
        out: Dict[int, List[str]] = {}
        for q in self._marketplace.query_log.queries:
            if q.intent_kind == "scenario":
                out.setdefault(q.intent_id, []).append(q.text)
        return out

    @property
    def click_model(self) -> ClickModel:
        return self._click_model

    def run(
        self,
        control: Recommender,
        treatment: Recommender,
    ) -> ABTestReport:
        """Simulate ``n_impressions`` paired impressions."""
        cfg = self._config
        rng = ensure_rng(cfg.seed)
        users = self._marketplace.users
        report = ABTestReport(0, 0, 0, 0)

        for _ in range(cfg.n_impressions):
            user = users[int(rng.integers(len(users)))]
            intent = int(
                user.scenario_ids[int(rng.integers(len(user.scenario_ids)))]
            )
            queries = self._scenario_queries.get(intent)
            if not queries:
                continue
            query = queries[int(rng.integers(len(queries)))]

            for arm, recommender in (("control", control), ("treatment", treatment)):
                slate = recommender(user.user_id, query)[: cfg.slate_size]
                clicks = 0
                for entity_id in slate:
                    p = self._click_model.click_probability(entity_id, intent)
                    if rng.random() < p:
                        clicks += 1
                if arm == "control":
                    report.control_impressions += len(slate)
                    report.control_clicks += clicks
                else:
                    report.treatment_impressions += len(slate)
                    report.treatment_clicks += clicks
        return report
