"""Clustering and retrieval metrics.

Standard external clustering metrics used to score SHOAL's topics
against the ground-truth scenarios — purity, normalised mutual
information (NMI), adjusted Rand index (ARI), pairwise
precision/recall — plus ranking metrics (DCG/NDCG, precision@k) for
scoring topic retrieval (demo scenario A). All clustering metrics take
two label mappings over the same item set; implementations are
self-contained numpy.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "contingency_table",
    "cluster_purity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "pair_precision_recall",
    "dcg_at_k",
    "ndcg_at_k",
    "precision_at_k",
]


def _to_arrays(
    predicted: Mapping[int, int], truth: Mapping[int, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Align two label mappings on their common keys."""
    keys = sorted(set(predicted) & set(truth))
    if not keys:
        raise ValueError("predicted and truth share no items")
    pred = np.array([predicted[k] for k in keys])
    true = np.array([truth[k] for k in keys])
    return pred, true


def contingency_table(pred: np.ndarray, true: np.ndarray) -> np.ndarray:
    """Counts matrix: rows = predicted clusters, cols = true classes."""
    if len(pred) != len(true):
        raise ValueError("label arrays must align")
    p_ids = {c: i for i, c in enumerate(np.unique(pred))}
    t_ids = {c: i for i, c in enumerate(np.unique(true))}
    table = np.zeros((len(p_ids), len(t_ids)), dtype=np.int64)
    for p, t in zip(pred, true):
        table[p_ids[p], t_ids[t]] += 1
    return table


def cluster_purity(
    predicted: Mapping[int, int], truth: Mapping[int, int]
) -> float:
    """Fraction of items whose cluster's majority class matches them.

    Equivalent to the paper's expert precision when the "expert" is the
    majority ground-truth scenario of each topic.
    """
    pred, true = _to_arrays(predicted, truth)
    table = contingency_table(pred, true)
    return float(table.max(axis=1).sum() / table.sum())


def normalized_mutual_information(
    predicted: Mapping[int, int], truth: Mapping[int, int]
) -> float:
    """NMI with arithmetic-mean normalisation, in [0, 1]."""
    pred, true = _to_arrays(predicted, truth)
    table = contingency_table(pred, true).astype(float)
    n = table.sum()
    pi = table.sum(axis=1) / n
    pj = table.sum(axis=0) / n
    pij = table / n
    mi = 0.0
    for i in range(table.shape[0]):
        for j in range(table.shape[1]):
            if pij[i, j] > 0:
                mi += pij[i, j] * math.log(pij[i, j] / (pi[i] * pj[j]))
    h_pred = -float(np.sum(pi * np.log(pi, where=pi > 0, out=np.zeros_like(pi))))
    h_true = -float(np.sum(pj * np.log(pj, where=pj > 0, out=np.zeros_like(pj))))
    denom = 0.5 * (h_pred + h_true)
    if denom == 0.0:
        # Both partitions are single clusters: identical by convention.
        return 1.0
    return float(mi / denom)


def adjusted_rand_index(
    predicted: Mapping[int, int], truth: Mapping[int, int]
) -> float:
    """ARI: chance-corrected pair-counting agreement, in [-1, 1]."""
    pred, true = _to_arrays(predicted, truth)
    table = contingency_table(pred, true)
    n = table.sum()

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_ij = comb2(table.astype(float)).sum()
    a = comb2(table.sum(axis=1).astype(float)).sum()
    b = comb2(table.sum(axis=0).astype(float)).sum()
    total = comb2(np.array(float(n)))
    expected = a * b / total if total > 0 else 0.0
    max_index = 0.5 * (a + b)
    if max_index == expected:
        return 1.0
    return float((sum_ij - expected) / (max_index - expected))


def dcg_at_k(relevances: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of a ranked relevance list.

    ``DCG@k = Σ_{i<k} rel_i / log2(i + 2)`` — the standard log-position
    discount, graded relevance supported.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    total = 0.0
    for i, rel in enumerate(relevances[:k]):
        total += float(rel) / math.log2(i + 2)
    return total


def ndcg_at_k(relevances: Sequence[float], k: int) -> float:
    """Normalised DCG in [0, 1]: DCG@k over the ideal (sorted) DCG@k.

    Returns 0.0 when nothing in the list is relevant (ideal DCG is 0).
    """
    ideal = dcg_at_k(sorted(relevances, reverse=True), k)
    if ideal == 0.0:
        return 0.0
    return dcg_at_k(relevances, k) / ideal


def precision_at_k(relevances: Sequence[float], k: int) -> float:
    """Fraction of the top-``k`` results with positive relevance.

    Divides by ``k`` even when fewer results were returned (missing
    results are misses), matching the IR convention.
    """
    if k <= 0:
        raise ValueError("k must be > 0")
    hits = sum(1 for rel in relevances[:k] if rel > 0)
    return hits / k


def pair_precision_recall(
    predicted_pairs: Sequence[Tuple[int, int]],
    truth_pairs: Sequence[Tuple[int, int]],
) -> Tuple[float, float]:
    """Precision/recall of a predicted pair relation vs. ground truth.

    Pairs are canonicalised (order-insensitive). Used by the category-
    correlation bench (E7): predicted = correlated category pairs,
    truth = pairs co-occurring in a ground-truth scenario.
    """
    def canon(pairs):
        return {(a, b) if a <= b else (b, a) for a, b in pairs}

    p = canon(predicted_pairs)
    t = canon(truth_pairs)
    if not p:
        return (0.0, 0.0 if t else 1.0)
    tp = len(p & t)
    precision = tp / len(p)
    recall = tp / len(t) if t else 1.0
    return (precision, recall)
