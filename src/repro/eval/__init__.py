"""Evaluation harness.

* :mod:`repro.eval.metrics` — clustering/retrieval metrics (purity,
  NMI, ARI, precision/recall of pair relations);
* :mod:`repro.eval.precision` — the paper's expert sampling protocol
  (Sec. 3: 1000 topics × 100 items, ≥ 98 % precision), replayed
  against synthetic ground truth with an optional noisy-judge model;
* :mod:`repro.eval.abtest` — the online A/B test (Sec. 3: +5 % CTR over
  3M users) as a simulated experiment with a scenario-conditioned
  click model.
"""

from repro.eval.metrics import (
    adjusted_rand_index,
    cluster_purity,
    dcg_at_k,
    ndcg_at_k,
    normalized_mutual_information,
    pair_precision_recall,
    precision_at_k,
)
from repro.eval.precision import (
    ExpertJudge,
    PrecisionConfig,
    PrecisionReport,
    SamplingPrecisionEvaluator,
)
from repro.eval.abtest import (
    ABTestConfig,
    ABTestReport,
    ABTestSimulator,
    ClickModel,
)

__all__ = [
    "cluster_purity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "pair_precision_recall",
    "dcg_at_k",
    "ndcg_at_k",
    "precision_at_k",
    "ExpertJudge",
    "PrecisionConfig",
    "PrecisionReport",
    "SamplingPrecisionEvaluator",
    "ABTestConfig",
    "ABTestReport",
    "ABTestSimulator",
    "ClickModel",
]
