"""SHOAL reproduction: Large-scale Hierarchical Taxonomy via Graph-based
Query Coalition in E-commerce (Li et al., PVLDB 12(12), 2019).

Public API highlights::

    from repro import generate_marketplace, ShoalPipeline, ShoalService

    market = generate_marketplace()
    model = ShoalPipeline().fit(market)
    service = ShoalService(model)
    for hit in service.search_topics("beach dress"):
        print(hit.label, hit.score)

Subpackages:

* ``repro.data`` — synthetic marketplace (Taobao-data substitute)
* ``repro.store`` — query-log store & persistence
* ``repro.text`` — tokenizer, word2vec, BM25
* ``repro.graph`` — bipartite & item-entity graphs, modularity
* ``repro.pregel`` — vertex-centric BSP engine (ODPS substitute)
* ``repro.clustering`` — sequential HAC and Parallel HAC
* ``repro.core`` — the SHOAL pipeline, taxonomy and serving scenarios
* ``repro.serving`` — sharded cluster serving and traffic replay
* ``repro.api`` — the one public serving API: typed request/response
  contract, pluggable backends, gateway middleware, HTTP edge
* ``repro.eval`` — precision protocol, A/B CTR simulator, metrics
* ``repro.baselines`` — ontology recommender, TaxoGen-style, k-means

Serving should go through the gateway API::

    from repro.api import Gateway, SearchRequest, ServiceBackend

    backend = ServiceBackend.from_model(model)
    response = Gateway(backend).search(SearchRequest(query="beach dress"))
"""

from repro.api.backends import (
    ClusterBackend,
    ServiceBackend,
    ShoalBackend,
    open_backend,
)
from repro.core.config import ShoalConfig
from repro.core.pipeline import ShoalModel, ShoalPipeline
from repro.core.serving import CacheStats, ShoalService
from repro.core.taxonomy import Taxonomy, Topic
from repro.data.marketplace import (
    Marketplace,
    MarketplaceConfig,
    PROFILES,
    generate_marketplace,
)
from repro.serving import ClusterRouter, ShardPlanner, TrafficReplayer

__version__ = "1.1.0"

__all__ = [
    "ShoalConfig",
    "ShoalPipeline",
    "ShoalModel",
    "ShoalService",
    "CacheStats",
    "ClusterRouter",
    "ShardPlanner",
    "TrafficReplayer",
    "ShoalBackend",
    "ServiceBackend",
    "ClusterBackend",
    "open_backend",
    "Taxonomy",
    "Topic",
    "Marketplace",
    "MarketplaceConfig",
    "PROFILES",
    "generate_marketplace",
    "__version__",
]
