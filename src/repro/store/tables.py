"""Typed columnar tables.

A minimal column store used by the query-log store: append-only rows
validated against a schema, columns materialised as Python lists (numpy
arrays on demand), with filter/select helpers. Deliberately simple —
the point is a clean storage abstraction under the log store, not a
database engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple, Type

import numpy as np

__all__ = ["Column", "Schema", "ColumnarTable"]

_TYPE_NAMES = {int: "int", float: "float", str: "str", bool: "bool"}


@dataclass(frozen=True)
class Column:
    """One column: a name and a Python type (int, float, str, bool)."""

    name: str
    dtype: Type

    def __post_init__(self) -> None:
        if self.dtype not in _TYPE_NAMES:
            raise ValueError(
                f"unsupported dtype {self.dtype!r}; use one of {list(_TYPE_NAMES)}"
            )
        if not self.name or not self.name.isidentifier():
            raise ValueError(f"column name must be an identifier, got {self.name!r}")


class Schema:
    """Ordered, named, typed columns."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise ValueError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names")
        self._columns = list(columns)
        self._by_name = {c.name: c for c in columns}

    @property
    def columns(self) -> List[Column]:
        return list(self._columns)

    @property
    def names(self) -> List[str]:
        return [c.name for c in self._columns]

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        return self._by_name[name]

    def validate_row(self, row: Dict[str, Any]) -> Tuple:
        """Check types/completeness; return the row as a tuple in
        schema order. bool is not accepted where int is declared."""
        if set(row) != set(self._by_name):
            missing = set(self._by_name) - set(row)
            extra = set(row) - set(self._by_name)
            raise ValueError(f"row mismatch: missing={sorted(missing)}, extra={sorted(extra)}")
        values = []
        for col in self._columns:
            v = row[col.name]
            if col.dtype is int and isinstance(v, bool):
                raise TypeError(f"column {col.name!r}: bool is not int")
            if col.dtype is float and isinstance(v, int) and not isinstance(v, bool):
                v = float(v)  # int upcasts into float columns
            if not isinstance(v, col.dtype):
                raise TypeError(
                    f"column {col.name!r} expects {_TYPE_NAMES[col.dtype]}, "
                    f"got {type(v).__name__}"
                )
            values.append(v)
        return tuple(values)


class ColumnarTable:
    """Append-only table storing one list per column."""

    def __init__(self, schema: Schema):
        self._schema = schema
        self._columns: Dict[str, List[Any]] = {name: [] for name in schema.names}
        self._n_rows = 0

    @property
    def schema(self) -> Schema:
        return self._schema

    def __len__(self) -> int:
        return self._n_rows

    # -- writes ------------------------------------------------------------

    def append(self, **row: Any) -> None:
        """Append one validated row."""
        values = self._schema.validate_row(row)
        for name, v in zip(self._schema.names, values):
            self._columns[name].append(v)
        self._n_rows += 1

    def extend(self, rows: Iterable[Dict[str, Any]]) -> int:
        """Append many rows; returns how many were added."""
        n = 0
        for row in rows:
            self.append(**row)
            n += 1
        return n

    # -- reads ---------------------------------------------------------------

    def column(self, name: str) -> List[Any]:
        """A copy of one column's values."""
        return list(self._columns[name])

    def column_array(self, name: str) -> np.ndarray:
        """A column as a numpy array (object dtype for str)."""
        col = self._schema.column(name)
        dtype = {int: np.int64, float: np.float64, bool: np.bool_, str: object}[col.dtype]
        return np.array(self._columns[name], dtype=dtype)

    def row(self, index: int) -> Dict[str, Any]:
        if not 0 <= index < self._n_rows:
            raise IndexError(f"row {index} out of range")
        return {name: self._columns[name][index] for name in self._schema.names}

    def rows(self) -> List[Dict[str, Any]]:
        return [self.row(i) for i in range(self._n_rows)]

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "ColumnarTable":
        """A new table with rows satisfying ``predicate``."""
        out = ColumnarTable(self._schema)
        for i in range(self._n_rows):
            row = self.row(i)
            if predicate(row):
                out.append(**row)
        return out

    def select(self, names: Sequence[str]) -> "ColumnarTable":
        """A new table with only the named columns (in given order)."""
        schema = Schema([self._schema.column(n) for n in names])
        out = ColumnarTable(schema)
        for i in range(self._n_rows):
            out.append(**{n: self._columns[n][i] for n in names})
        return out

    def group_count(self, name: str) -> Dict[Any, int]:
        """Value → row count for one column."""
        counts: Dict[Any, int] = {}
        for v in self._columns[name]:
            counts[v] = counts.get(v, 0) + 1
        return counts
