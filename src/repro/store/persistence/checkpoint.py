"""Incremental-maintenance checkpoints.

Sliding-window maintenance (:class:`~repro.core.incremental.
IncrementalShoal`) carries state that must survive a process restart:
the catalog texts it refits from, the warm embeddings policy counters,
and the latest fitted model. A *checkpoint* directory persists all of
it on top of the model-snapshot format:

* ``MANIFEST.json`` — kind/version plus the scalar state
  (``retrain_every``, ``fits_since_retrain``, ``embeddings_valid``,
  ``has_model``); written last, like model snapshots;
* ``config.json`` — the :class:`ShoalConfig`;
* ``state.json`` — titles, query texts, entity categories;
* ``model/`` — a full model snapshot of the latest window (when one
  exists).

Warm embeddings are not stored twice: the model snapshot already holds
them (``advance`` guarantees ``model.embeddings is self._embeddings``),
so resume re-links them from the loaded model unless they were
invalidated (``embeddings_valid`` is false), in which case the next
``advance`` retrains exactly as it would have pre-restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.config import ShoalConfig
from repro.core.pipeline import ShoalModel

from repro.store.persistence.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    check_manifest,
    config_from_dict,
    config_to_dict,
    load_model,
    read_json,
    read_manifest,
    save_model,
    write_json,
)

__all__ = ["CHECKPOINT_KIND", "CheckpointState", "save_checkpoint", "load_checkpoint"]

CHECKPOINT_KIND = "shoal-incremental-checkpoint"

_MANIFEST = "MANIFEST.json"


@dataclass
class CheckpointState:
    """Everything an :class:`IncrementalShoal` needs to resume."""

    config: ShoalConfig
    titles: Dict[int, str]
    query_texts: Dict[int, str]
    entity_categories: Dict[int, int]
    retrain_every: int
    fits_since_retrain: int
    embeddings_valid: bool
    model: Optional[ShoalModel]


def save_checkpoint(
    state: CheckpointState, directory: Union[str, Path]
) -> Path:
    """Write a checkpoint directory (manifest last, see module doc)."""
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    # Invalidate any existing checkpoint before touching its contents.
    (d / _MANIFEST).unlink(missing_ok=True)

    write_json(d / "config.json", config_to_dict(state.config))
    write_json(
        d / "state.json",
        {
            "titles": {str(k): v for k, v in state.titles.items()},
            "query_texts": {str(k): v for k, v in state.query_texts.items()},
            "entity_categories": {
                str(k): int(v) for k, v in state.entity_categories.items()
            },
        },
    )
    if state.model is not None:
        save_model(
            state.model,
            d / "model",
            entity_categories=state.entity_categories,
        )
    write_json(
        d / _MANIFEST,
        {
            "kind": CHECKPOINT_KIND,
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "retrain_every": state.retrain_every,
            "fits_since_retrain": state.fits_since_retrain,
            "embeddings_valid": state.embeddings_valid,
            "has_model": state.model is not None,
        },
    )
    return d


def load_checkpoint(directory: Union[str, Path]) -> CheckpointState:
    """Inverse of :func:`save_checkpoint`, with manifest validation."""
    d = Path(directory)
    manifest = read_manifest(d)
    check_manifest(manifest, CHECKPOINT_KIND)

    raw = read_json(d / "state.json")
    model = load_model(d / "model") if manifest["has_model"] else None
    return CheckpointState(
        config=config_from_dict(read_json(d / "config.json")),
        titles={int(k): v for k, v in raw["titles"].items()},
        query_texts={int(k): v for k, v in raw["query_texts"].items()},
        entity_categories={
            int(k): int(v) for k, v in raw["entity_categories"].items()
        },
        retrain_every=int(manifest["retrain_every"]),
        fits_since_retrain=int(manifest["fits_since_retrain"]),
        embeddings_valid=bool(manifest["embeddings_valid"]),
        model=model,
    )
