"""Single-artifact serialisers: taxonomy (JSON) and embeddings (NPZ).

These are the two artifacts that predate the snapshot subsystem and are
still useful standalone (a taxonomy dump is human-inspectable; an
embeddings file can warm-start an :class:`EntityGraphBuilder` without
the rest of the model). Both formats are strictly pickle-free:

* the taxonomy is standard JSON — non-finite similarities are
  sanitised to 0.0 and ``allow_nan=False`` is enforced so the output
  never contains the non-standard ``NaN``/``Infinity`` literals other
  parsers reject;
* the embeddings NPZ stores the vocabulary as a fixed-width unicode
  array (never ``object`` dtype), so ``np.load`` works with its safe
  default ``allow_pickle=False`` and snapshots are portable across
  Python/numpy versions.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.core.taxonomy import Taxonomy, Topic
from repro.text.vocab import Vocabulary, VocabularyBuildConfig
from repro.text.word2vec import WordEmbeddings

__all__ = [
    "taxonomy_to_dict",
    "taxonomy_from_dict",
    "save_taxonomy",
    "load_taxonomy",
    "save_embeddings",
    "load_embeddings",
]

_FORMAT_VERSION = 1


def _finite(value: float, default: float = 0.0) -> float:
    """Clamp non-finite floats so the output is standard JSON."""
    v = float(value)
    return v if math.isfinite(v) else default


def taxonomy_to_dict(taxonomy: Taxonomy) -> Dict:
    """Serialise a taxonomy to plain dicts/lists (standard-JSON safe)."""
    return {
        "format_version": _FORMAT_VERSION,
        "topics": [
            {
                "topic_id": t.topic_id,
                "entity_ids": t.entity_ids,
                "category_ids": t.category_ids,
                "parent_id": t.parent_id,
                "child_ids": t.child_ids,
                "level": t.level,
                "similarity": _finite(t.similarity),
                "descriptions": t.descriptions,
            }
            for t in taxonomy
        ],
    }


def taxonomy_from_dict(payload: Dict) -> Taxonomy:
    """Inverse of :func:`taxonomy_to_dict`, with format validation."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported taxonomy format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    topics = [
        Topic(
            topic_id=t["topic_id"],
            entity_ids=list(t["entity_ids"]),
            category_ids=list(t["category_ids"]),
            parent_id=t["parent_id"],
            child_ids=list(t["child_ids"]),
            level=t["level"],
            similarity=t["similarity"],
            descriptions=list(t["descriptions"]),
        )
        for t in payload.get("topics", [])
    ]
    return Taxonomy(topics)


def save_taxonomy(taxonomy: Taxonomy, path: Union[str, Path]) -> None:
    """Write a taxonomy to a strictly standard JSON file."""
    p = Path(path)
    with p.open("w", encoding="utf-8") as f:
        json.dump(
            taxonomy_to_dict(taxonomy),
            f,
            indent=1,
            sort_keys=True,
            allow_nan=False,
        )


def load_taxonomy(path: Union[str, Path]) -> Taxonomy:
    """Load a taxonomy previously written by :func:`save_taxonomy`."""
    p = Path(path)
    with p.open("r", encoding="utf-8") as f:
        payload = json.load(f)
    return taxonomy_from_dict(payload)


def save_embeddings(embeddings: WordEmbeddings, path: Union[str, Path]) -> None:
    """Write trained word embeddings to a compressed, pickle-free NPZ.

    Stores the embedding matrix, the vocabulary's words/counts, and the
    vocabulary-build parameters needed to rebuild its sampling tables.
    Words are stored as a fixed-width unicode array so the file loads
    with numpy's safe default ``allow_pickle=False``.
    """
    vocab = embeddings.vocabulary
    cfg = vocab.config
    words = vocab.words
    words_arr = (
        np.asarray(words, dtype=np.str_) if words else np.empty(0, dtype="<U1")
    )
    np.savez_compressed(
        Path(path),
        matrix=embeddings.matrix,
        words=words_arr,
        counts=vocab.counts,
        min_count=np.int64(cfg.min_count),
        subsample_threshold=np.float64(cfg.subsample_threshold),
        negative_sampling_power=np.float64(cfg.negative_sampling_power),
    )


def load_embeddings(path: Union[str, Path]) -> WordEmbeddings:
    """Inverse of :func:`save_embeddings` (no pickle involved)."""
    with np.load(Path(path)) as payload:
        config = VocabularyBuildConfig(
            min_count=int(payload["min_count"]),
            subsample_threshold=float(payload["subsample_threshold"]),
            negative_sampling_power=float(payload["negative_sampling_power"]),
        )
        vocab = Vocabulary(
            [str(w) for w in payload["words"]], payload["counts"], config
        )
        return WordEmbeddings(vocab, payload["matrix"])
