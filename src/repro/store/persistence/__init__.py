"""Model artifact persistence: per-artifact serialisers, versioned
model snapshots, and incremental checkpoints.

A fitted model's artifacts are what a serving fleet loads; refitting
per process would be absurd at production scale. This package covers
three granularities, all strictly pickle-free:

* :mod:`~repro.store.persistence.artifacts` — standalone taxonomy
  (JSON) and embeddings (NPZ) files;
* :mod:`~repro.store.persistence.snapshot` — the versioned snapshot
  directory holding *every* :class:`ShoalModel` artifact, consumed by
  ``ShoalModel.load`` / ``ShoalService.from_snapshot``;
* :mod:`~repro.store.persistence.checkpoint` — snapshot plus
  sliding-window maintenance state, consumed by
  ``IncrementalShoal.resume``.
"""

from repro.store.persistence.artifacts import (
    load_embeddings,
    load_taxonomy,
    save_embeddings,
    save_taxonomy,
    taxonomy_from_dict,
    taxonomy_to_dict,
)
from repro.store.persistence.checkpoint import (
    CHECKPOINT_KIND,
    CheckpointState,
    load_checkpoint,
    save_checkpoint,
)
from repro.store.persistence.snapshot import (
    MODEL_SNAPSHOT_KIND,
    SNAPSHOT_FORMAT_VERSION,
    check_manifest,
    config_from_dict,
    config_to_dict,
    load_entity_categories,
    load_model,
    read_manifest,
    save_model,
)

__all__ = [
    "taxonomy_to_dict",
    "taxonomy_from_dict",
    "save_taxonomy",
    "load_taxonomy",
    "save_embeddings",
    "load_embeddings",
    "config_to_dict",
    "config_from_dict",
    "save_model",
    "load_model",
    "load_entity_categories",
    "read_manifest",
    "check_manifest",
    "SNAPSHOT_FORMAT_VERSION",
    "MODEL_SNAPSHOT_KIND",
    "CHECKPOINT_KIND",
    "CheckpointState",
    "save_checkpoint",
    "load_checkpoint",
]
