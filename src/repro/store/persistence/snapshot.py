"""Versioned model snapshots: the offline-fit → online-serving handoff.

A *snapshot* is a directory holding every artifact of a fitted
:class:`~repro.core.pipeline.ShoalModel`, in formats a serving fleet
can load without refitting and an operator can inspect without Python:

============================ ==================================================
``MANIFEST.json``            kind, format version, artifact list, counts,
                             stage timings — written **last**, so a readable
                             manifest implies a complete snapshot
``config.json``              the full :class:`ShoalConfig` (nested stage
                             configs included)
``taxonomy.json``            topics with hierarchy, categories, descriptions
``embeddings.npz``           word vectors + vocabulary (fixed-width unicode)
``bipartite.npz``            query–item click edges of the fitted window
``entity_graph.npz``         item entity graph vertices + weighted edges
``clustering.npz``           dendrogram merges + per-round HAC statistics
``descriptions.json``        full per-topic :class:`QueryScore` lists
``correlations.json``        thresholded category-correlation pairs
``texts.json``               entity titles and query texts
``entity_categories.json``   *(optional)* authoritative entity → category map
============================ ==================================================

JSON for inspectable structures, NPZ for arrays, **no pickle
anywhere** — every array is numeric or fixed-width unicode, and every
JSON file is standard JSON (``allow_nan=False``). Loading validates the
manifest's kind and ``format_version`` before touching any artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.parallel_hac import (
    ParallelHACConfig,
    ParallelHACResult,
    RoundStats,
)
from repro.core.config import ShoalConfig
from repro.core.correlation import CategoryCorrelationConfig, CorrelationGraph
from repro.core.descriptions import DescriptionConfig, QueryScore
from repro.core.pipeline import ShoalModel
from repro.graph.bipartite import QueryItemGraph
from repro.graph.entity_graph import EntityGraphConfig
from repro.graph.sparse import SparseGraph
from repro.text.bm25 import BM25Config
from repro.text.word2vec import Word2VecConfig

from repro.store.persistence.artifacts import (
    _finite,
    load_embeddings,
    load_taxonomy,
    save_embeddings,
    save_taxonomy,
)

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "MODEL_SNAPSHOT_KIND",
    "config_to_dict",
    "config_from_dict",
    "save_model",
    "load_model",
    "load_entity_categories",
    "read_manifest",
    "check_manifest",
]

SNAPSHOT_FORMAT_VERSION = 1
MODEL_SNAPSHOT_KIND = "shoal-model"

_MANIFEST = "MANIFEST.json"


# -- small shared helpers ----------------------------------------------------


def write_json(path: Path, payload: Dict) -> None:
    with path.open("w", encoding="utf-8") as f:
        json.dump(payload, f, indent=1, sort_keys=True, allow_nan=False)


def read_json(path: Path) -> Dict:
    with path.open("r", encoding="utf-8") as f:
        return json.load(f)


def read_manifest(directory: Union[str, Path]) -> Dict:
    """Read a snapshot directory's manifest (error if absent)."""
    p = Path(directory) / _MANIFEST
    if not p.is_file():
        raise FileNotFoundError(
            f"no snapshot manifest at {p} — not a snapshot directory, "
            "or the snapshot write was interrupted before completion"
        )
    return read_json(p)


def check_manifest(manifest: Dict, expected_kind: str) -> None:
    """Validate a manifest's kind and format version before loading."""
    kind = manifest.get("kind")
    if kind != expected_kind:
        raise ValueError(
            f"snapshot kind {kind!r} does not match expected "
            f"{expected_kind!r}"
        )
    version = manifest.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported snapshot format version {version!r} "
            f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
        )


# -- config ------------------------------------------------------------------


def config_to_dict(config: ShoalConfig) -> Dict:
    """Serialise a :class:`ShoalConfig` (nested stage configs included)."""
    import dataclasses

    return dataclasses.asdict(config)


def config_from_dict(payload: Dict) -> ShoalConfig:
    """Inverse of :func:`config_to_dict`; strict about field names."""
    desc = dict(payload["descriptions"])
    desc["bm25"] = BM25Config(**desc["bm25"])
    return ShoalConfig(
        word2vec=Word2VecConfig(**payload["word2vec"]),
        entity_graph=EntityGraphConfig(**payload["entity_graph"]),
        clustering=ParallelHACConfig(**payload["clustering"]),
        descriptions=DescriptionConfig(**desc),
        correlation=CategoryCorrelationConfig(**payload["correlation"]),
        window_days=int(payload["window_days"]),
        min_clicks=int(payload["min_clicks"]),
        min_topic_size=int(payload["min_topic_size"]),
        seed=int(payload["seed"]),
    )


# -- bipartite graph ---------------------------------------------------------


def _save_bipartite(graph: QueryItemGraph, path: Path) -> None:
    edges = list(graph.edges())
    if edges:
        qs, es, cs = zip(*edges)
    else:
        qs, es, cs = (), (), ()
    np.savez_compressed(
        path,
        query_ids=np.asarray(qs, dtype=np.int64),
        entity_ids=np.asarray(es, dtype=np.int64),
        clicks=np.asarray(cs, dtype=np.int64),
    )


def _load_bipartite(path: Path) -> QueryItemGraph:
    graph = QueryItemGraph()
    with np.load(path) as z:
        for q, e, c in zip(z["query_ids"], z["entity_ids"], z["clicks"]):
            graph.add_click(int(q), int(e), int(c))
    return graph


# -- entity graph ------------------------------------------------------------


def _save_sparse_graph(graph: SparseGraph, path: Path) -> None:
    us, vs, ws = graph.adjacency_arrays()
    np.savez_compressed(
        path,
        vertices=np.asarray(graph.vertices(), dtype=np.int64),
        edge_us=us,
        edge_vs=vs,
        edge_ws=ws,
    )


def _load_sparse_graph(path: Path) -> SparseGraph:
    graph = SparseGraph(0)
    with np.load(path) as z:
        for v in z["vertices"]:
            graph.add_vertex(int(v))
        for u, v, w in zip(z["edge_us"], z["edge_vs"], z["edge_ws"]):
            graph.set_edge(int(u), int(v), float(w))
    return graph


# -- clustering result (dendrogram + round stats) ----------------------------

_ROUND_FIELDS = (
    "round_index",
    "live_clusters",
    "live_edges",
    "local_maximal_edges",
    "merges",
    "supersteps",
    "messages",
    "remote_messages",
)


def _save_clustering(result: ParallelHACResult, path: Path) -> None:
    merges = result.dendrogram.merges
    arrays = {
        "vertex_ids": np.asarray(result.dendrogram.vertex_ids, dtype=np.int64),
        "merge_ids": np.asarray([m.merged_id for m in merges], dtype=np.int64),
        "merge_child_a": np.asarray([m.child_a for m in merges], dtype=np.int64),
        "merge_child_b": np.asarray([m.child_b for m in merges], dtype=np.int64),
        "merge_similarity": np.asarray(
            [m.similarity for m in merges], dtype=np.float64
        ),
        "merge_round": np.asarray(
            [m.round_index for m in merges], dtype=np.int64
        ),
    }
    for name in _ROUND_FIELDS:
        arrays[f"round_{name}"] = np.asarray(
            [getattr(r, name) for r in result.rounds], dtype=np.int64
        )
    np.savez_compressed(path, **arrays)


def _load_clustering(path: Path) -> ParallelHACResult:
    with np.load(path) as z:
        dendrogram = Dendrogram([int(v) for v in z["vertex_ids"]])
        # Merges are recorded in chronological order, so children always
        # exist by the time their parent merge replays.
        for mid, a, b, sim, rnd in zip(
            z["merge_ids"],
            z["merge_child_a"],
            z["merge_child_b"],
            z["merge_similarity"],
            z["merge_round"],
        ):
            dendrogram.record_merge(
                Merge(int(mid), int(a), int(b), float(sim), int(rnd))
            )
        round_cols = {name: z[f"round_{name}"] for name in _ROUND_FIELDS}
        n_rounds = len(round_cols["round_index"])
        rounds = [
            RoundStats(
                **{name: int(round_cols[name][i]) for name in _ROUND_FIELDS}
            )
            for i in range(n_rounds)
        ]
    return ParallelHACResult(dendrogram=dendrogram, rounds=rounds)


# -- descriptions ------------------------------------------------------------


def _descriptions_to_dict(
    descriptions: Dict[int, List[QueryScore]],
) -> Dict:
    return {
        "topics": {
            str(topic_id): [
                {
                    "query_id": s.query_id,
                    "text": s.text,
                    "popularity": _finite(s.popularity),
                    "concentration": _finite(s.concentration),
                }
                for s in scores
            ]
            for topic_id, scores in descriptions.items()
        }
    }


def _descriptions_from_dict(payload: Dict) -> Dict[int, List[QueryScore]]:
    return {
        int(topic_id): [
            QueryScore(
                query_id=int(s["query_id"]),
                text=s["text"],
                popularity=float(s["popularity"]),
                concentration=float(s["concentration"]),
            )
            for s in scores
        ]
        for topic_id, scores in payload.get("topics", {}).items()
    }


# -- correlations ------------------------------------------------------------


def _correlations_to_dict(graph: CorrelationGraph) -> Dict:
    return {
        "min_strength": graph.min_strength,
        "pairs": [[a, b, s] for a, b, s in graph.pairs()],
    }


def _correlations_from_dict(payload: Dict) -> CorrelationGraph:
    strengths: Dict[Tuple[int, int], int] = {
        (int(a), int(b)): int(s) for a, b, s in payload.get("pairs", [])
    }
    return CorrelationGraph(strengths, int(payload["min_strength"]))


# -- the model snapshot ------------------------------------------------------


def save_model(
    model: ShoalModel,
    directory: Union[str, Path],
    *,
    entity_categories: Optional[Dict[int, int]] = None,
    metadata: Optional[Dict] = None,
) -> Path:
    """Write every artifact of ``model`` into a snapshot directory.

    ``entity_categories`` optionally persists the authoritative
    entity → category map (the pipeline's catalog knowledge), which
    :meth:`ShoalService.from_snapshot` installs at load time so
    scenario C filters exactly as in the fitting process.
    ``metadata`` is an arbitrary JSON-safe dict recorded in the
    manifest (the CLI stores the marketplace profile/seed there so
    ``--load`` can detect a mismatched world).

    The manifest is written last (and any previous manifest removed
    first): a snapshot without a readable manifest must be treated as
    incomplete, so an interrupted overwrite never passes off a mix of
    old and new artifacts as a valid snapshot.
    """
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    # Invalidate any existing snapshot before touching its artifacts.
    (d / _MANIFEST).unlink(missing_ok=True)

    write_json(d / "config.json", config_to_dict(model.config))
    save_taxonomy(model.taxonomy, d / "taxonomy.json")
    save_embeddings(model.embeddings, d / "embeddings.npz")
    _save_bipartite(model.bipartite, d / "bipartite.npz")
    _save_sparse_graph(model.entity_graph, d / "entity_graph.npz")
    _save_clustering(model.clustering, d / "clustering.npz")
    write_json(d / "descriptions.json", _descriptions_to_dict(model.descriptions))
    write_json(d / "correlations.json", _correlations_to_dict(model.correlations))
    write_json(
        d / "texts.json",
        {
            "titles": {str(k): v for k, v in model.titles.items()},
            "query_texts": {str(k): v for k, v in model.query_texts.items()},
        },
    )
    artifacts = [
        "config.json",
        "taxonomy.json",
        "embeddings.npz",
        "bipartite.npz",
        "entity_graph.npz",
        "clustering.npz",
        "descriptions.json",
        "correlations.json",
        "texts.json",
    ]
    if entity_categories is not None:
        write_json(
            d / "entity_categories.json",
            {str(k): int(v) for k, v in entity_categories.items()},
        )
        artifacts.append("entity_categories.json")
    else:
        # Don't let a sidecar from a previous save linger.
        (d / "entity_categories.json").unlink(missing_ok=True)

    write_json(
        d / _MANIFEST,
        {
            "kind": MODEL_SNAPSHOT_KIND,
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "artifacts": artifacts,
            "metadata": metadata or {},
            "counts": {
                "topics": len(model.taxonomy),
                "entities": model.entity_graph.n_vertices,
                "entity_edges": model.entity_graph.n_edges,
                "bipartite_edges": model.bipartite.n_edges,
                "vocabulary": len(model.embeddings.vocabulary),
                "merges": model.clustering.dendrogram.n_merges,
            },
            "stage_seconds": {
                k: _finite(v) for k, v in model.stage_seconds.items()
            },
        },
    )
    return d


def load_model(directory: Union[str, Path]) -> ShoalModel:
    """Reconstruct a :class:`ShoalModel` from a snapshot directory.

    Validates the manifest's kind and format version first; artifact
    files are then loaded with no pickle anywhere.
    """
    d = Path(directory)
    manifest = read_manifest(d)
    check_manifest(manifest, MODEL_SNAPSHOT_KIND)

    texts = read_json(d / "texts.json")
    return ShoalModel(
        config=config_from_dict(read_json(d / "config.json")),
        bipartite=_load_bipartite(d / "bipartite.npz"),
        embeddings=load_embeddings(d / "embeddings.npz"),
        entity_graph=_load_sparse_graph(d / "entity_graph.npz"),
        clustering=_load_clustering(d / "clustering.npz"),
        taxonomy=load_taxonomy(d / "taxonomy.json"),
        descriptions=_descriptions_from_dict(read_json(d / "descriptions.json")),
        correlations=_correlations_from_dict(read_json(d / "correlations.json")),
        titles={int(k): v for k, v in texts["titles"].items()},
        query_texts={int(k): v for k, v in texts["query_texts"].items()},
        stage_seconds=dict(manifest.get("stage_seconds", {})),
    )


def load_entity_categories(
    directory: Union[str, Path],
) -> Optional[Dict[int, int]]:
    """The snapshot's entity → category sidecar, or None if not saved.

    The manifest's artifact list is the authority: a stray file the
    manifest does not claim is ignored.
    """
    d = Path(directory)
    manifest = read_manifest(d)
    if "entity_categories.json" not in manifest.get("artifacts", ()):
        return None
    p = d / "entity_categories.json"
    if not p.is_file():
        return None
    return {int(k): int(v) for k, v in read_json(p).items()}
