"""Query-log store with per-day segments and sliding-window retention.

Paper Sec. 3: SHOAL is built from "a sliding window containing search
queries in the last seven days". This store models that operational
reality: events append into per-day segments; a retention policy
drops segments older than the window; reads produce a
:class:`~repro.data.queries.QueryLog` over any day range so the
pipeline can be re-run as the window slides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro._util import check_positive
from repro.data.queries import Query, QueryEvent, QueryLog
from repro.store.tables import Column, ColumnarTable, Schema

__all__ = ["QueryLogStoreConfig", "QueryLogStore"]

_EVENT_SCHEMA = Schema(
    [
        Column("event_id", int),
        Column("day", int),
        Column("user_id", int),
        Column("query_id", int),
        Column("clicked", str),  # comma-joined entity ids
    ]
)


@dataclass(frozen=True)
class QueryLogStoreConfig:
    """Retention policy: keep the last ``window_days`` day segments."""

    window_days: int = 7

    def __post_init__(self) -> None:
        check_positive("window_days", self.window_days)


class QueryLogStore:
    """Day-segmented event store feeding the SHOAL pipeline."""

    def __init__(self, config: QueryLogStoreConfig = QueryLogStoreConfig()):
        self._config = config
        self._segments: Dict[int, ColumnarTable] = {}
        self._queries: Dict[int, Query] = {}
        self._next_event_id = 0

    @property
    def config(self) -> QueryLogStoreConfig:
        return self._config

    # -- writes ----------------------------------------------------------------

    def register_query(self, query: Query) -> None:
        """Register a distinct query string (idempotent by id)."""
        existing = self._queries.get(query.query_id)
        if existing is not None and existing != query:
            raise ValueError(f"conflicting redefinition of query {query.query_id}")
        self._queries[query.query_id] = query

    def append_event(
        self,
        day: int,
        user_id: int,
        query_id: int,
        clicked_entity_ids: Sequence[int],
    ) -> int:
        """Append one search event; returns its event id.

        Appending automatically applies retention: segments older than
        ``day − window_days + 1`` are dropped, like a TTL'd table.
        """
        if day < 0:
            raise ValueError("day must be >= 0")
        if query_id not in self._queries:
            raise KeyError(f"query {query_id} is not registered")
        event_id = self._next_event_id
        self._next_event_id += 1
        segment = self._segments.setdefault(day, ColumnarTable(_EVENT_SCHEMA))
        segment.append(
            event_id=event_id,
            day=day,
            user_id=user_id,
            query_id=query_id,
            clicked=",".join(str(e) for e in clicked_entity_ids),
        )
        self._apply_retention(day)
        return event_id

    def ingest(self, log: QueryLog) -> int:
        """Bulk-load a generated :class:`QueryLog`; returns event count."""
        for q in log.queries:
            self.register_query(q)
        n = 0
        for e in log.events:
            self.append_event(e.day, e.user_id, e.query_id, e.clicked_entity_ids)
            n += 1
        return n

    def _apply_retention(self, latest_day: int) -> None:
        cutoff = latest_day - self._config.window_days + 1
        for day in [d for d in self._segments if d < cutoff]:
            del self._segments[day]

    # -- reads -----------------------------------------------------------------

    def days(self) -> List[int]:
        """Days that still have a live segment."""
        return sorted(self._segments)

    def n_events(self) -> int:
        return sum(len(seg) for seg in self._segments.values())

    def n_queries(self) -> int:
        return len(self._queries)

    def segment_sizes(self) -> Dict[int, int]:
        return {d: len(seg) for d, seg in sorted(self._segments.items())}

    def snapshot(
        self,
        first_day: Optional[int] = None,
        last_day: Optional[int] = None,
    ) -> QueryLog:
        """Materialise a :class:`QueryLog` over retained segments.

        Defaults to the full retained window. Events keep their
        original ids; days outside retention are silently absent (they
        were dropped, as in production).
        """
        days = self.days()
        if not days:
            return QueryLog(list(self._queries.values()), [])
        lo = first_day if first_day is not None else days[0]
        hi = last_day if last_day is not None else days[-1]
        events: List[QueryEvent] = []
        for day in days:
            if not lo <= day <= hi:
                continue
            seg = self._segments[day]
            for i in range(len(seg)):
                row = seg.row(i)
                clicked = tuple(
                    int(x) for x in row["clicked"].split(",") if x
                )
                events.append(
                    QueryEvent(
                        event_id=row["event_id"],
                        day=row["day"],
                        user_id=row["user_id"],
                        query_id=row["query_id"],
                        clicked_entity_ids=clicked,
                    )
                )
        events.sort(key=lambda e: e.event_id)
        queries = sorted(self._queries.values(), key=lambda q: q.query_id)
        return QueryLog(queries, events)
