"""Lightweight storage layer.

Production SHOAL reads a seven-day query-log window from distributed
tables; this package provides the single-node equivalents:

* :mod:`repro.store.tables` — typed, append-only columnar tables with
  schema validation and simple filtering;
* :mod:`repro.store.querylog` — a query-log store with per-day
  segments and sliding-window retention (paper: last seven days);
* :mod:`repro.store.persistence` — pickle-free serialisation of fitted
  artifacts: standalone taxonomy/embeddings files, versioned model
  snapshot directories (``ShoalModel.save``/``load``,
  ``ShoalService.from_snapshot``), and incremental-maintenance
  checkpoints (``IncrementalShoal.checkpoint``/``resume``).
"""

from repro.store.tables import Column, ColumnarTable, Schema
from repro.store.querylog import QueryLogStore, QueryLogStoreConfig
from repro.store.persistence import (
    CheckpointState,
    load_checkpoint,
    load_embeddings,
    load_entity_categories,
    load_model,
    load_taxonomy,
    read_manifest,
    save_checkpoint,
    save_embeddings,
    save_model,
    save_taxonomy,
    taxonomy_to_dict,
    taxonomy_from_dict,
)

__all__ = [
    "Column",
    "Schema",
    "ColumnarTable",
    "QueryLogStore",
    "QueryLogStoreConfig",
    "save_taxonomy",
    "load_taxonomy",
    "save_embeddings",
    "load_embeddings",
    "taxonomy_to_dict",
    "taxonomy_from_dict",
    "save_model",
    "load_model",
    "load_entity_categories",
    "read_manifest",
    "CheckpointState",
    "save_checkpoint",
    "load_checkpoint",
]
