"""Lightweight storage layer.

Production SHOAL reads a seven-day query-log window from distributed
tables; this package provides the single-node equivalents:

* :mod:`repro.store.tables` — typed, append-only columnar tables with
  schema validation and simple filtering;
* :mod:`repro.store.querylog` — a query-log store with per-day
  segments and sliding-window retention (paper: last seven days);
* :mod:`repro.store.persistence` — JSON serialisation of a fitted
  taxonomy/model so a serving process can load without refitting.
"""

from repro.store.tables import Column, ColumnarTable, Schema
from repro.store.querylog import QueryLogStore, QueryLogStoreConfig
from repro.store.persistence import (
    load_embeddings,
    load_taxonomy,
    save_embeddings,
    save_taxonomy,
    taxonomy_to_dict,
    taxonomy_from_dict,
)

__all__ = [
    "Column",
    "Schema",
    "ColumnarTable",
    "QueryLogStore",
    "QueryLogStoreConfig",
    "save_taxonomy",
    "load_taxonomy",
    "save_embeddings",
    "load_embeddings",
    "taxonomy_to_dict",
    "taxonomy_from_dict",
]
