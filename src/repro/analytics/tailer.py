"""The segment tailer: WAL directory → analytics store, exactly once.

:class:`SegmentTailer` is an *isolated* WAL consumer: it reads the
segment files directly (it never holds the serving side's
:class:`~repro.streaming.wal.WriteAheadLog` lock), decodes records with
the same CRC-checked codec, and folds everything newer than the store's
``applied_seq`` into the :class:`~repro.analytics.store.AnalyticsStore`
in batched transactions. Sequence numbers make the whole pipeline
idempotent end to end:

* a segment re-read after a partial apply re-offers old seqs, which the
  store skips;
* a segment *compacted away* between polls simply stops appearing —
  everything in it was already applied (the tailer runs ahead of the
  updater's compaction by construction, and a fresh store rebuilding
  from a compacted WAL holds exactly what the WAL retains);
* a torn or still-being-written final line in the active segment is
  left for the next poll (only newline-terminated records are decoded).

**Checkpoint sidecar.** After each apply the tailer atomically rewrites
``<db>.checkpoint.json`` next to the store with its progress
(``applied_seq``, rows ingested, segments seen). This is an
operator-facing record — recovery truth is the ``meta.applied_seq`` row
*inside* the store, committed with each batch; the sidecar exists so an
operator can inspect tailer progress without opening SQLite.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro._util import atomic_write_json
from repro.analytics.store import AnalyticsStore
from repro.streaming.wal import IngestEvent, WalCorruption, WriteAheadLog

__all__ = ["SegmentTailer", "make_topic_resolver"]

_SEGMENT_GLOB = "wal-*.jsonl"


def make_topic_resolver(backend) -> Callable[[IngestEvent], int]:
    """A memoizing (query → topic) resolver over any typed backend.

    WAL events carry ``query_text`` only when the query was first seen
    live, so the resolver caches the answer per ``query_id`` on first
    sighting; events whose query text is never seen roll up under topic
    ``-1``. One ``k=1`` search per *distinct* live query is the entire
    read-path cost of topic attribution.
    """
    from repro.api.contract import SearchRequest

    cache: Dict[int, int] = {}

    def resolve(event: IngestEvent) -> int:
        known = cache.get(event.query_id)
        if known is not None:
            return known
        if event.query_text is None:
            return -1
        try:
            response = backend.search(
                SearchRequest(query=event.query_text, k=1)
            )
            topic = response.hits[0].topic_id if response.hits else -1
        except Exception:  # noqa: BLE001 - attribution must never kill apply
            topic = -1
        cache[event.query_id] = topic
        return topic

    return resolve


class SegmentTailer:
    """Stream WAL segments into an analytics store (resumable, isolated).

    ``wal`` may be a directory path or a live
    :class:`~repro.streaming.wal.WriteAheadLog` (only its directory is
    used — reads never take its lock). Drive it synchronously with
    :meth:`run_once` (tests, the offline CLI) or as a daemon thread via
    :meth:`start` / :meth:`stop` (``serve-http --analytics-db``).
    """

    def __init__(
        self,
        wal: Union[str, Path, WriteAheadLog],
        store: AnalyticsStore,
        *,
        resolver: Optional[Callable[[IngestEvent], int]] = None,
        ingest_pipe=None,
        poll_interval_s: float = 0.2,
        batch_max_events: int = 1024,
        checkpoint_path: Optional[Union[str, Path]] = None,
    ):
        if batch_max_events < 1:
            raise ValueError(
                f"batch_max_events must be >= 1, got {batch_max_events}"
            )
        self._wal_dir = (
            wal.directory if isinstance(wal, WriteAheadLog) else Path(wal)
        )
        self._store = store
        self._resolver = resolver
        self._pipe = ingest_pipe
        self._poll_interval_s = poll_interval_s
        self._batch_max_events = batch_max_events
        self._checkpoint_path = (
            Path(checkpoint_path)
            if checkpoint_path is not None
            else store.path.with_name(store.path.name + ".checkpoint.json")
        )

        #: name -> max seq of a *closed* segment fully applied already;
        #: lets polls skip re-reading cold segments.
        self._segment_done: Dict[str, int] = {}
        self._segments_tailed = 0
        self._runs = 0
        self._head_seq = store.applied_seq
        self._last_ops: Optional[tuple] = None
        self._last_error: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._state_lock = threading.Lock()

    # -- identity ------------------------------------------------------------

    @property
    def store(self) -> AnalyticsStore:
        return self._store

    @property
    def checkpoint_path(self) -> Path:
        return self._checkpoint_path

    # -- one poll ------------------------------------------------------------

    def run_once(self) -> int:
        """Scan the WAL directory once; returns newly applied events."""
        paths = sorted(self._wal_dir.glob(_SEGMENT_GLOB))
        applied = 0
        head = self._store.applied_seq
        batch: List[IngestEvent] = []
        #: Closed segments this pass fully read — only marked done once
        #: every collected event is durably applied (a failed apply must
        #: not leave a segment marked as consumed).
        done_candidates: Dict[str, int] = {}

        def flush() -> int:
            if not batch:
                return 0
            n = self._store.apply_batch(batch, resolver=self._resolver)
            batch.clear()
            self._segment_done.update(done_candidates)
            done_candidates.clear()
            return n

        for i, path in enumerate(paths):
            last = i == len(paths) - 1
            done_seq = self._segment_done.get(path.name)
            if not last and done_seq is not None:
                head = max(head, done_seq)
                continue
            max_seq = self._tail_segment(path, last, batch)
            if max_seq is not None:
                head = max(head, max_seq)
                if not last:
                    done_candidates[path.name] = max_seq
            if len(batch) >= self._batch_max_events:
                applied += flush()
        applied += flush()
        self._segment_done.update(done_candidates)

        # Names that vanished were compacted; drop them from the skip
        # cache so it cannot grow without bound.
        live = {p.name for p in paths}
        for name in [n for n in self._segment_done if n not in live]:
            del self._segment_done[name]

        with self._state_lock:
            self._head_seq = max(self._head_seq, head)
            self._segments_tailed = len(paths)
            self._runs += 1
        self._record_ops()
        self._write_checkpoint()
        return applied

    def _tail_segment(
        self, path: Path, last: bool, batch: List[IngestEvent]
    ) -> Optional[int]:
        """Collect this segment's new events; returns its max seq seen.

        The final line of the final segment is allowed to be incomplete
        (no trailing newline — a writer is mid-append) or torn (CRC
        fails with nothing after it — a crash the WAL will truncate on
        reopen); both are simply left for a later poll. Anywhere else,
        damage is real corruption and raises.
        """
        after = self._store.applied_seq
        max_seq: Optional[int] = None
        try:
            fh = open(path, "rb")
        except FileNotFoundError:
            return None  # compacted between glob and open
        with fh:
            for raw in fh:
                if not raw.endswith(b"\n"):
                    if last and not fh.readline():
                        break  # mid-append tail; next poll gets it
                    raise WalCorruption(
                        f"unterminated record inside {path.name}"
                    )
                try:
                    event = WriteAheadLog._decode_line(raw)
                except WalCorruption:
                    if last and not fh.readline():
                        break  # torn tail; recoverable
                    raise
                max_seq = event.seq if max_seq is None else max(
                    max_seq, event.seq
                )
                if event.seq > after:
                    batch.append(event)
        return max_seq

    def _record_ops(self) -> None:
        """Snapshot pipe counters into ops — only when they moved."""
        if self._pipe is None:
            return
        stats = self._pipe.stats()
        key = (
            int(stats.get("accepted", 0)),
            int(stats.get("shed", 0)),
            int(stats.get("dropped", 0)),
        )
        if key == self._last_ops:
            return
        self._last_ops = key
        self._store.record_ops(stats)

    def _write_checkpoint(self) -> None:
        counts = self._store.counts()
        with self._state_lock:
            payload = {
                "applied_seq": counts["applied_seq"],
                "rows_ingested": counts["rows_ingested"],
                "segments_seen": self._segments_tailed,
                "wal_head_seq": self._head_seq,
                "wal_dir": str(self._wal_dir),
            }
        atomic_write_json(self._checkpoint_path, payload)

    def catch_up(self) -> int:
        """Poll until a pass applies nothing (offline/drain helper)."""
        total = 0
        while True:
            applied = self.run_once()
            total += applied
            if applied == 0:
                return total

    # -- background operation ------------------------------------------------

    def start(self) -> "SegmentTailer":
        if self._thread is not None:
            raise RuntimeError("tailer already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    self.run_once()
                except Exception as exc:  # noqa: BLE001 - keep tailing
                    self._last_error = f"{type(exc).__name__}: {exc}"
                self._stop.wait(self._poll_interval_s)

        self._thread = threading.Thread(
            target=loop, name="shoal-analytics-tailer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop the loop; with ``drain``, apply everything still
        unread so the store matches the WAL at shutdown."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
        if drain and not self._store.closed:
            self.catch_up()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def last_error(self) -> Optional[str]:
        return self._last_error

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Tailer progress for the metrics scrape (lag vs WAL head)."""
        counts = self._store.counts()
        with self._state_lock:
            head = max(self._head_seq, counts["applied_seq"])
            return {
                "segments_tailed": self._segments_tailed,
                "rows_ingested": counts["rows_ingested"],
                "events": counts["events"],
                "applied_seq": counts["applied_seq"],
                "wal_head_seq": head,
                "lag": head - counts["applied_seq"],
                "runs": self._runs,
                "running": self.running,
            }
