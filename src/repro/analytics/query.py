"""The analytics read surface: guarded SQL plus canned reports.

:class:`QueryEngine` answers :class:`~repro.api.contract.AnalyticsRequest`
payloads against an :class:`~repro.analytics.store.AnalyticsStore`. The
surface is read-only by construction, in layers:

1. the statement must be a *single* ``SELECT``/``WITH`` statement
   (``analytics_bad_sql`` otherwise);
2. it runs on a fresh ``mode=ro`` connection, so even a statement that
   slipped the allowlist cannot mutate the file;
3. an authorizer callback denies every operation except reads and
   function calls — DDL, DML, PRAGMA, and ``ATTACH`` all fail inside
   SQLite itself;
4. a progress handler enforces the request's time budget
   (``analytics_timeout``), and results are cut at the request's row
   limit (reported via ``truncated``).

With ``sample=True`` a temporary view named ``events`` is created over
the store's reservoir table before the statement runs; SQLite resolves
temp objects first, so the user's SQL transparently reads the sample —
the Logservatory pattern for iterating on an expensive query cheaply.
"""

from __future__ import annotations

import re
import sqlite3
import threading
import time
from typing import Any, Dict, List, Tuple

from repro.analytics.store import EVENT_COLUMNS, AnalyticsStore
from repro.api.contract import (
    AnalyticsRequest,
    AnalyticsResponse,
    ApiError,
)

__all__ = ["QueryEngine", "REPORT_SQL"]

#: Default wall-clock budget when the request carries no timeout_ms.
DEFAULT_TIMEOUT_MS = 2000.0

_READ_ONLY_HEAD = re.compile(r"^\s*(select|with)\b", re.IGNORECASE)

#: Canned reports, each plain allowlisted SQL over the store schema.
REPORT_SQL: Dict[str, str] = {
    # Hot queries of the newest ingested day, busiest first.
    "trending": (
        "SELECT query_id, MAX(query_text) AS query_text, "
        "COUNT(*) AS n_events, SUM(n_clicks) AS n_clicks "
        "FROM events WHERE day = (SELECT MAX(day) FROM events) "
        "GROUP BY query_id "
        "ORDER BY n_events DESC, query_id"
    ),
    # Per-day traffic aggregates from the incremental rollup.
    "daily": (
        "SELECT day, n_events, n_clicks FROM daily_rollup ORDER BY day"
    ),
    # Per-day, per-topic aggregates (topic -1 = unattributed).
    "topics": (
        "SELECT day, topic_id, n_events, n_clicks FROM topic_rollup "
        "ORDER BY day, n_events DESC, topic_id"
    ),
    # Shed-rate breakdown from consecutive ingest-pipe snapshots.
    "shed": (
        "WITH deltas AS ("
        "  SELECT ts,"
        "         accepted - LAG(accepted, 1, 0) OVER w AS d_accepted,"
        "         shed - LAG(shed, 1, 0) OVER w AS d_shed,"
        "         dropped - LAG(dropped, 1, 0) OVER w AS d_dropped"
        "  FROM ops WINDOW w AS (ORDER BY id)) "
        "SELECT ts, d_accepted, d_shed, d_dropped,"
        "       CASE WHEN d_accepted + d_shed > 0"
        "            THEN 1.0 * d_shed / (d_accepted + d_shed)"
        "            ELSE 0.0 END AS shed_rate "
        "FROM deltas ORDER BY ts"
    ),
}

# sqlite3 authorizer action codes the read surface permits.
_ALLOWED_ACTIONS = {
    sqlite3.SQLITE_SELECT,
    sqlite3.SQLITE_READ,
    sqlite3.SQLITE_FUNCTION,
    sqlite3.SQLITE_RECURSIVE,
}


def _authorize(action, *_args) -> int:
    if action in _ALLOWED_ACTIONS:
        return sqlite3.SQLITE_OK
    return sqlite3.SQLITE_DENY


class QueryEngine:
    """Serve analytics requests against one store, safely and bounded."""

    def __init__(
        self,
        store: AnalyticsStore,
        *,
        default_timeout_ms: float = DEFAULT_TIMEOUT_MS,
    ):
        if default_timeout_ms <= 0:
            raise ValueError(
                f"default_timeout_ms must be > 0, got {default_timeout_ms}"
            )
        self._store = store
        self._default_timeout_ms = default_timeout_ms
        self._lock = threading.Lock()
        self._served = 0
        self._failed = 0

    @property
    def store(self) -> AnalyticsStore:
        return self._store

    # -- the entry point -----------------------------------------------------

    def query(self, request: AnalyticsRequest) -> AnalyticsResponse:
        """Validate, guard, execute; every failure is a stable code."""
        try:
            request.validate()
            if self._store.closed:
                raise ApiError(
                    "analytics_unavailable", "the analytics store is closed"
                )
            if request.report is not None:
                sql = REPORT_SQL[request.report]
            else:
                sql = self._guard(request.sql)
            response = self._execute(sql, request)
        except ApiError:
            with self._lock:
                self._failed += 1
            raise
        with self._lock:
            self._served += 1
        return response

    def report(self, name: str, *, limit: int = 100) -> AnalyticsResponse:
        """Canned-report convenience used by the CLI and examples."""
        return self.query(AnalyticsRequest(report=name, limit=limit))

    # -- guarding ------------------------------------------------------------

    @staticmethod
    def _guard(sql: str) -> str:
        """The statement allowlist: one SELECT/WITH, nothing else."""
        stripped = sql.strip().rstrip(";").strip()
        if not stripped:
            raise ApiError("analytics_bad_sql", "empty statement")
        if ";" in stripped:
            raise ApiError(
                "analytics_bad_sql",
                "multiple statements are not allowed (one SELECT per "
                "request)",
            )
        if not _READ_ONLY_HEAD.match(stripped):
            raise ApiError(
                "analytics_bad_sql",
                "only SELECT (or WITH ... SELECT) statements are allowed",
            )
        return stripped

    # -- execution -----------------------------------------------------------

    def _execute(
        self, sql: str, request: AnalyticsRequest
    ) -> AnalyticsResponse:
        timeout_ms = (
            request.timeout_ms
            if request.timeout_ms is not None
            else self._default_timeout_ms
        )
        t0 = time.perf_counter()
        deadline = t0 + timeout_ms / 1000.0
        try:
            conn = self._store.connect_readonly()
        except sqlite3.Error as exc:
            raise ApiError(
                "analytics_unavailable",
                f"cannot open the analytics store: {exc}",
            )
        try:
            if request.sample:
                # Temp objects shadow main-database names, so the
                # user's SQL reads the reservoir through the same
                # 'events' relation. Installed before the authorizer:
                # this CREATE is ours, not the request's.
                conn.execute(
                    "CREATE TEMP VIEW events AS SELECT "
                    + ", ".join(EVENT_COLUMNS)
                    + " FROM sample"
                )
            conn.set_authorizer(_authorize)
            conn.set_progress_handler(
                lambda: 1 if time.perf_counter() > deadline else 0, 2000
            )
            try:
                cursor = conn.execute(sql)
                raw_rows = cursor.fetchmany(request.limit + 1)
            except sqlite3.OperationalError as exc:
                if "interrupted" in str(exc).lower():
                    raise ApiError(
                        "analytics_timeout",
                        f"query exceeded its {timeout_ms:.0f}ms budget",
                    )
                raise ApiError("analytics_bad_sql", str(exc))
            except sqlite3.DatabaseError as exc:
                # "not authorized" from the authorizer lands here.
                raise ApiError("analytics_bad_sql", str(exc))
            except sqlite3.Warning as exc:
                raise ApiError("analytics_bad_sql", str(exc))
            columns = tuple(
                d[0] for d in (cursor.description or ())
            )
            truncated = len(raw_rows) > request.limit
            rows = _jsonable(raw_rows[: request.limit])
        finally:
            conn.close()
        return AnalyticsResponse(
            columns=columns,
            rows=rows,
            truncated=truncated,
            sampled=request.sample,
            elapsed_ms=(time.perf_counter() - t0) * 1000.0,
        )

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "queries_served": self._served,
                "queries_failed": self._failed,
            }


def _jsonable(raw_rows: List[tuple]) -> Tuple[Tuple, ...]:
    """SQLite rows as JSON-scalar tuples (bytes decoded defensively)."""
    out = []
    for row in raw_rows:
        out.append(
            tuple(
                cell.decode("utf-8", errors="replace")
                if isinstance(cell, (bytes, bytearray, memoryview))
                else cell
                for cell in row
            )
        )
    return tuple(out)
