"""Cross-generation taxonomy drift: should this rollout happen at all?

Every micro-batch produces a model generation, but a trickle of
repeat traffic often yields a taxonomy whose *partition of entities
into topics* is identical (or nearly) to what is already serving —
swapping it costs a reference-index build, per-tier refreshes, and a
fleet-wide cache invalidation for zero reader-visible change.

:class:`DriftMonitor` quantifies the change between two generations'
taxonomies and answers "is this rollout trivial?". The comparison is
over the *partition*, not topic ids — refits renumber topics freely, so
two taxonomies are compared by asking, per entity, whether the set of
entities it shares a (leaf) topic with changed. That makes the metric
invariant under relabeling and sensitive to exactly what serving
answers depend on: which entities cluster together.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional

__all__ = ["DriftMonitor", "DriftStats"]


@dataclass(frozen=True)
class DriftStats:
    """The measured change between two generations' taxonomies."""

    prev_generation: int
    new_generation: int
    n_topics_prev: int
    n_topics_new: int
    n_entities: int
    entities_changed: int
    changed_fraction: float

    def trivial(self, threshold: float = 0.0) -> bool:
        """True when the rollout would be reader-invisible (or nearly):
        the topic count is stable and at most ``threshold`` of entities
        changed cluster membership."""
        return (
            self.n_topics_prev == self.n_topics_new
            and self.changed_fraction <= threshold
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "prev_generation": self.prev_generation,
            "new_generation": self.new_generation,
            "n_topics_prev": self.n_topics_prev,
            "n_topics_new": self.n_topics_new,
            "n_entities": self.n_entities,
            "entities_changed": self.entities_changed,
            "changed_fraction": self.changed_fraction,
        }


def _membership(model) -> Dict[int, FrozenSet[int]]:
    """entity -> the frozen set of entities sharing its leaf topic."""
    taxonomy = model.taxonomy
    groups: Dict[int, list] = {}
    for entity_id in taxonomy.placed_entities():
        topic = taxonomy.topic_of_entity(entity_id)
        groups.setdefault(topic.topic_id, []).append(entity_id)
    member_of: Dict[int, FrozenSet[int]] = {}
    for members in groups.values():
        cluster = frozenset(members)
        for entity_id in members:
            member_of[entity_id] = cluster
    return member_of


class DriftMonitor:
    """Assess generation-over-generation drift; gate trivial rollouts.

    ``threshold`` is the changed-entity fraction at or below which a
    rollout is considered trivial (0.0 = only skip when the partition
    is *identical*). The monitor records every assessment so the
    metrics scrape can show what the gate has been deciding.
    """

    def __init__(self, *, threshold: float = 0.0):
        if not 0.0 <= threshold < 1.0:
            raise ValueError(
                f"threshold must be in [0, 1), got {threshold}"
            )
        self.threshold = threshold
        self._lock = threading.Lock()
        self._assessments = 0
        self._trivial = 0
        self._last: Optional[DriftStats] = None

    def assess(self, prev_generation, new_generation) -> DriftStats:
        """Measure drift between two generations (or bare models)."""
        prev_model = getattr(prev_generation, "model", prev_generation)
        new_model = getattr(new_generation, "model", new_generation)
        prev_members = _membership(prev_model)
        new_members = _membership(new_model)
        universe = set(prev_members) | set(new_members)
        changed = sum(
            1
            for entity_id in universe
            if prev_members.get(entity_id) != new_members.get(entity_id)
        )
        stats = DriftStats(
            prev_generation=getattr(prev_generation, "number", -1),
            new_generation=getattr(new_generation, "number", -1),
            n_topics_prev=len(prev_model.taxonomy),
            n_topics_new=len(new_model.taxonomy),
            n_entities=len(universe),
            entities_changed=changed,
            changed_fraction=(changed / len(universe)) if universe else 0.0,
        )
        with self._lock:
            self._assessments += 1
            if stats.trivial(self.threshold):
                self._trivial += 1
            self._last = stats
        return stats

    def should_skip(self, prev_generation, new_generation) -> bool:
        """True when rolling out ``new`` over ``prev`` would be trivial."""
        return self.assess(prev_generation, new_generation).trivial(
            self.threshold
        )

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = {
                "threshold": self.threshold,
                "assessments": self._assessments,
                "trivial": self._trivial,
            }
            if self._last is not None:
                out["last"] = self._last.to_dict()
            return out
