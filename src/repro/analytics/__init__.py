"""The HTAP analytics tier: a queryable SQLite replica of the WAL.

The write path stays untouched — clients keep appending to the
write-ahead log through the ingest pipe — while this package maintains
an isolated analytical copy and serves it through the same typed
gateway contract as every other read surface:

* :mod:`repro.analytics.store` — :class:`AnalyticsStore`, a WAL-mode
  SQLite file with the raw events table, incrementally maintained
  per-day / per-topic / per-query rollups, ingest-pipe ops snapshots,
  and a deterministic reservoir sample;
* :mod:`repro.analytics.tailer` — :class:`SegmentTailer`, the
  seq-idempotent WAL consumer that feeds the store and checkpoints its
  progress in a sidecar next to the database;
* :mod:`repro.analytics.query` — :class:`QueryEngine`, the guarded
  read-only SQL surface (single-SELECT allowlist, authorizer, row and
  time limits, optional sampling) plus canned reports;
* :mod:`repro.analytics.drift` — :class:`DriftMonitor`, the
  cross-generation taxonomy-drift gate the streaming updater consults
  to skip trivially-different rollouts.

Wire shape: ``GET/POST /v1/analytics`` with
:class:`~repro.api.contract.AnalyticsRequest` /
:class:`~repro.api.contract.AnalyticsResponse`, stable error codes
``analytics_bad_sql`` (400), ``analytics_unavailable`` (503), and
``analytics_timeout`` (504).
"""

from repro.analytics.drift import DriftMonitor, DriftStats
from repro.analytics.query import QueryEngine, REPORT_SQL
from repro.analytics.store import AnalyticsStore
from repro.analytics.tailer import SegmentTailer, make_topic_resolver

__all__ = [
    "AnalyticsStore",
    "DriftMonitor",
    "DriftStats",
    "QueryEngine",
    "REPORT_SQL",
    "SegmentTailer",
    "make_topic_resolver",
]
