"""The analytics store: a WAL-mode SQLite replica of the event stream.

This is the HTAP isolation boundary (the Polynesia shape): the
transactional side appends to the write-ahead log and keeps serving;
the analytics side — this store plus the
:class:`~repro.analytics.tailer.SegmentTailer` feeding it — lives in
its own SQLite file and never touches a serving structure, so analytics
queries cannot contend with read-path latency.

Schema (all maintained incrementally, one transaction per tailed
batch)::

    meta(key, value)                 -- applied_seq, stream_count, schema
    events(seq PK, day, user_id, query_id, n_clicks, clicked,
           query_text, topic_id)     -- one row per WAL event
    daily_rollup(day PK, n_events, n_clicks)
    topic_rollup(day, topic_id, n_events, n_clicks)
    query_rollup(day, query_id, n_events, n_clicks)
    ops(id PK, ts, accepted, shed, dropped, queue_depth)
    sample(slot PK, ...events columns)  -- fixed-size reservoir

**Exactness.** ``meta.applied_seq`` commits in the *same transaction*
as the event rows it covers, so a process killed anywhere leaves the
store describing exactly the WAL prefix it durably holds — the tailer
resumes from ``applied_seq`` and can neither lose nor double an event.
Within a transaction, seq (the events PRIMARY KEY) is a second line of
defence: re-applying an already-present seq is ignored *before* any
rollup is touched.

**Reservoir sample.** ``sample`` holds a uniform fixed-capacity sample
of the full event stream (Vitter's algorithm R). Replacement decisions
are derived deterministically from ``(seed, seq)``, so a crash/replay
reaches the same reservoir state it would have without the crash.
"""

from __future__ import annotations

import json
import random
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional, Union

from repro.streaming.wal import IngestEvent

__all__ = ["AnalyticsStore", "EVENT_COLUMNS"]

#: The relational shape of one event, shared by ``events`` and
#: ``sample`` (the reservoir must shadow ``events`` column-for-column
#: for sampled SQL to run unchanged).
EVENT_COLUMNS = (
    "seq", "day", "user_id", "query_id", "n_clicks", "clicked",
    "query_text", "topic_id",
)

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    seq        INTEGER PRIMARY KEY,
    day        INTEGER NOT NULL,
    user_id    INTEGER NOT NULL,
    query_id   INTEGER NOT NULL,
    n_clicks   INTEGER NOT NULL,
    clicked    TEXT    NOT NULL,
    query_text TEXT,
    topic_id   INTEGER NOT NULL DEFAULT -1
);
CREATE INDEX IF NOT EXISTS idx_events_day ON events(day);
CREATE INDEX IF NOT EXISTS idx_events_query ON events(query_id);
CREATE TABLE IF NOT EXISTS daily_rollup (
    day      INTEGER PRIMARY KEY,
    n_events INTEGER NOT NULL,
    n_clicks INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS topic_rollup (
    day      INTEGER NOT NULL,
    topic_id INTEGER NOT NULL,
    n_events INTEGER NOT NULL,
    n_clicks INTEGER NOT NULL,
    PRIMARY KEY (day, topic_id)
);
CREATE TABLE IF NOT EXISTS query_rollup (
    day      INTEGER NOT NULL,
    query_id INTEGER NOT NULL,
    n_events INTEGER NOT NULL,
    n_clicks INTEGER NOT NULL,
    PRIMARY KEY (day, query_id)
);
CREATE TABLE IF NOT EXISTS ops (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    ts          REAL    NOT NULL,
    accepted    INTEGER NOT NULL,
    shed        INTEGER NOT NULL,
    dropped     INTEGER NOT NULL,
    queue_depth INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS sample (
    slot       INTEGER PRIMARY KEY,
    seq        INTEGER NOT NULL,
    day        INTEGER NOT NULL,
    user_id    INTEGER NOT NULL,
    query_id   INTEGER NOT NULL,
    n_clicks   INTEGER NOT NULL,
    clicked    TEXT    NOT NULL,
    query_text TEXT,
    topic_id   INTEGER NOT NULL DEFAULT -1
);
"""

_ROLLUPS = (
    ("daily_rollup", "day", lambda ev, topic: (ev.day,)),
    ("topic_rollup", "day, topic_id", lambda ev, topic: (ev.day, topic)),
    ("query_rollup", "day, query_id", lambda ev, topic: (ev.day, ev.query_id)),
)


class AnalyticsStore:
    """One SQLite file holding the queryable replica of the WAL.

    The single writer is whoever calls :meth:`apply_batch` (the tailer
    thread in a live deployment, the CLI in offline mode); readers open
    their own connections via :meth:`connect_readonly` — SQLite's WAL
    journal mode lets them run against a live writer without blocking
    it.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        reservoir_capacity: int = 512,
        seed: int = 0,
    ):
        if reservoir_capacity < 1:
            raise ValueError(
                f"reservoir_capacity must be >= 1, got {reservoir_capacity}"
            )
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._capacity = reservoir_capacity
        self._seed = seed
        self._lock = threading.Lock()
        self._closed = False
        # The writer connection crosses threads (constructed on the
        # main thread, driven by the tailer's daemon thread); the lock
        # serialises every use. isolation_level=None puts sqlite3 in
        # autocommit mode so apply_batch's explicit BEGIN/COMMIT is the
        # only transaction boundary.
        self._conn = sqlite3.connect(
            str(self._path), check_same_thread=False, isolation_level=None
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=5000")
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR IGNORE INTO meta VALUES ('schema', ?)",
            (_SCHEMA_VERSION,),
        )
        self._conn.execute(
            "INSERT OR IGNORE INTO meta VALUES ('applied_seq', 0)"
        )
        self._conn.execute(
            "INSERT OR IGNORE INTO meta VALUES ('stream_count', 0)"
        )
        self._applied_seq = self._meta("applied_seq")
        self._stream_count = self._meta("stream_count")

    def _meta(self, key: str) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return 0 if row is None else int(row[0])

    # -- identity ------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def applied_seq(self) -> int:
        """The WAL seq this store durably covers (crash-exact)."""
        with self._lock:
            return self._applied_seq

    @property
    def closed(self) -> bool:
        return self._closed

    # -- the one write path --------------------------------------------------

    def apply_batch(
        self,
        events: Iterable[IngestEvent],
        *,
        resolver: Optional[Callable[[IngestEvent], int]] = None,
    ) -> int:
        """Fold a batch of WAL events into the store, atomically.

        Events at or below ``applied_seq`` are skipped (idempotent
        replay); everything newer lands in ``events``, the three rollup
        tables, and possibly the reservoir — all in one transaction
        with the ``applied_seq`` advance, which is what makes a crash
        at any point exact. Returns the number of newly applied events.
        """
        with self._lock:
            if self._closed:
                raise ValueError("analytics store is closed")
            applied = 0
            try:
                self._conn.execute("BEGIN")
                for event in events:
                    if event.seq <= self._applied_seq:
                        continue
                    topic = -1 if resolver is None else int(resolver(event))
                    self._insert_event(event, topic)
                    self._applied_seq = event.seq
                    applied += 1
                self._conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'applied_seq'",
                    (self._applied_seq,),
                )
                self._conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'stream_count'",
                    (self._stream_count,),
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                # The in-memory cursors must match the durable state.
                self._applied_seq = self._meta("applied_seq")
                self._stream_count = self._meta("stream_count")
                raise
            return applied

    def _insert_event(self, event: IngestEvent, topic: int) -> None:
        n_clicks = len(event.clicked_entity_ids)
        self._conn.execute(
            "INSERT INTO events VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                event.seq, event.day, event.user_id, event.query_id,
                n_clicks, json.dumps(list(event.clicked_entity_ids)),
                event.query_text, topic,
            ),
        )
        for table, keys, key_of in _ROLLUPS:
            key = key_of(event, topic)
            marks = ", ".join("?" for _ in key)
            self._conn.execute(
                f"INSERT INTO {table} VALUES ({marks}, 1, ?) "
                f"ON CONFLICT({keys}) DO UPDATE SET "
                f"n_events = n_events + 1, "
                f"n_clicks = n_clicks + excluded.n_clicks",
                key + (n_clicks,),
            )
        self._reservoir_offer(event, topic, n_clicks)

    def _reservoir_offer(
        self, event: IngestEvent, topic: int, n_clicks: int
    ) -> None:
        """Algorithm R with decisions keyed on (seed, seq): replaying
        the same stream — with or without crashes between — always
        produces the same reservoir."""
        self._stream_count += 1
        n = self._stream_count
        if n <= self._capacity:
            slot = n - 1
        else:
            j = random.Random((self._seed << 32) ^ event.seq).randrange(n)
            if j >= self._capacity:
                return
            slot = j
        self._conn.execute(
            "INSERT OR REPLACE INTO sample VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                slot, event.seq, event.day, event.user_id, event.query_id,
                n_clicks, json.dumps(list(event.clicked_entity_ids)),
                event.query_text, topic,
            ),
        )

    def record_ops(self, pipe_stats: Dict[str, Any]) -> None:
        """Snapshot ingest-pipe counters into the ``ops`` table.

        Sheds never reach the WAL (no seq is assigned), so shed-rate
        breakdowns can only come from periodic counter snapshots; the
        canned ``shed`` report differences consecutive rows.
        """
        with self._lock:
            if self._closed:
                raise ValueError("analytics store is closed")
            self._conn.execute(
                "INSERT INTO ops (ts, accepted, shed, dropped, "
                "queue_depth) VALUES (?, ?, ?, ?, ?)",
                (
                    time.time(),
                    int(pipe_stats.get("accepted", 0)),
                    int(pipe_stats.get("shed", 0)),
                    int(pipe_stats.get("dropped", 0)),
                    int(pipe_stats.get("queue_depth", 0)),
                ),
            )

    # -- reads ---------------------------------------------------------------

    def connect_readonly(self) -> sqlite3.Connection:
        """A fresh read-only connection for one analytics query.

        Callers own the connection's lifetime. ``mode=ro`` keeps even a
        hostile statement from mutating the file; WAL mode lets the
        reader proceed while the tailer commits.
        """
        conn = sqlite3.connect(
            f"file:{self._path}?mode=ro", uri=True, check_same_thread=False
        )
        conn.execute("PRAGMA busy_timeout=2000")
        return conn

    def event_count(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT COUNT(*) FROM events").fetchone()
            return int(row[0])

    def counts(self) -> Dict[str, Any]:
        """Row counts and coverage, cheap enough for a metrics scrape."""
        with self._lock:
            events, lo, hi = self._conn.execute(
                "SELECT COUNT(*), MIN(day), MAX(day) FROM events"
            ).fetchone()
            return {
                "events": int(events),
                "min_day": lo,
                "max_day": hi,
                "applied_seq": self._applied_seq,
                "rows_ingested": self._stream_count,
            }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._conn.close()
            self._closed = True

    def __enter__(self) -> "AnalyticsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
