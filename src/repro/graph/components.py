"""Connected components over :class:`SparseGraph`.

Used to bound topic sizes (each HAC merge forest lives inside one
component) and by tests asserting structural invariants.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.sparse import SparseGraph

__all__ = ["connected_components", "component_labels"]


def connected_components(graph: SparseGraph) -> List[List[int]]:
    """All connected components, each a sorted vertex list.

    Components are ordered by their smallest vertex id, so output is
    deterministic. Iterative DFS keeps deep graphs from hitting the
    recursion limit.
    """
    seen = set()
    components: List[List[int]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        comp = []
        stack = [start]
        seen.add(start)
        while stack:
            v = stack.pop()
            comp.append(v)
            for u in graph.neighbor_ids(v):
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        components.append(sorted(comp))
    return components


def component_labels(graph: SparseGraph) -> Dict[int, int]:
    """Vertex → component index (component order as above)."""
    labels: Dict[int, int] = {}
    for i, comp in enumerate(connected_components(graph)):
        for v in comp:
            labels[v] = i
    return labels
