"""Newman–Girvan modularity (paper's clustering quality benchmark).

Paper Sec. 2.2: "We consider the graph modularity [2] as a benchmarking
metric to evaluate the effectiveness of parallel HAC. The results have
shown that Parallel HAC consistently produces clusters with modularity
> 0.3." Reference [2] is Newman & Girvan 2004; we implement the
weighted generalisation:

    Q = (1/2m) * Σ_ij [A_ij − k_i·k_j/(2m)] · δ(c_i, c_j)

where ``m`` is total edge weight, ``A`` the weighted adjacency, ``k_i``
the weighted degree (strength) of vertex i, and ``c_i`` its community.
"""

from __future__ import annotations

from typing import Dict, Mapping


from repro.graph.sparse import SparseGraph

__all__ = ["modularity", "weighted_modularity", "partition_from_labels"]


def partition_from_labels(labels: Mapping[int, int]) -> Dict[int, list]:
    """Group vertex ids by community label."""
    groups: Dict[int, list] = {}
    for v, c in labels.items():
        groups.setdefault(c, []).append(v)
    return {c: sorted(vs) for c, vs in groups.items()}


def weighted_modularity(graph: SparseGraph, labels: Mapping[int, int]) -> float:
    """Weighted Newman–Girvan modularity of a vertex partition.

    ``labels`` maps every vertex of ``graph`` to a community id.
    Isolated vertices contribute nothing (their strength is zero).
    Returns 0.0 for an edgeless graph by convention.
    """
    for v in graph.vertices():
        if v not in labels:
            raise ValueError(f"vertex {v} has no community label")
    two_m = 2.0 * graph.total_weight()
    if two_m == 0.0:
        return 0.0

    # Q = Σ_c [ w_in(c)/m·... ] computed community-wise:
    #   Q = Σ_c ( W_c / m_tot_pairs ... )
    # Using the standard per-community form:
    #   Q = Σ_c [ Σ_in(c)/(2m) − (Σ_tot(c)/(2m))² ]
    # where Σ_in(c) counts internal weight twice (both directions) and
    # Σ_tot(c) is the summed strength of the community's vertices.
    internal: Dict[int, float] = {}
    strength: Dict[int, float] = {}
    for v in graph.vertices():
        c = labels[v]
        strength[c] = strength.get(c, 0.0) + graph.weighted_degree(v)
    for u, v, w in graph.edges():
        if labels[u] == labels[v]:
            c = labels[u]
            internal[c] = internal.get(c, 0.0) + 2.0 * w

    q = 0.0
    for c, tot in strength.items():
        q += internal.get(c, 0.0) / two_m - (tot / two_m) ** 2
    return float(q)


def modularity(graph: SparseGraph, labels: Mapping[int, int]) -> float:
    """Alias for :func:`weighted_modularity` (the paper's metric)."""
    return weighted_modularity(graph, labels)
