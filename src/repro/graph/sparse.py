"""Sparse undirected weighted graph.

The item entity graph is sparse by construction (paper Challenge 1:
"we need to filter out the values in S that are too low"). This module
provides the adjacency structure every algorithm in the library shares:
an undirected weighted graph over dense integer vertex ids with O(1)
neighbour access, edge iteration, and cheap structural edits (needed by
HAC merging).

Design notes
------------
* adjacency is a ``dict[int, dict[int, float]]`` — merge-heavy
  workloads (HAC contracts thousands of vertices) need cheap vertex
  deletion, which CSR cannot offer;
* edges are stored symmetrically; the canonical edge key is
  ``(min(u, v), max(u, v))``;
* self-loops are rejected: a similarity of an entity with itself is
  meaningless in this model.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


__all__ = ["SparseGraph"]


class SparseGraph:
    """Undirected weighted graph with dict-of-dict adjacency."""

    def __init__(self, n_vertices: int = 0):
        if n_vertices < 0:
            raise ValueError("n_vertices must be >= 0")
        self._adj: Dict[int, Dict[int, float]] = {v: {} for v in range(n_vertices)}
        self._n_edges = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        edges: Iterable[Tuple[int, int, float]],
    ) -> "SparseGraph":
        """Build a graph from (u, v, weight) triples.

        Duplicate edges keep the *maximum* weight seen — convenient for
        similarity graphs where multiple evidence sources may propose
        the same pair.
        """
        g = cls(n_vertices)
        for u, v, w in edges:
            if g.has_edge(u, v):
                w = max(w, g.weight(u, v))
            g.set_edge(u, v, w)
        return g

    def copy(self) -> "SparseGraph":
        g = SparseGraph(0)
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        g._n_edges = self._n_edges
        return g

    # -- vertices ------------------------------------------------------------

    def add_vertex(self, v: int) -> None:
        """Add an isolated vertex (no-op if present)."""
        if v < 0:
            raise ValueError("vertex ids must be non-negative")
        self._adj.setdefault(v, {})

    def remove_vertex(self, v: int) -> None:
        """Remove ``v`` and all incident edges."""
        nbrs = self._adj.pop(v)
        for u in nbrs:
            del self._adj[u][v]
        self._n_edges -= len(nbrs)

    def has_vertex(self, v: int) -> bool:
        return v in self._adj

    def vertices(self) -> List[int]:
        return sorted(self._adj)

    @property
    def n_vertices(self) -> int:
        return len(self._adj)

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def weighted_degree(self, v: int) -> float:
        """Sum of incident edge weights (the strength of ``v``)."""
        return float(sum(self._adj[v].values()))

    # -- edges ---------------------------------------------------------------

    def set_edge(self, u: int, v: int, weight: float) -> None:
        """Insert or update the undirected edge (u, v)."""
        if u == v:
            raise ValueError(f"self-loop on vertex {u} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._n_edges += 1
        self._adj[u][v] = float(weight)
        self._adj[v][u] = float(weight)

    def remove_edge(self, u: int, v: int) -> None:
        if v not in self._adj.get(u, {}):
            raise KeyError(f"edge ({u}, {v}) not in graph")
        del self._adj[u][v]
        del self._adj[v][u]
        self._n_edges -= 1

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj.get(u, {})

    def weight(self, u: int, v: int, default: float = 0.0) -> float:
        """Weight of (u, v); ``default`` if the edge is absent.

        The default of 0.0 mirrors the paper's convention
        "S(A, C) = 0 if the similarity between A and C is unavailable".
        """
        return self._adj.get(u, {}).get(v, default)

    def neighbors(self, v: int) -> Dict[int, float]:
        """Mapping neighbour → weight (a direct view copy)."""
        return dict(self._adj[v])

    def neighbor_ids(self, v: int) -> List[int]:
        return sorted(self._adj[v])

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate canonical (u, v, w) with u < v, in sorted order."""
        for u in sorted(self._adj):
            for v in sorted(self._adj[u]):
                if u < v:
                    yield (u, v, self._adj[u][v])

    def edge_list(self) -> List[Tuple[int, int, float]]:
        return list(self.edges())

    def total_weight(self) -> float:
        """Sum of all edge weights (each undirected edge once)."""
        return float(sum(w for _, _, w in self.edges()))

    def max_edge(self) -> Optional[Tuple[int, int, float]]:
        """The globally heaviest edge, or ``None`` for an edgeless graph.

        Ties break on the canonical (u, v) key so the result is
        deterministic.
        """
        best: Optional[Tuple[int, int, float]] = None
        for u, v, w in self.edges():
            if best is None or w > best[2] or (w == best[2] and (u, v) < best[:2]):
                best = (u, v, w)
        return best

    # -- bulk views ------------------------------------------------------------

    def adjacency_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return parallel arrays (us, vs, ws) of canonical edges."""
        e = self.edge_list()
        if not e:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=float),
            )
        us, vs, ws = zip(*e)
        return (
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
            np.asarray(ws, dtype=float),
        )

    def subgraph(self, keep: Sequence[int]) -> "SparseGraph":
        """Induced subgraph on ``keep`` (original vertex ids preserved)."""
        keep_set = set(keep)
        g = SparseGraph(0)
        for v in keep_set:
            if v in self._adj:
                g.add_vertex(v)
        for u, v, w in self.edges():
            if u in keep_set and v in keep_set:
                g.set_edge(u, v, w)
        return g

    def __repr__(self) -> str:
        return f"SparseGraph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"
