"""Item entity graph builder (paper Sec. 2.1, Eq. 1–3).

Combines query-driven Jaccard similarity and content-driven embedding
similarity into the sparse weighted graph Parallel HAC clusters:

* ``Sq(u, v)`` — Jaccard of the query sets of u and v (Eq. 1),
* ``Sc(u, v)`` — mean pairwise shifted cosine of title word vectors
  (Eq. 2, computed in factorised O(|Vu|+|Vv|) form),
* ``S = α·Sq + (1-α)·Sc`` with α = 0.7 (Eq. 3),
* sparsification: only entity pairs that co-occur under at least one
  query are candidates, edges with ``S`` below ``min_similarity`` are
  dropped, and each vertex keeps at most ``max_neighbors`` strongest
  edges ("one item entity should have only a few neighbor entities").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import check_positive, check_probability
from repro.graph.bipartite import QueryItemGraph
from repro.graph.sparse import SparseGraph
from repro.text.similarity import entity_embedding
from repro.text.tokenizer import Tokenizer
from repro.text.word2vec import WordEmbeddings

__all__ = ["EntityGraphConfig", "EntityGraphBuilder", "build_entity_graph"]


@dataclass(frozen=True)
class EntityGraphConfig:
    """Knobs of Eq. 3 and the sparsification policy.

    ``alpha`` is the paper's α (0.7 in the demonstration).
    ``min_similarity`` is the pruning threshold creating sparsity
    (Challenge 1); ``max_neighbors`` caps vertex degree; and
    ``min_shared_queries`` requires that many common queries before a
    pair is even scored (cheap pre-filter against noise clicks).

    ``candidate_source`` selects how candidate pairs are enumerated:
    ``"coclick"`` (exact: all pairs sharing a query) or ``"lsh"``
    (MinHash LSH over query sets — bounded cost when hub queries make
    exact enumeration quadratic; see :mod:`repro.graph.minhash`).
    ``lsh_bands``/``lsh_rows`` shape the LSH S-curve.
    """

    alpha: float = 0.7
    min_similarity: float = 0.35
    max_neighbors: int = 20
    min_shared_queries: int = 1
    candidate_source: str = "coclick"
    lsh_bands: int = 32
    lsh_rows: int = 2
    lsh_seed: int = 0

    def __post_init__(self) -> None:
        check_probability("alpha", self.alpha)
        check_probability("min_similarity", self.min_similarity)
        check_positive("max_neighbors", self.max_neighbors)
        check_positive("min_shared_queries", self.min_shared_queries)
        if self.candidate_source not in ("coclick", "lsh"):
            raise ValueError(
                "candidate_source must be 'coclick' or 'lsh', "
                f"got {self.candidate_source!r}"
            )
        check_positive("lsh_bands", self.lsh_bands)
        check_positive("lsh_rows", self.lsh_rows)


class EntityGraphBuilder:
    """Builds the item entity graph from bipartite graph + embeddings.

    The builder is reusable across windows: construct once with the
    similarity machinery, call :meth:`build` per bipartite snapshot.
    """

    def __init__(
        self,
        embeddings: WordEmbeddings,
        tokenizer: Optional[Tokenizer] = None,
        config: EntityGraphConfig = EntityGraphConfig(),
    ):
        self._embeddings = embeddings
        self._tokenizer = tokenizer or Tokenizer()
        self._config = config

    @property
    def config(self) -> EntityGraphConfig:
        return self._config

    # -- similarity kernels ------------------------------------------------

    @staticmethod
    def query_similarity(qu: FrozenSet[int], qv: FrozenSet[int]) -> float:
        """Eq. 1: Jaccard of the two query sets."""
        if not qu and not qv:
            return 0.0
        inter = len(qu & qv)
        if inter == 0:
            return 0.0
        return inter / len(qu | qv)

    def content_similarity_vectors(
        self, titles: Sequence[str]
    ) -> np.ndarray:
        """Mean unit title vector per entity (the Eq. 2 statistic)."""
        tok = self._tokenizer
        emb = self._embeddings
        return np.stack(
            [entity_embedding(emb, tok.tokenize(t)) for t in titles]
        )

    def combined_similarity(
        self,
        qu: FrozenSet[int],
        qv: FrozenSet[int],
        mean_u: np.ndarray,
        mean_v: np.ndarray,
    ) -> float:
        """Eq. 3 on precomputed statistics."""
        sq = self.query_similarity(qu, qv)
        if mean_u.any() and mean_v.any():
            sc = 0.5 + 0.5 * float(np.dot(mean_u, mean_v))
        else:
            sc = 0.5
        a = self._config.alpha
        return a * sq + (1.0 - a) * sc

    # -- graph construction ----------------------------------------------------

    def build(
        self,
        bipartite: QueryItemGraph,
        titles: Dict[int, str],
    ) -> SparseGraph:
        """Construct the sparse item entity graph.

        ``titles`` maps entity_id → title for every entity appearing in
        the bipartite graph (entities without clicks are isolated and
        excluded, as in production: an item nobody searches has no
        query evidence to place it).
        """
        cfg = self._config
        entity_ids = bipartite.entity_ids()
        query_sets = bipartite.entity_query_sets()

        # Precompute mean title vectors once per entity.
        tok = self._tokenizer
        emb = self._embeddings
        means: Dict[int, np.ndarray] = {}
        for e in entity_ids:
            title = titles.get(e, "")
            means[e] = entity_embedding(emb, tok.tokenize(title))

        if cfg.candidate_source == "lsh":
            candidates = self._lsh_candidates(query_sets)
        else:
            candidates = self._coclick_candidates(bipartite)

        scored: List[Tuple[int, int, float]] = []
        for u, v in candidates:
            shared = len(query_sets[u] & query_sets[v])
            if shared < cfg.min_shared_queries:
                continue
            s = self.combined_similarity(
                query_sets[u], query_sets[v], means[u], means[v]
            )
            if s >= cfg.min_similarity:
                scored.append((u, v, s))

        pruned = self._prune_to_top_k(scored, cfg.max_neighbors)

        graph = SparseGraph(0)
        for e in entity_ids:
            graph.add_vertex(e)
        for u, v, s in pruned:
            graph.set_edge(u, v, s)
        return graph

    @staticmethod
    def _coclick_candidates(bipartite: QueryItemGraph) -> List[Tuple[int, int]]:
        """Exact candidate pairs: entities sharing at least one query."""
        seen = set()
        for q in bipartite.query_ids():
            ids = sorted(bipartite.entities_of_query(q))
            for i in range(len(ids)):
                for j in range(i + 1, len(ids)):
                    seen.add((ids[i], ids[j]))
        return sorted(seen)

    def _lsh_candidates(
        self, query_sets: Dict[int, FrozenSet[int]]
    ) -> List[Tuple[int, int]]:
        """Approximate candidates via banded MinHash LSH (bounded cost
        under hub queries; recall controlled by the band S-curve)."""
        from repro.graph.minhash import LSHConfig, LSHIndex

        cfg = self._config
        index = LSHIndex(
            LSHConfig(
                bands=cfg.lsh_bands,
                rows_per_band=cfg.lsh_rows,
                seed=cfg.lsh_seed,
            )
        )
        index.add_all(query_sets)
        return sorted(index.candidate_pairs())

    @staticmethod
    def _prune_to_top_k(
        edges: List[Tuple[int, int, float]], k: int
    ) -> List[Tuple[int, int, float]]:
        """Keep an edge iff it is in the top-k of *either* endpoint.

        The union (rather than intersection) rule preserves graph
        connectivity for low-degree vertices while still bounding the
        expected degree, matching the "few neighbor entities" intent.
        """
        per_vertex: Dict[int, List[Tuple[float, int, int]]] = {}
        for u, v, w in edges:
            per_vertex.setdefault(u, []).append((w, u, v))
            per_vertex.setdefault(v, []).append((w, u, v))
        keep = set()
        for vertex, incident in per_vertex.items():
            top = heapq.nlargest(k, incident)
            for w, u, v in top:
                keep.add((u, v, w))
        return sorted(keep)


def build_entity_graph(
    bipartite: QueryItemGraph,
    embeddings: WordEmbeddings,
    titles: Dict[int, str],
    config: EntityGraphConfig = EntityGraphConfig(),
    tokenizer: Optional[Tokenizer] = None,
) -> SparseGraph:
    """Convenience wrapper: build the entity graph in one call."""
    return EntityGraphBuilder(embeddings, tokenizer, config).build(bipartite, titles)
