"""Local-maximal-edge discovery via graph diffusion (paper Sec. 2.2).

Plain HAC merges one globally-maximal edge per iteration; the paper's
distributed variant instead finds *local maximal edges* — edges that
remain the maximum after k rounds of neighbours exchanging the best
edge they know — and merges all of them in the same parallel round:

    "For each iteration of the graph diffusion process, every node
    receives the maximal that its neighbors discover from its
    neighbors and 'diffuses' the maximal edge to its neighbors."

With k = 1 an edge only has to beat the edges incident to its two
endpoints; as k grows, information travels farther, fewer edges
survive, and the parallel merge round shrinks toward the sequential
behaviour. The paper fixes k = 2. This module implements the diffusion
in pure-graph form; :mod:`repro.pregel` hosts the vertex-program
version used by the distributed engine, and both must agree (tested).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.graph.sparse import SparseGraph

__all__ = ["local_maximal_edges", "best_incident_edge"]

#: An edge record ordered so max() picks higher weight, tie-broken by
#: the canonical vertex pair (deterministic across runs).
EdgeRecord = Tuple[float, int, int]


def _record(u: int, v: int, w: float) -> EdgeRecord:
    a, b = (u, v) if u < v else (v, u)
    # Negate vertex ids so that, at equal weight, the lexicographically
    # *smallest* canonical pair wins under max().
    return (w, -a, -b)


def _unrecord(rec: EdgeRecord) -> Tuple[int, int, float]:
    w, na, nb = rec
    return (-na, -nb, w)


def best_incident_edge(graph: SparseGraph, v: int) -> Optional[EdgeRecord]:
    """The strongest edge incident to ``v`` (deterministic ties)."""
    best: Optional[EdgeRecord] = None
    for u, w in graph.neighbors(v).items():
        rec = _record(v, u, w)
        if best is None or rec > best:
            best = rec
    return best


def local_maximal_edges(
    graph: SparseGraph, diffusion_rounds: int = 2
) -> List[Tuple[int, int, float]]:
    """Edges that survive ``diffusion_rounds`` rounds of max-diffusion.

    Protocol (matching the paper's description):

    1. every vertex computes the best edge incident to it;
    2. for each round, every vertex adopts the best edge among its own
       current belief and its neighbours' beliefs;
    3. after the rounds, an edge (u, v) is *locally maximal* iff both
       endpoints still believe in it.

    Each vertex ends up in at most one returned edge, so all returned
    edges can merge concurrently without conflicts. Returns canonical
    (u, v, weight) triples sorted by vertex pair.
    """
    if diffusion_rounds < 1:
        raise ValueError("diffusion_rounds must be >= 1")

    belief: Dict[int, Optional[EdgeRecord]] = {
        v: best_incident_edge(graph, v) for v in graph.vertices()
    }
    for _ in range(diffusion_rounds):
        updated: Dict[int, Optional[EdgeRecord]] = {}
        for v in graph.vertices():
            best = belief[v]
            for u in graph.neighbor_ids(v):
                cand = belief[u]
                if cand is not None and (best is None or cand > best):
                    best = cand
            updated[v] = best
        belief = updated

    result: Set[Tuple[int, int, float]] = set()
    for v in graph.vertices():
        rec = belief[v]
        if rec is None:
            continue
        u, w_, weight = _unrecord(rec)
        # v's belief names edge (u, w_). The edge is locally maximal iff
        # both of its endpoints believe in it.
        a, b = u, w_
        if belief.get(a) == rec and belief.get(b) == rec:
            result.add((a, b, weight))
    return sorted(result)
