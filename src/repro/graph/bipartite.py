"""Query–item bipartite graph (paper Fig. 2).

The raw material of SHOAL: queries on one side, item entities on the
other, an edge whenever a query led to clicks on an entity, weighted by
click count. From this graph come the per-entity query sets used by the
Jaccard similarity (Eq. 1) and the query↔topic links used by the
description matcher (Sec. 2.3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.data.queries import QueryLog

__all__ = ["QueryItemGraph", "build_query_item_graph"]


class QueryItemGraph:
    """Weighted bipartite graph between query ids and entity ids."""

    def __init__(self):
        self._query_to_entities: Dict[int, Dict[int, int]] = {}
        self._entity_to_queries: Dict[int, Dict[int, int]] = {}
        self._total_clicks = 0

    # -- construction ---------------------------------------------------------

    def add_click(self, query_id: int, entity_id: int, count: int = 1) -> None:
        """Record ``count`` clicks of ``entity_id`` for ``query_id``."""
        if count <= 0:
            raise ValueError("click count must be positive")
        q = self._query_to_entities.setdefault(query_id, {})
        q[entity_id] = q.get(entity_id, 0) + count
        e = self._entity_to_queries.setdefault(entity_id, {})
        e[query_id] = e.get(query_id, 0) + count
        self._total_clicks += count

    # -- structure --------------------------------------------------------------

    @property
    def n_queries(self) -> int:
        return len(self._query_to_entities)

    @property
    def n_entities(self) -> int:
        return len(self._entity_to_queries)

    @property
    def n_edges(self) -> int:
        return sum(len(v) for v in self._query_to_entities.values())

    @property
    def total_clicks(self) -> int:
        return self._total_clicks

    def query_ids(self) -> List[int]:
        return sorted(self._query_to_entities)

    def entity_ids(self) -> List[int]:
        return sorted(self._entity_to_queries)

    def has_edge(self, query_id: int, entity_id: int) -> bool:
        return entity_id in self._query_to_entities.get(query_id, {})

    def clicks(self, query_id: int, entity_id: int) -> int:
        return self._query_to_entities.get(query_id, {}).get(entity_id, 0)

    # -- views used by the pipeline --------------------------------------------

    def queries_of_entity(self, entity_id: int) -> FrozenSet[int]:
        """Query-id set of an entity: the ``Q_u`` of Eq. 1."""
        return frozenset(self._entity_to_queries.get(entity_id, {}))

    def entities_of_query(self, query_id: int) -> FrozenSet[int]:
        return frozenset(self._query_to_entities.get(query_id, {}))

    def query_clicks_of_entity(self, entity_id: int) -> Dict[int, int]:
        """Mapping query_id → click count for one entity."""
        return dict(self._entity_to_queries.get(entity_id, {}))

    def entity_clicks_of_query(self, query_id: int) -> Dict[int, int]:
        return dict(self._query_to_entities.get(query_id, {}))

    def entity_query_sets(self) -> Dict[int, FrozenSet[int]]:
        """All ``Q_u`` sets at once (entity_id → frozenset of query ids)."""
        return {
            e: frozenset(qs) for e, qs in self._entity_to_queries.items()
        }

    def co_clicked_entity_pairs(self) -> Set[Tuple[int, int]]:
        """Entity pairs sharing at least one query.

        These are the *candidate edges* of the item entity graph: a
        pair with no shared query has Sq = 0 and, with the threshold
        pruning of Sec. 2.1, would only survive on content similarity
        between near-duplicate titles — the builder handles that case
        separately via category blocking.
        """
        pairs: Set[Tuple[int, int]] = set()
        for entities in self._query_to_entities.values():
            ids = sorted(entities)
            for i in range(len(ids)):
                for j in range(i + 1, len(ids)):
                    pairs.add((ids[i], ids[j]))
        return pairs

    def edges(self) -> Iterable[Tuple[int, int, int]]:
        """Iterate (query_id, entity_id, clicks)."""
        for q in sorted(self._query_to_entities):
            for e in sorted(self._query_to_entities[q]):
                yield (q, e, self._query_to_entities[q][e])


def build_query_item_graph(
    query_log: QueryLog,
    first_day: Optional[int] = None,
    last_day: Optional[int] = None,
    min_clicks: int = 1,
) -> QueryItemGraph:
    """Aggregate a query log into the bipartite graph.

    ``first_day``/``last_day`` select the sliding window (paper: the
    last seven days); ``min_clicks`` drops edges with fewer total
    clicks, a standard denoising step.
    """
    log = query_log
    if first_day is not None or last_day is not None:
        days = log.days()
        if not days:
            return QueryItemGraph()
        lo = first_day if first_day is not None else days[0]
        hi = last_day if last_day is not None else days[-1]
        log = log.window(lo, hi)
    graph = QueryItemGraph()
    for query_id, entity_id, count in log.query_entity_pairs():
        if count >= min_clicks:
            graph.add_click(query_id, entity_id, count)
    return graph
