"""MinHash + LSH candidate generation for query-set similarity.

The entity-graph builder enumerates co-clicked pairs per query, which
is exact but O(Σ d_q²) over query degrees — a hub query clicked with
100k entities alone generates 5×10⁹ pairs. At the paper's scale
(2×10⁸ entities) production systems bound this with locality-sensitive
hashing: entities whose query sets are similar collide in at least one
LSH band with high probability, and only colliding pairs are scored
exactly.

This module implements the standard MinHash signature + banded LSH
scheme over the per-entity query sets (the ``Q_u`` of Eq. 1):

* ``MinHasher`` — k independent universal-hash permutations;
  ``P[minhash_i(A) == minhash_i(B)] = Jaccard(A, B)``;
* ``estimate_jaccard`` — signature agreement rate;
* ``LSHIndex`` — bands of r rows; collision probability
  ``1 − (1 − s^r)^b`` (the classic S-curve in s = Jaccard).

The bench compares exact vs LSH candidate generation on recall of true
edges and candidate-count reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

import numpy as np

from repro._util import RngLike, check_positive, ensure_rng

__all__ = ["MinHasher", "estimate_jaccard", "LSHIndex", "LSHConfig"]

_MERSENNE_PRIME = (1 << 31) - 1  # fits a*x + b in int64 without overflow


class MinHasher:
    """k-permutation MinHash over integer item sets.

    Uses the universal hash family ``h(x) = (a·x + b) mod p`` with
    ``p = 2^31 − 1``; products stay below 2^62 so int64 arithmetic is
    exact (overflow would silently bias the estimator). Deterministic
    under ``seed``.
    """

    def __init__(self, n_hashes: int = 64, seed: RngLike = 0):
        check_positive("n_hashes", n_hashes)
        rng = ensure_rng(seed)
        self._n = int(n_hashes)
        self._a = rng.integers(1, _MERSENNE_PRIME, size=self._n, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=self._n, dtype=np.int64)

    @property
    def n_hashes(self) -> int:
        return self._n

    def signature(self, items: Iterable[int]) -> np.ndarray:
        """MinHash signature of an integer set (length ``n_hashes``).

        Empty sets get an all-max signature that never collides with a
        non-empty one.
        """
        xs = np.fromiter(
            (int(x) % _MERSENNE_PRIME for x in items), dtype=np.int64
        )
        if xs.size == 0:
            return np.full(self._n, np.iinfo(np.int64).max, dtype=np.int64)
        # (n_hashes, |set|) hash table, min over the set axis.
        hashed = (
            self._a[:, None] * xs[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        return hashed.min(axis=1)


def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """Estimated Jaccard = fraction of agreeing signature positions."""
    if sig_a.shape != sig_b.shape:
        raise ValueError("signatures must have the same length")
    if sig_a.size == 0:
        return 0.0
    return float(np.mean(sig_a == sig_b))


@dataclass(frozen=True)
class LSHConfig:
    """Banding parameters: ``bands × rows_per_band`` hash functions.

    The collision S-curve is ``1 − (1 − s^rows)^bands``; defaults put
    the 50 %-collision threshold near Jaccard ≈ 0.3, matching the
    entity-graph pruning threshold.
    """

    bands: int = 16
    rows_per_band: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("bands", self.bands)
        check_positive("rows_per_band", self.rows_per_band)

    @property
    def n_hashes(self) -> int:
        return self.bands * self.rows_per_band

    def collision_probability(self, jaccard: float) -> float:
        """Theoretical P[candidate] at a given true Jaccard."""
        return 1.0 - (1.0 - jaccard ** self.rows_per_band) ** self.bands


class LSHIndex:
    """Banded MinHash LSH over entity query sets."""

    def __init__(self, config: LSHConfig = LSHConfig()):
        self._config = config
        self._hasher = MinHasher(config.n_hashes, seed=config.seed)
        self._signatures: Dict[int, np.ndarray] = {}
        self._buckets: List[Dict[bytes, List[int]]] = [
            {} for _ in range(config.bands)
        ]

    @property
    def config(self) -> LSHConfig:
        return self._config

    def __len__(self) -> int:
        return len(self._signatures)

    # -- building ------------------------------------------------------------

    def add(self, entity_id: int, query_ids: Iterable[int]) -> None:
        """Index one entity's query set."""
        if entity_id in self._signatures:
            raise ValueError(f"entity {entity_id} already indexed")
        sig = self._hasher.signature(query_ids)
        self._signatures[entity_id] = sig
        r = self._config.rows_per_band
        for band in range(self._config.bands):
            key = sig[band * r : (band + 1) * r].tobytes()
            self._buckets[band].setdefault(key, []).append(entity_id)

    def add_all(self, query_sets: Dict[int, FrozenSet[int]]) -> None:
        for entity_id in sorted(query_sets):
            self.add(entity_id, query_sets[entity_id])

    # -- querying ------------------------------------------------------------

    def signature_of(self, entity_id: int) -> np.ndarray:
        return self._signatures[entity_id].copy()

    def estimate(self, a: int, b: int) -> float:
        """Estimated Jaccard between two indexed entities."""
        return estimate_jaccard(self._signatures[a], self._signatures[b])

    def candidates_of(self, entity_id: int) -> Set[int]:
        """Entities sharing at least one LSH bucket with ``entity_id``."""
        sig = self._signatures[entity_id]
        r = self._config.rows_per_band
        out: Set[int] = set()
        for band in range(self._config.bands):
            key = sig[band * r : (band + 1) * r].tobytes()
            out.update(self._buckets[band].get(key, ()))
        out.discard(entity_id)
        return out

    def candidate_pairs(self) -> Set[Tuple[int, int]]:
        """All candidate pairs (a < b) across every bucket."""
        pairs: Set[Tuple[int, int]] = set()
        for band in self._buckets:
            for members in band.values():
                if len(members) < 2:
                    continue
                ms = sorted(members)
                for i in range(len(ms)):
                    for j in range(i + 1, len(ms)):
                        pairs.add((ms[i], ms[j]))
        return pairs
