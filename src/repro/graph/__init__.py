"""Graph substrate.

Sparse weighted graphs, the query–item bipartite graph (paper Fig. 2),
the item-entity-graph builder implementing Eq. 1–3 with sparsification,
Newman–Girvan modularity (the paper's clustering quality metric),
connected components, and the k-hop diffusion primitive underlying
Parallel HAC's local-maximal-edge discovery.
"""

from repro.graph.sparse import SparseGraph
from repro.graph.bipartite import QueryItemGraph, build_query_item_graph
from repro.graph.entity_graph import (
    EntityGraphBuilder,
    EntityGraphConfig,
    build_entity_graph,
)
from repro.graph.modularity import modularity, weighted_modularity
from repro.graph.components import connected_components
from repro.graph.diffusion import local_maximal_edges
from repro.graph.minhash import LSHConfig, LSHIndex, MinHasher, estimate_jaccard

__all__ = [
    "SparseGraph",
    "QueryItemGraph",
    "build_query_item_graph",
    "EntityGraphBuilder",
    "EntityGraphConfig",
    "build_entity_graph",
    "modularity",
    "weighted_modularity",
    "connected_components",
    "local_maximal_edges",
    "MinHasher",
    "estimate_jaccard",
    "LSHIndex",
    "LSHConfig",
]
