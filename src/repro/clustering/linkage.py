"""Linkage rules: how merged-cluster similarity is recomputed.

Paper Eq. 4 (the sqrt-normalised update)::

    S(AB, C) = (sqrt(nA) · S(A,C) + sqrt(nB) · S(B,C)) / (sqrt(nA) + sqrt(nB))

with ``S(X, C) = 0`` when the edge is unavailable — the property that
makes HAC work on a *sparse* similarity graph (Challenge 1). The paper
motivates the sqrt weights geometrically: clusters embed into a
two-dimensional space where similarity behaves like the square root of
a projected region, so a cluster of n entities carries weight sqrt(n)
rather than n.

Alternative linkages (arithmetic/size-weighted mean, max, min) are
provided for the ablation bench: Eq. 4's fixed point sits between
"large clusters dominate" (arithmetic) and "size-blind" (max), which is
what keeps topic sizes balanced.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

__all__ = [
    "sqrt_linkage",
    "arithmetic_linkage",
    "max_linkage",
    "min_linkage",
    "LINKAGES",
]

#: A linkage maps (s_ac, s_bc, n_a, n_b) -> merged similarity S(AB, C),
#: where missing edges are passed as 0.0 per the paper's convention.
LinkageFn = Callable[[float, float, int, int], float]


def sqrt_linkage(s_ac: float, s_bc: float, n_a: int, n_b: int) -> float:
    """Paper Eq. 4: sqrt-of-cluster-size weighted mean."""
    if n_a <= 0 or n_b <= 0:
        raise ValueError("cluster sizes must be positive")
    wa = math.sqrt(n_a)
    wb = math.sqrt(n_b)
    return (wa * s_ac + wb * s_bc) / (wa + wb)


def arithmetic_linkage(s_ac: float, s_bc: float, n_a: int, n_b: int) -> float:
    """Size-weighted (UPGMA-like) mean: weights n instead of sqrt(n)."""
    if n_a <= 0 or n_b <= 0:
        raise ValueError("cluster sizes must be positive")
    return (n_a * s_ac + n_b * s_bc) / (n_a + n_b)


def max_linkage(s_ac: float, s_bc: float, n_a: int, n_b: int) -> float:
    """Single-linkage flavour: the stronger of the two edges survives."""
    if n_a <= 0 or n_b <= 0:
        raise ValueError("cluster sizes must be positive")
    return max(s_ac, s_bc)


def min_linkage(s_ac: float, s_bc: float, n_a: int, n_b: int) -> float:
    """Complete-linkage flavour.

    With the sparse convention S=0 for missing edges this is very
    conservative: any missing side zeroes the merged edge. Included in
    the ablation to show why the paper's Eq. 4 is the right choice on
    sparse graphs.
    """
    if n_a <= 0 or n_b <= 0:
        raise ValueError("cluster sizes must be positive")
    return min(s_ac, s_bc)


#: Registry used by configs and the ablation bench.
LINKAGES: Dict[str, LinkageFn] = {
    "sqrt": sqrt_linkage,
    "arithmetic": arithmetic_linkage,
    "max": max_linkage,
    "min": min_linkage,
}
