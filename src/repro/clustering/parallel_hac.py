"""Parallel Hierarchical Agglomerative Clustering (paper Sec. 2.2).

The paper's core algorithmic contribution. Each *round*:

1. **Diffusion** — every vertex learns the best edge within its k-hop
   neighbourhood (k = ``diffusion_rounds``, paper default 2) by
   exchanging best-edge records for k rounds. Edges still believed in
   by *both* endpoints afterwards are **local maximal edges**; they are
   pairwise vertex-disjoint, so all of them merge concurrently.
2. **Parallel merge** — every local maximal edge at or above the
   similarity threshold contracts, recomputing neighbour similarities
   with the sqrt-normalised linkage (Eq. 4; missing edges count 0).
3. Repeat until no edge clears the threshold.

Fewer diffusion rounds ⇒ more local maxima ⇒ more merges per round ⇒
higher parallelism but greedier merging; the paper fixes k = 2 (bench
E5 sweeps k).

Two execution modes share the identical merge semantics:

* ``engine="local"`` — plain Python loops (fast, used by default);
* ``engine="pregel"`` — diffusion runs as a vertex program on
  :mod:`repro.pregel`, yielding superstep/message statistics that the
  scalability bench (E4) converts into simulated distributed wall
  clock. Tests assert both modes produce identical dendrograms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro._util import check_in, check_positive
from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.hac import HACConfig
from repro.clustering.linkage import LINKAGES, LinkageFn
from repro.clustering.membership import MembershipTracker
from repro.graph.diffusion import local_maximal_edges
from repro.graph.sparse import SparseGraph
from repro.pregel import PregelConfig, PregelEngine, Vertex, combine_max

__all__ = ["ParallelHACConfig", "RoundStats", "ParallelHACResult", "ParallelHAC"]


@dataclass(frozen=True)
class ParallelHACConfig:
    """Parallel HAC parameters.

    Inherits the HAC semantics (threshold, linkage) and adds the
    parallel-execution knobs: ``diffusion_rounds`` (paper: 2),
    ``engine`` and ``n_workers`` for the BSP mode.
    """

    similarity_threshold: float = 0.3
    linkage: str = "sqrt"
    max_cluster_size: Optional[int] = None
    diffusion_rounds: int = 2
    engine: str = "local"
    n_workers: int = 4
    max_rounds: int = 10_000

    def __post_init__(self) -> None:
        HACConfig(
            similarity_threshold=self.similarity_threshold,
            linkage=self.linkage,
            max_cluster_size=self.max_cluster_size,
        )  # reuse its validation
        check_positive("diffusion_rounds", self.diffusion_rounds)
        check_in("engine", self.engine, ("local", "pregel"))
        check_positive("n_workers", self.n_workers)
        check_positive("max_rounds", self.max_rounds)

    @property
    def linkage_fn(self) -> LinkageFn:
        return LINKAGES[self.linkage]


@dataclass(frozen=True)
class RoundStats:
    """Observability for one parallel round (consumed by benches)."""

    round_index: int
    live_clusters: int
    live_edges: int
    local_maximal_edges: int
    merges: int
    supersteps: int = 0          # pregel mode only
    messages: int = 0            # pregel mode only
    remote_messages: int = 0     # pregel mode only

    @property
    def parallelism(self) -> int:
        """Merges executed concurrently this round."""
        return self.merges


@dataclass
class ParallelHACResult:
    """Dendrogram plus per-round statistics."""

    dendrogram: Dendrogram
    rounds: List[RoundStats] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_merges(self) -> int:
        return sum(r.merges for r in self.rounds)

    @property
    def total_messages(self) -> int:
        return sum(r.messages for r in self.rounds)

    def mean_parallelism(self) -> float:
        """Average merges per round — the paper's parallelism measure."""
        merging = [r.merges for r in self.rounds if r.merges > 0]
        if not merging:
            return 0.0
        return sum(merging) / len(merging)


class _DiffusionVertex(Vertex):
    """Vertex program for one diffusion phase (pregel mode).

    value = the best edge record this vertex currently believes in,
    encoded as (weight, -a, -b) so ``max`` is deterministic (see
    :mod:`repro.graph.diffusion`). Superstep 0 computes the local best
    incident edge; supersteps 1..k adopt the max over received beliefs;
    at superstep k every vertex halts.
    """

    __slots__ = ("k",)

    def __init__(self, vertex_id, edges, k: int):
        super().__init__(vertex_id, value=None, edges=edges)
        self.k = k

    def compute(self, ctx, messages) -> None:
        if ctx.superstep == 0:
            best = None
            for nbr, w in self.edges.items():
                a, b = (self.vertex_id, nbr) if self.vertex_id < nbr else (nbr, self.vertex_id)
                rec = (w, -a, -b)
                if best is None or rec > best:
                    best = rec
            self.value = best
        else:
            best = self.value
            for rec in messages:
                if rec is not None and (best is None or rec > best):
                    best = rec
            self.value = best
        if ctx.superstep < self.k:
            if self.value is not None:
                ctx.send_to_neighbors(self.value)
        else:
            ctx.vote_to_halt()


class ParallelHAC:
    """The paper's Parallel HAC; produces a :class:`ParallelHACResult`."""

    def __init__(self, config: ParallelHACConfig = ParallelHACConfig()):
        self._config = config

    @property
    def config(self) -> ParallelHACConfig:
        return self._config

    # -- public API --------------------------------------------------------

    def fit(self, graph: SparseGraph) -> ParallelHACResult:
        """Cluster ``graph`` (not modified); see module docstring."""
        cfg = self._config
        work = graph.copy()
        tracker = MembershipTracker(graph.vertices())
        dendrogram = Dendrogram(graph.vertices())
        rounds: List[RoundStats] = []

        for round_index in range(cfg.max_rounds):
            live_edges = work.n_edges
            if live_edges == 0:
                break

            if cfg.engine == "pregel":
                candidates, supersteps, msgs, remote = self._diffuse_pregel(work)
            else:
                candidates = local_maximal_edges(work, cfg.diffusion_rounds)
                supersteps, msgs, remote = 0, 0, 0

            eligible = [
                (u, v, w) for u, v, w in candidates
                if w >= cfg.similarity_threshold
            ]
            if cfg.max_cluster_size is not None:
                eligible = [
                    (u, v, w) for u, v, w in eligible
                    if tracker.size(u) + tracker.size(v) <= cfg.max_cluster_size
                ]

            merges_done = 0
            for u, v, w in eligible:
                merged = self._merge_pair(work, tracker, u, v)
                dendrogram.record_merge(Merge(merged, u, v, w, round_index))
                merges_done += 1

            rounds.append(
                RoundStats(
                    round_index=round_index,
                    live_clusters=tracker.n_live(),
                    live_edges=live_edges,
                    local_maximal_edges=len(candidates),
                    merges=merges_done,
                    supersteps=supersteps,
                    messages=msgs,
                    remote_messages=remote,
                )
            )

            if merges_done == 0:
                # No local maximal edge clears the threshold. Since a
                # *global* maximal edge is always locally maximal, the
                # global max is below threshold too: we are done. (With
                # max_cluster_size set, remaining merges are size-blocked;
                # drop their edges and re-check.)
                if cfg.max_cluster_size is not None:
                    removed = self._drop_blocked_edges(work, tracker)
                    if removed:
                        continue
                break
        return ParallelHACResult(dendrogram=dendrogram, rounds=rounds)

    # -- internals ------------------------------------------------------------

    def _drop_blocked_edges(
        self, work: SparseGraph, tracker: MembershipTracker
    ) -> int:
        """Remove edges whose merge would exceed ``max_cluster_size``.

        Needed for termination: a heavy-but-blocked edge would otherwise
        keep winning the diffusion and stall every later round.
        """
        cap = self._config.max_cluster_size
        assert cap is not None
        to_drop = [
            (u, v)
            for u, v, w in work.edges()
            if w >= self._config.similarity_threshold
            and tracker.size(u) + tracker.size(v) > cap
        ]
        for u, v in to_drop:
            work.remove_edge(u, v)
        return len(to_drop)

    def _diffuse_pregel(
        self, work: SparseGraph
    ) -> Tuple[List[Tuple[int, int, float]], int, int, int]:
        """Run one diffusion phase on the BSP engine.

        Returns (local maximal edges, supersteps, messages, remote
        messages). Must agree exactly with
        :func:`repro.graph.diffusion.local_maximal_edges` — covered by
        tests.
        """
        cfg = self._config
        vertices = [
            _DiffusionVertex(v, work.neighbors(v), cfg.diffusion_rounds)
            for v in work.vertices()
        ]
        engine = PregelEngine(
            vertices,
            PregelConfig(
                n_workers=cfg.n_workers,
                max_supersteps=cfg.diffusion_rounds + 1,
                combiner=combine_max,
            ),
        )
        run = engine.run()
        beliefs = engine.vertex_values()
        found = set()
        for v, rec in beliefs.items():
            if rec is None:
                continue
            w, na, nb = rec
            a, b = -na, -nb
            if beliefs.get(a) == rec and beliefs.get(b) == rec:
                found.add((a, b, w))
        return (
            sorted(found),
            run.supersteps,
            run.total_messages,
            run.total_remote_messages,
        )

    def _merge_pair(
        self,
        work: SparseGraph,
        tracker: MembershipTracker,
        u: int,
        v: int,
    ) -> int:
        """Contract (u, v) with the configured linkage (Eq. 4 default).

        Identical semantics to ``SequentialHAC._merge_pair``; duplicated
        deliberately so each algorithm file reads standalone, with a
        cross-test pinning them together.
        """
        linkage = self._config.linkage_fn
        n_u = tracker.size(u)
        n_v = tracker.size(v)
        nbrs_u = work.neighbors(u)
        nbrs_v = work.neighbors(v)
        merged = tracker.merge(u, v)

        all_nbrs = (set(nbrs_u) | set(nbrs_v)) - {u, v}
        work.add_vertex(merged)
        for c in all_nbrs:
            s_uc = nbrs_u.get(c, 0.0)
            s_vc = nbrs_v.get(c, 0.0)
            new_w = linkage(s_uc, s_vc, n_u, n_v)
            if new_w > 0.0:
                work.set_edge(merged, c, new_w)
        work.remove_vertex(u)
        work.remove_vertex(v)
        return merged
