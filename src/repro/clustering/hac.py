"""Sequential (exact) HAC on a sparse similarity graph.

This is the baseline the paper describes before introducing Parallel
HAC: "It works by iteratively merging two nodes with the largest
similarity in the graph until all similarity scores are less than a
threshold" — one merge per iteration, globally maximal edge each time
(Challenge 2: O(V) iterations, each scanning edges).

We implement it with a lazy max-heap so each iteration is
O(log E) amortised instead of a full edge scan; even so, the *merge
sequence* is exactly the textbook greedy one, which makes this class
both the correctness oracle for Parallel HAC (tests compare their
partitions) and the sequential performance baseline for bench E4.
Linkage on merge follows the configured rule (paper Eq. 4 by default),
so both algorithms share identical similarity semantics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro._util import check_probability
from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.linkage import LINKAGES, LinkageFn
from repro.clustering.membership import MembershipTracker
from repro.graph.sparse import SparseGraph

__all__ = ["HACConfig", "SequentialHAC"]


@dataclass(frozen=True)
class HACConfig:
    """Shared HAC parameters.

    ``similarity_threshold`` stops agglomeration once no edge is at or
    above it (the paper's stopping rule). ``linkage`` picks the merge
    update; ``"sqrt"`` is Eq. 4. ``max_cluster_size`` optionally caps
    cluster growth (production guard; ``None`` disables).
    """

    similarity_threshold: float = 0.3
    linkage: str = "sqrt"
    max_cluster_size: Optional[int] = None

    def __post_init__(self) -> None:
        check_probability("similarity_threshold", self.similarity_threshold)
        if self.linkage not in LINKAGES:
            raise ValueError(
                f"unknown linkage {self.linkage!r}; choose from {sorted(LINKAGES)}"
            )
        if self.max_cluster_size is not None and self.max_cluster_size < 1:
            raise ValueError("max_cluster_size must be >= 1 or None")

    @property
    def linkage_fn(self) -> LinkageFn:
        return LINKAGES[self.linkage]


class SequentialHAC:
    """Exact greedy HAC; returns a :class:`Dendrogram`."""

    def __init__(self, config: HACConfig = HACConfig()):
        self._config = config

    @property
    def config(self) -> HACConfig:
        return self._config

    def fit(self, graph: SparseGraph) -> Dendrogram:
        """Cluster ``graph``; the input graph is not modified."""
        cfg = self._config
        linkage = cfg.linkage_fn
        work = graph.copy()
        tracker = MembershipTracker(graph.vertices())
        dendrogram = Dendrogram(graph.vertices())

        # Lazy heap of (-similarity, u, v); stale entries are skipped.
        heap: List[Tuple[float, int, int]] = [
            (-w, u, v) for u, v, w in work.edges()
        ]
        heapq.heapify(heap)
        iteration = 0

        while heap:
            neg_w, u, v = heapq.heappop(heap)
            w = -neg_w
            # Stale checks: both endpoints must be live and the edge's
            # current weight must match (it may have been re-linked).
            if not (work.has_vertex(u) and work.has_vertex(v)):
                continue
            if not work.has_edge(u, v) or work.weight(u, v) != w:
                continue
            if w < cfg.similarity_threshold:
                break
            if cfg.max_cluster_size is not None and (
                tracker.size(u) + tracker.size(v) > cfg.max_cluster_size
            ):
                # This pair may never merge; drop the edge so it cannot
                # block the heap forever.
                work.remove_edge(u, v)
                continue

            merged = self._merge_pair(work, tracker, u, v, linkage)
            dendrogram.record_merge(Merge(merged, u, v, w, iteration))
            iteration += 1
            for nbr, weight in work.neighbors(merged).items():
                heapq.heappush(heap, (-weight, *(sorted((merged, nbr)))))
        return dendrogram

    @staticmethod
    def _merge_pair(
        work: SparseGraph,
        tracker: MembershipTracker,
        u: int,
        v: int,
        linkage: LinkageFn,
    ) -> int:
        """Contract edge (u, v) into a fresh vertex using ``linkage``.

        Missing edges enter the linkage as similarity 0.0 (paper
        convention), so the merged vertex can end up with *weaker*
        edges than either child had — that is the mechanism that stops
        chains from gluing everything together.
        """
        n_u = tracker.size(u)
        n_v = tracker.size(v)
        nbrs_u = work.neighbors(u)
        nbrs_v = work.neighbors(v)
        merged = tracker.merge(u, v)

        all_nbrs = (set(nbrs_u) | set(nbrs_v)) - {u, v}
        work.add_vertex(merged)
        for c in all_nbrs:
            s_uc = nbrs_u.get(c, 0.0)
            s_vc = nbrs_v.get(c, 0.0)
            new_w = linkage(s_uc, s_vc, n_u, n_v)
            if new_w > 0.0:
                work.set_edge(merged, c, new_w)
        work.remove_vertex(u)
        work.remove_vertex(v)
        return merged
