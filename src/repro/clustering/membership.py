"""Cluster membership tracking.

HAC operates on *cluster nodes* whose ids grow past the original
vertex ids as merges happen. :class:`MembershipTracker` is the
union-find-like bookkeeping shared by both HAC implementations: it
assigns fresh ids to merged clusters, remembers which original vertices
each cluster contains, and answers "which cluster is vertex v in now?".

Unlike classic union-find, merged clusters get *new* ids (never reuse
of a child id) because the dendrogram needs distinct nodes per merge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["MembershipTracker"]


class MembershipTracker:
    """Tracks live clusters and their original-vertex members."""

    def __init__(self, vertex_ids: Iterable[int]):
        ids = sorted(set(vertex_ids))
        self._members: Dict[int, List[int]] = {v: [v] for v in ids}
        self._leader: Dict[int, int] = {v: v for v in ids}  # original vertex -> live cluster
        self._parent_of: Dict[int, int] = {}                # retired cluster -> merged cluster
        self._next_id = (max(ids) + 1) if ids else 0

    # -- queries ------------------------------------------------------------

    def live_clusters(self) -> List[int]:
        """Ids of clusters that have not been merged away, sorted."""
        return sorted(self._members)

    def n_live(self) -> int:
        return len(self._members)

    def is_live(self, cluster_id: int) -> bool:
        return cluster_id in self._members

    def size(self, cluster_id: int) -> int:
        """Number of original vertices inside a live cluster."""
        return len(self._members[cluster_id])

    def members(self, cluster_id: int) -> List[int]:
        """Original vertex ids inside a live cluster (sorted)."""
        return sorted(self._members[cluster_id])

    def cluster_of(self, vertex_id: int) -> int:
        """Live cluster currently containing original vertex ``vertex_id``.

        Path-compressed walk through the merge history.
        """
        c = self._leader[vertex_id]
        while c in self._parent_of:
            c = self._parent_of[c]
        self._leader[vertex_id] = c
        return c

    def labels(self) -> Dict[int, int]:
        """Mapping original vertex → live cluster id, for all vertices."""
        return {v: self.cluster_of(v) for v in self._leader}

    # -- merging --------------------------------------------------------------

    def merge(self, a: int, b: int) -> int:
        """Merge live clusters ``a`` and ``b`` into a fresh cluster id."""
        if a == b:
            raise ValueError("cannot merge a cluster with itself")
        if a not in self._members or b not in self._members:
            raise KeyError(f"cluster {a if a not in self._members else b} is not live")
        new_id = self._next_id
        self._next_id += 1
        merged = self._members.pop(a) + self._members.pop(b)
        self._members[new_id] = merged
        self._parent_of[a] = new_id
        self._parent_of[b] = new_id
        return new_id
