"""Merge forest (dendrogram) produced by HAC.

Because HAC on a sparse graph stops when no edge clears the similarity
threshold, the result is a *forest*, not a single tree: each root is a
top-level topic, internal nodes are sub-topics, leaves are item
entities. The forest, plus similarity levels at each merge, is exactly
the hierarchical taxonomy SHOAL serves (paper Fig. 1b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["Merge", "Dendrogram"]


@dataclass(frozen=True)
class Merge:
    """One agglomeration: children (a, b) became ``merged_id`` at
    ``similarity``; ``round_index`` is the parallel round (or the
    sequential iteration) in which it happened."""

    merged_id: int
    child_a: int
    child_b: int
    similarity: float
    round_index: int


class Dendrogram:
    """The merge forest over original vertices ``0..`` plus merges.

    Node ids: original vertices keep their ids; each merge creates a
    fresh id. A node with no parent is a *root* (top-level topic).
    """

    def __init__(self, vertex_ids: Sequence[int]):
        self._vertex_ids = sorted(set(vertex_ids))
        self._merges: List[Merge] = []
        self._parent: Dict[int, int] = {}
        self._children: Dict[int, Tuple[int, int]] = {}
        self._similarity: Dict[int, float] = {}
        self._known: Set[int] = set(self._vertex_ids)

    # -- construction -----------------------------------------------------------

    def record_merge(self, merge: Merge) -> None:
        """Append a merge; children must exist and be unmerged."""
        for child in (merge.child_a, merge.child_b):
            if child not in self._known:
                raise KeyError(f"merge references unknown node {child}")
            if child in self._parent:
                raise ValueError(f"node {child} was already merged")
        if merge.merged_id in self._known:
            raise ValueError(f"merged id {merge.merged_id} already exists")
        self._merges.append(merge)
        self._parent[merge.child_a] = merge.merged_id
        self._parent[merge.child_b] = merge.merged_id
        self._children[merge.merged_id] = (merge.child_a, merge.child_b)
        self._similarity[merge.merged_id] = merge.similarity
        self._known.add(merge.merged_id)

    # -- structure -------------------------------------------------------------

    @property
    def merges(self) -> List[Merge]:
        return list(self._merges)

    @property
    def n_merges(self) -> int:
        return len(self._merges)

    @property
    def vertex_ids(self) -> List[int]:
        """The original (leaf) vertex ids."""
        return list(self._vertex_ids)

    def is_leaf(self, node_id: int) -> bool:
        return node_id not in self._children

    def parent(self, node_id: int) -> Optional[int]:
        return self._parent.get(node_id)

    def children(self, node_id: int) -> Tuple[int, int]:
        """The two children of an internal node."""
        return self._children[node_id]

    def similarity_of(self, node_id: int) -> float:
        """The similarity at which an internal node was formed."""
        return self._similarity[node_id]

    def roots(self) -> List[int]:
        """Nodes with no parent — top-level topics plus never-merged leaves."""
        return sorted(n for n in self._known if n not in self._parent)

    def internal_roots(self) -> List[int]:
        """Roots that are merges (exclude singleton leaves)."""
        return [r for r in self.roots() if not self.is_leaf(r)]

    def leaves_under(self, node_id: int) -> List[int]:
        """All original vertices in the subtree of ``node_id``."""
        if node_id not in self._known:
            raise KeyError(f"unknown node {node_id}")
        out: List[int] = []
        stack = [node_id]
        while stack:
            n = stack.pop()
            kids = self._children.get(n)
            if kids is None:
                out.append(n)
            else:
                stack.extend(kids)
        return sorted(out)

    def subtopics(self, node_id: int) -> List[int]:
        """Direct internal children of a node (sub-topics, skipping leaves)."""
        kids = self._children.get(node_id)
        if kids is None:
            return []
        return [k for k in kids if not self.is_leaf(k)]

    def depth_of(self, node_id: int) -> int:
        """Distance from ``node_id`` up to its root."""
        d = 0
        n = node_id
        while n in self._parent:
            n = self._parent[n]
            d += 1
        return d

    def height(self) -> int:
        """Maximum leaf depth over the whole forest (0 if no merges)."""
        if not self._merges:
            return 0
        return max(self.depth_of(v) for v in self._vertex_ids)

    # -- cuts / partitions -------------------------------------------------------

    def root_partition(self) -> Dict[int, int]:
        """Vertex → root-topic label (the partition modularity is scored on)."""
        labels: Dict[int, int] = {}
        for root in self.roots():
            for v in self.leaves_under(root):
                labels[v] = root
        return labels

    def cut_at_similarity(self, threshold: float) -> Dict[int, int]:
        """Partition by cutting every merge formed *below* ``threshold``.

        A node survives the cut if its formation similarity is
        >= threshold; otherwise its children separate. Returns vertex →
        cluster-label. Cutting at a high threshold yields fine-grained
        clusters; at 0.0 it equals :meth:`root_partition`.
        """
        labels: Dict[int, int] = {}
        for root in self.roots():
            stack = [root]
            while stack:
                n = stack.pop()
                if self.is_leaf(n):
                    labels[n] = n
                    continue
                if self._similarity[n] >= threshold:
                    for v in self.leaves_under(n):
                        labels[v] = n
                else:
                    stack.extend(self._children[n])
        return labels

    def cut_at_level(self, max_depth: int) -> Dict[int, int]:
        """Partition grouping leaves by their ancestor ``max_depth`` levels
        below each root (or the leaf itself if the tree is shallower)."""
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        labels: Dict[int, int] = {}
        for root in self.roots():
            stack = [(root, 0)]
            while stack:
                n, depth = stack.pop()
                if self.is_leaf(n) or depth == max_depth:
                    for v in self.leaves_under(n):
                        labels[v] = n
                else:
                    for k in self._children[n]:
                        stack.append((k, depth + 1))
        return labels

    def merge_rounds(self) -> Dict[int, int]:
        """round_index → number of merges performed in that round."""
        counts: Dict[int, int] = {}
        for m in self._merges:
            counts[m.round_index] = counts.get(m.round_index, 0) + 1
        return counts
