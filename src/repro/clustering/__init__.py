"""Clustering: HAC variants over sparse similarity graphs.

* :mod:`repro.clustering.linkage` — the sqrt-normalised merge update of
  paper Eq. 4, plus alternative linkages for the ablation bench;
* :mod:`repro.clustering.dendrogram` — the merge forest recording every
  merge, from which topic hierarchies are cut;
* :mod:`repro.clustering.hac` — exact sequential HAC (the baseline the
  paper says "does not scale", Challenge 2);
* :mod:`repro.clustering.parallel_hac` — the paper's contribution:
  diffusion-based local-maximal-edge discovery + parallel merge rounds,
  with an optional BSP (Pregel) execution mode;
* :mod:`repro.clustering.membership` — cluster membership tracking
  (which original vertices live in which cluster node).
"""

from repro.clustering.linkage import (
    LINKAGES,
    arithmetic_linkage,
    max_linkage,
    min_linkage,
    sqrt_linkage,
)
from repro.clustering.dendrogram import Dendrogram, Merge
from repro.clustering.membership import MembershipTracker
from repro.clustering.hac import SequentialHAC, HACConfig
from repro.clustering.parallel_hac import (
    ParallelHAC,
    ParallelHACConfig,
    ParallelHACResult,
    RoundStats,
)

__all__ = [
    "LINKAGES",
    "sqrt_linkage",
    "arithmetic_linkage",
    "max_linkage",
    "min_linkage",
    "Dendrogram",
    "Merge",
    "MembershipTracker",
    "SequentialHAC",
    "HACConfig",
    "ParallelHAC",
    "ParallelHACConfig",
    "ParallelHACResult",
    "RoundStats",
]
