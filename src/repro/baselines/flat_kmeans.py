"""Spherical k-means over entity embeddings.

Building block of the TaxoGen-style baseline and a standalone "flat
topics" comparator: cluster mean-title-vector entities on the unit
sphere (cosine k-means). Pure numpy, seeded, with k-means++-style
initialisation adapted to cosine distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._util import check_positive, ensure_rng, normalize_rows

__all__ = ["SphericalKMeansConfig", "SphericalKMeans"]


@dataclass(frozen=True)
class SphericalKMeansConfig:
    """Clustering parameters."""

    n_clusters: int = 8
    max_iterations: int = 50
    tolerance: float = 1e-6
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("n_clusters", self.n_clusters)
        check_positive("max_iterations", self.max_iterations)
        check_positive("tolerance", self.tolerance)


class SphericalKMeans:
    """Cosine k-means on L2-normalised vectors."""

    def __init__(self, config: SphericalKMeansConfig = SphericalKMeansConfig()):
        self._config = config
        self._centroids: Optional[np.ndarray] = None

    @property
    def config(self) -> SphericalKMeansConfig:
        return self._config

    @property
    def centroids(self) -> np.ndarray:
        if self._centroids is None:
            raise RuntimeError("fit() has not been called")
        return self._centroids.copy()

    # -- fitting ----------------------------------------------------------

    def fit_predict(self, vectors: np.ndarray) -> np.ndarray:
        """Cluster rows of ``vectors``; returns a label array.

        Degenerate inputs are handled: if there are fewer rows than
        clusters, every row gets its own cluster.
        """
        cfg = self._config
        x = normalize_rows(np.asarray(vectors, dtype=float))
        n = x.shape[0]
        if n == 0:
            self._centroids = np.zeros((0, vectors.shape[1] if vectors.ndim == 2 else 0))
            return np.empty(0, dtype=np.int64)
        k = min(cfg.n_clusters, n)
        rng = ensure_rng(cfg.seed)

        centroids = self._init_plusplus(x, k, rng)
        labels = np.zeros(n, dtype=np.int64)
        prev_objective = -np.inf
        for _ in range(cfg.max_iterations):
            sims = x @ centroids.T                       # (n, k) cosine
            labels = np.argmax(sims, axis=1)
            objective = float(sims[np.arange(n), labels].sum())
            new_centroids = np.zeros_like(centroids)
            for c in range(k):
                members = x[labels == c]
                if len(members):
                    new_centroids[c] = members.sum(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-fit point.
                    worst = int(np.argmin(sims[np.arange(n), labels]))
                    new_centroids[c] = x[worst]
            centroids = normalize_rows(new_centroids)
            if objective - prev_objective < cfg.tolerance:
                break
            prev_objective = objective
        self._centroids = centroids
        return labels

    @staticmethod
    def _init_plusplus(
        x: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding with cosine distance = 1 − similarity."""
        n = x.shape[0]
        chosen = [int(rng.integers(n))]
        for _ in range(1, k):
            sims = x @ x[chosen].T                       # (n, |chosen|)
            dist = 1.0 - sims.max(axis=1)
            dist = np.clip(dist, 0.0, None)
            total = dist.sum()
            if total <= 0:
                # All points coincide with a centroid; pick any unused one.
                remaining = [i for i in range(n) if i not in chosen]
                if not remaining:
                    break
                chosen.append(int(rng.choice(remaining)))
                continue
            chosen.append(int(rng.choice(n, p=dist / total)))
        return normalize_rows(x[chosen].copy())
