"""TaxoGen-style recursive clustering baseline (paper related work [6]).

Zhang et al.'s TaxoGen builds a topic taxonomy by recursively applying
spherical clustering over (locally re-weighted) term embeddings. We
implement the structural core as a comparator for SHOAL:

* embed each item entity as the mean unit vector of its title tokens
  (the same representation SHOAL's Eq. 2 uses, so differences come
  from the *algorithm*, not the features);
* split the corpus into ``branch_factor`` clusters with spherical
  k-means; recurse into each cluster until ``max_depth`` or clusters
  drop below ``min_cluster_size``.

Unlike SHOAL it ignores query co-click structure entirely — the
comparison benches show that is exactly what it loses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._util import check_positive
from repro.baselines.flat_kmeans import SphericalKMeans, SphericalKMeansConfig
from repro.text.similarity import entity_embedding
from repro.text.tokenizer import Tokenizer
from repro.text.word2vec import WordEmbeddings

__all__ = ["TaxoGenConfig", "TaxoGenNode", "TaxoGenBaseline"]


@dataclass(frozen=True)
class TaxoGenConfig:
    """Recursive clustering parameters."""

    branch_factor: int = 4
    max_depth: int = 2
    min_cluster_size: int = 5
    kmeans_iterations: int = 50
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("branch_factor", self.branch_factor)
        check_positive("max_depth", self.max_depth)
        check_positive("min_cluster_size", self.min_cluster_size)
        check_positive("kmeans_iterations", self.kmeans_iterations)


@dataclass
class TaxoGenNode:
    """One node of the recursive taxonomy."""

    node_id: int
    entity_ids: List[int]
    depth: int
    parent_id: Optional[int] = None
    child_ids: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.entity_ids)


class TaxoGenBaseline:
    """Recursive spherical clustering over entity title embeddings."""

    def __init__(self, config: TaxoGenConfig = TaxoGenConfig()):
        self._config = config
        self._nodes: Dict[int, TaxoGenNode] = {}
        self._next_id = 0
        self._tokenizer = Tokenizer()

    @property
    def config(self) -> TaxoGenConfig:
        return self._config

    # -- fitting -----------------------------------------------------------

    def fit(
        self,
        embeddings: WordEmbeddings,
        titles: Dict[int, str],
    ) -> "TaxoGenBaseline":
        """Build the recursive taxonomy over the given entities."""
        self._nodes = {}
        self._next_id = 0
        entity_ids = sorted(titles)
        vectors = np.stack(
            [
                entity_embedding(embeddings, self._tokenizer.tokenize(titles[e]))
                for e in entity_ids
            ]
        ) if entity_ids else np.zeros((0, embeddings.dim))
        root = self._new_node(entity_ids, depth=0, parent=None)
        self._split(root, vectors, {e: i for i, e in enumerate(entity_ids)})
        return self

    def _new_node(
        self, entity_ids: Sequence[int], depth: int, parent: Optional[int]
    ) -> TaxoGenNode:
        node = TaxoGenNode(self._next_id, sorted(entity_ids), depth, parent)
        self._nodes[node.node_id] = node
        self._next_id += 1
        if parent is not None:
            self._nodes[parent].child_ids.append(node.node_id)
        return node

    def _split(
        self,
        node: TaxoGenNode,
        vectors: np.ndarray,
        row_of: Dict[int, int],
    ) -> None:
        cfg = self._config
        if node.depth >= cfg.max_depth:
            return
        if node.size < cfg.min_cluster_size * 2:
            return
        rows = [row_of[e] for e in node.entity_ids]
        sub = vectors[rows]
        km = SphericalKMeans(
            SphericalKMeansConfig(
                n_clusters=cfg.branch_factor,
                max_iterations=cfg.kmeans_iterations,
                seed=cfg.seed + node.node_id,
            )
        )
        labels = km.fit_predict(sub)
        groups: Dict[int, List[int]] = {}
        for e, lab in zip(node.entity_ids, labels):
            groups.setdefault(int(lab), []).append(e)
        useful = [g for g in groups.values() if len(g) >= cfg.min_cluster_size]
        if len(useful) < 2:
            return  # no meaningful split
        # Children must partition the parent: entities from dropped
        # (too-small) groups fold into the largest useful group so no
        # entity vanishes from the leaf partition.
        useful.sort(key=lambda g: (-len(g), g[0]))
        dropped = [
            e for g in groups.values() if len(g) < cfg.min_cluster_size for e in g
        ]
        useful[0] = sorted(useful[0] + dropped)
        for group in sorted(useful, key=lambda g: g[0]):
            child = self._new_node(group, node.depth + 1, node.node_id)
            self._split(child, vectors, row_of)

    # -- views -------------------------------------------------------------

    def root(self) -> TaxoGenNode:
        return self._nodes[0]

    def node(self, node_id: int) -> TaxoGenNode:
        return self._nodes[node_id]

    def nodes(self) -> List[TaxoGenNode]:
        return [self._nodes[k] for k in sorted(self._nodes)]

    def leaf_nodes(self) -> List[TaxoGenNode]:
        return [n for n in self.nodes() if not n.child_ids]

    def leaf_partition(self) -> Dict[int, int]:
        """Entity → leaf-node label (comparable to SHOAL's topics)."""
        labels: Dict[int, int] = {}
        for n in self.leaf_nodes():
            for e in n.entity_ids:
                labels[e] = n.node_id
        return labels

    def top_level_partition(self) -> Dict[int, int]:
        """Entity → first-level cluster label (comparable to root topics)."""
        root = self.root()
        labels: Dict[int, int] = {}
        if not root.child_ids:
            for e in root.entity_ids:
                labels[e] = root.node_id
            return labels
        for child_id in root.child_ids:
            stack = [child_id]
            while stack:
                nid = stack.pop()
                n = self._nodes[nid]
                if not n.child_ids:
                    for e in n.entity_ids:
                        labels[e] = child_id
                stack.extend(n.child_ids)
            for e in self._nodes[child_id].entity_ids:
                labels[e] = child_id
        return labels
