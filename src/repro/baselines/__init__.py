"""Baselines SHOAL is compared against.

* :mod:`repro.baselines.ontology_rec` — the paper's A/B control group:
  recommendation by ontology-category matching (Fig. 4a);
* :mod:`repro.baselines.taxogen` — a TaxoGen-style recursive
  embedding-clustering taxonomy (the closest related work, [6]);
* :mod:`repro.baselines.flat_kmeans` — flat spherical k-means over
  entity embeddings (the "no hierarchy" ablation).
"""

from repro.baselines.ontology_rec import OntologyRecommender, OntologyRecommenderConfig
from repro.baselines.taxogen import TaxoGenBaseline, TaxoGenConfig
from repro.baselines.flat_kmeans import SphericalKMeans, SphericalKMeansConfig

__all__ = [
    "OntologyRecommender",
    "OntologyRecommenderConfig",
    "TaxoGenBaseline",
    "TaxoGenConfig",
    "SphericalKMeans",
    "SphericalKMeansConfig",
]
