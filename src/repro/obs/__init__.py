"""Observability substrate: one histogram, per-request trace trees,
and OpenMetrics exposition.

``repro.obs`` is a leaf package — it imports nothing from the serving
stack, so every tier (edges, middleware, router, streaming write path,
replication) can report through it without import cycles.
"""

from repro.obs.exposition import (
    CONTENT_TYPE,
    OpenMetricsDoc,
    OpenMetricsError,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.histogram import (
    BUCKET_BOUNDS_MS,
    Histogram,
    LatencySummary,
    percentile,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    default_tracer,
    set_default_tracer,
    traced,
)

__all__ = [
    "BUCKET_BOUNDS_MS",
    "CONTENT_TYPE",
    "Histogram",
    "LatencySummary",
    "OpenMetricsDoc",
    "OpenMetricsError",
    "Span",
    "Tracer",
    "default_tracer",
    "parse_openmetrics",
    "percentile",
    "render_openmetrics",
    "set_default_tracer",
    "traced",
]
