"""The one latency histogram every tier reports through.

Before this module existed the repo had three hand-rolled latency
aggregators — ``serving/stats.py:RequestStats`` (unbounded sample
list + nearest-rank percentiles), the ``MetricsMiddleware`` copy, and
the router's — each with subtly different QPS and percentile
semantics. :class:`Histogram` replaces all of them: a fixed-bucket,
geometrically-spaced latency histogram with O(1) memory, exact
count/sum/max tracking, and a :class:`LatencySummary` view that keeps
the external API of the old recorder byte-for-byte compatible in
shape.

Bucket layout
-------------
Bounds grow by :data:`BUCKET_GROWTH` (10%) per bucket from
:data:`BUCKET_FIRST_MS` to :data:`BUCKET_LAST_MS`, so any reported
percentile is within one bucket (≤10% relative error) of the true
nearest-rank value. The top percentile is additionally clamped to the
exact observed maximum, so ``p99`` of a 5-sample recorder still reads
the true slowest sample. The bounds are module constants — every
histogram in the process shares them, which is what makes merge and
OpenMetrics exposition trivial.

:func:`percentile` — the exact nearest-rank helper the replayer uses
on small in-memory sample lists — also lives here so there is exactly
one percentile definition in the codebase.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BUCKET_BOUNDS_MS",
    "Histogram",
    "LatencySummary",
    "percentile",
]

BUCKET_FIRST_MS = 0.01
BUCKET_LAST_MS = 120_000.0
BUCKET_GROWTH = 1.10


def _build_bounds() -> Tuple[float, ...]:
    bounds: List[float] = []
    ub = BUCKET_FIRST_MS
    while ub < BUCKET_LAST_MS:
        bounds.append(float(f"{ub:.6g}"))  # clean `le` labels
        ub *= BUCKET_GROWTH
    bounds.append(BUCKET_LAST_MS)
    return tuple(bounds)


#: Upper bounds (milliseconds) of the shared fixed buckets; an
#: implicit +Inf bucket follows the last bound.
BUCKET_BOUNDS_MS: Tuple[float, ...] = _build_bounds()
_N_BUCKETS = len(BUCKET_BOUNDS_MS) + 1  # +Inf overflow bucket

#: Unfolded samples tolerated before ``record`` folds inline — a
#: memory backstop (~1 MB of boxed floats) for processes nobody
#: scrapes; the old recorder kept every sample forever. Any read folds
#: first, so under a normal scrape cadence the pending list stays
#: small and the per-request cost is one list append; an inline
#: backstop fold is bounded at ~8ms.
_FOLD_AT = 32768


def _bucket_index(ms: float) -> int:
    """Index of the bucket whose upper bound is the smallest >= ms.

    ``bisect_left`` returns the first index whose bound is >= ms;
    ``len(bounds)`` means the +Inf overflow bucket. The C bisect keeps
    ``record_ms`` cheap enough for the per-request hot path.
    """
    return bisect_left(BUCKET_BOUNDS_MS, ms)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    Exact — used by the replayer on raw sample lists. Returns 0.0 for
    an empty sequence.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    if not sorted_values:
        return 0.0
    rank = max(1, int(-(-q * len(sorted_values) // 100)))  # ceil
    return float(sorted_values[min(rank, len(sorted_values)) - 1])


@dataclass(frozen=True)
class LatencySummary:
    """Immutable latency roll-up — the external view of a recorder.

    Kept field-for-field compatible with the pre-histogram
    ``serving.stats.LatencySummary`` so every stats dict, bench, and
    replay report keeps its shape.
    """

    count: int
    elapsed_seconds: float
    qps: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @property
    def total_seconds(self) -> float:
        """Total busy time (sum of recorded latencies) in seconds."""
        return self.mean_ms * self.count / 1000.0

    def summary(self) -> str:
        return (
            f"{self.count} requests in {self.elapsed_seconds:.3f}s "
            f"({self.qps:.1f} qps) mean={self.mean_ms:.3f}ms "
            f"p50={self.p50_ms:.3f}ms "
            f"p95={self.p95_ms:.3f}ms p99={self.p99_ms:.3f}ms "
            f"max={self.max_ms:.3f}ms"
        )


class Histogram:
    """Thread-safe fixed-bucket latency recorder.

    Drop-in replacement for the old ``RequestStats``: ``record()``
    takes seconds, ``summary()`` returns a :class:`LatencySummary`,
    and QPS is measured over the wall-clock window from the first to
    the most recent ``record()`` call. On top of that it exposes the
    raw cumulative buckets (:meth:`buckets`) for OpenMetrics
    exposition and :meth:`merge` for cross-shard roll-ups.
    """

    __slots__ = (
        "_lock",
        "_clock",
        "_counts",
        "_count",
        "_sum_ms",
        "_max_ms",
        "_started_at",
        "_last_at",
        "_pending",
    )

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._counts = [0] * _N_BUCKETS
        self._count = 0
        self._sum_ms = 0.0
        self._max_ms = 0.0
        self._started_at: Optional[float] = None
        self._last_at = 0.0
        # Recording appends here and bucketing happens lazily on the
        # next read (or every _FOLD_AT samples): the hot path pays one
        # list append like the old recorder, not a bisect per request.
        self._pending: List[float] = []

    # -- recording ---------------------------------------------------------

    def record(self, seconds: float) -> None:
        """Record one request latency, in seconds.

        Lock-free: ``list.append`` is atomic under the GIL and the
        fold only ever consumes a prefix it measured (see
        :meth:`_fold_locked`), so the per-request cost is one append
        plus a clock read — a recorder never blocks behind a scrape.
        """
        now = self._clock()
        pending = self._pending
        pending.append(seconds * 1000.0)
        if self._started_at is None:
            # Backdate to the request's start so a single sample
            # reads as qps = 1/latency — what an external load
            # generator would measure (matches the old recorder).
            self._started_at = now - seconds
        self._last_at = now
        if len(pending) >= _FOLD_AT:
            with self._lock:
                self._fold_locked()

    def record_ms(self, ms: float) -> None:
        """Record one request latency, in milliseconds."""
        now = self._clock()
        pending = self._pending
        pending.append(ms)
        if self._started_at is None:
            self._started_at = now - ms / 1000.0
        self._last_at = now
        if len(pending) >= _FOLD_AT:
            with self._lock:
                self._fold_locked()

    def _fold_locked(self) -> None:
        """Bucket the pending samples; call with the lock held.

        Recording appends without the lock, so the fold snapshots the
        first ``n`` samples and deletes exactly those — an append that
        races past ``n`` simply survives for the next fold, no sample
        is ever dropped or double-counted. Negative latencies (clock
        skew on an injected recorder) clamp to zero here, off the
        per-request path.
        """
        pending = self._pending
        n = len(pending)
        if n == 0:
            return
        chunk = pending[:n]
        counts = self._counts
        sum_ms = 0.0
        max_ms = self._max_ms
        for ms in chunk:
            if ms < 0.0:
                ms = 0.0
            counts[bisect_left(BUCKET_BOUNDS_MS, ms)] += 1
            sum_ms += ms
            if ms > max_ms:
                max_ms = ms
        self._count += n
        self._sum_ms += sum_ms
        self._max_ms = max_ms
        del pending[:n]

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * _N_BUCKETS
            self._count = 0
            self._sum_ms = 0.0
            self._max_ms = 0.0
            self._started_at = None
            self._last_at = 0.0
            self._pending.clear()

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this recorder."""
        with other._lock:
            other._fold_locked()
            counts = list(other._counts)
            count = other._count
            sum_ms = other._sum_ms
            max_ms = other._max_ms
            started = other._started_at
            last = other._last_at
        with self._lock:
            self._fold_locked()
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum_ms += sum_ms
            if max_ms > self._max_ms:
                self._max_ms = max_ms
            if started is not None and (
                self._started_at is None or started < self._started_at
            ):
                self._started_at = started
            if last > self._last_at:
                self._last_at = last

    # -- views -------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count + len(self._pending)

    def _percentile_ms_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = max(1, int(-(-q * self._count // 100)))
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= rank:
                ub = (
                    BUCKET_BOUNDS_MS[i]
                    if i < len(BUCKET_BOUNDS_MS)
                    else self._max_ms
                )
                # Never report a percentile above the exact observed
                # maximum — makes the top percentile of small recorders
                # exact instead of one-bucket high.
                return min(ub, self._max_ms)
        return self._max_ms

    def percentile_ms(self, q: float) -> float:
        """Nearest-rank percentile (ms), ≤10% high, clamped to max."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q!r}")
        with self._lock:
            self._fold_locked()
            return self._percentile_ms_locked(q)

    def summary(self, elapsed_s: Optional[float] = None) -> LatencySummary:
        """Roll everything up into a :class:`LatencySummary`.

        ``elapsed_s`` overrides the measured first-to-last wall-clock
        window (the replayer passes its own measured window).
        """
        with self._lock:
            self._fold_locked()
            n = self._count
            if n == 0:
                return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
            if elapsed_s is None:
                started = (
                    self._started_at
                    if self._started_at is not None
                    else self._last_at
                )
                elapsed_s = max(self._last_at - started, 0.0)
            return LatencySummary(
                count=n,
                elapsed_seconds=elapsed_s,
                qps=n / elapsed_s if elapsed_s > 0 else 0.0,
                mean_ms=self._sum_ms / n,
                p50_ms=self._percentile_ms_locked(50.0),
                p95_ms=self._percentile_ms_locked(95.0),
                p99_ms=self._percentile_ms_locked(99.0),
                max_ms=self._max_ms,
            )

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound_ms, count)`` pairs for exposition.

        Empty leading buckets (except the one just below the first
        sample) and everything past the bucket containing the maximum
        are trimmed, so quiet histograms stay cheap to render. The
        final pair is always ``(inf, total_count)``.
        """
        with self._lock:
            self._fold_locked()
            counts = list(self._counts)
            total = self._count
        out: List[Tuple[float, int]] = []
        cum = 0
        for i, ub in enumerate(BUCKET_BOUNDS_MS):
            cum += counts[i]
            if cum == 0 and i + 1 < len(counts) and counts[i + 1] == 0:
                continue
            out.append((ub, cum))
            if cum >= total:
                break
        out.append((float("inf"), total))
        return out

    def sum_ms(self) -> float:
        with self._lock:
            self._fold_locked()
            return self._sum_ms

    def to_dict(self) -> Dict[str, float]:
        """Flat numeric dict for the JSON metrics tree."""
        s = self.summary()
        return {
            "count": s.count,
            "qps": round(s.qps, 3),
            "mean_ms": round(s.mean_ms, 3),
            "p50_ms": round(s.p50_ms, 3),
            "p95_ms": round(s.p95_ms, 3),
            "p99_ms": round(s.p99_ms, 3),
            "max_ms": round(s.max_ms, 3),
        }
