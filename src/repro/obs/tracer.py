"""Per-request span trees with deterministic tail-based sampling.

Every request that enters an edge gets a span tree: the edge root
span, the middleware stack, the gateway, the backend, the router, each
per-shard probe, and both hedge attempts; write-path work (WAL
appends, coalesced flushes, updater batch folds, shipper publishes,
follower replays and swaps) produces its own background traces. Spans
hang off the existing :class:`~repro.api.context.RequestContext` —
they inherit its request id and tag map, hedged children created via
``RequestContext.child`` become child spans, and a hedge loser's spans
are deterministically marked ``cancelled`` when the trace closes.

Sampling is **tail-based**: every span is recorded while the request
runs, and the keep/drop decision is made only when the root span
finishes, so the policy can see the whole tree. A trace is kept when

* any span ended in an error (which includes deadline expiries), or
* the root is among the slowest :attr:`Tracer.slowest_per_endpoint`
  requests seen so far for its endpoint (a ratcheting threshold — the
  process-wide slowest request is always kept).

Kept traces land in a bounded ring buffer, queryable by request id via
``GET /v1/trace?request_id=`` and the ``cli.py trace`` subcommand.
Everything else is counted and dropped — the drop counters are part of
the metrics tree so the exposition layer can alert on them.

Instrumentation points use :func:`traced`, which is a strict no-op
(one attribute check) when neither the ambient request context nor the
process carries a tracer — the read path stays un-instrumented-cost
when tracing is off.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
    "traced",
]

import contextvars

#: Ambient parent span for the current thread/task. asyncio tasks and
#: plain threads each see their own value, which is exactly the
#: parenting scope we want; executor hops pass the parent explicitly.
_CURRENT_SPAN: "contextvars.ContextVar[Optional[Span]]" = (
    contextvars.ContextVar("repro_obs_span", default=None)
)

_DEFAULT: Optional["Tracer"] = None


def set_default_tracer(tracer: Optional["Tracer"]) -> None:
    """Install the process-wide fallback tracer.

    Background components (updater, shipper, follower) have no request
    context; their :func:`traced` calls record against this tracer.
    """
    global _DEFAULT
    _DEFAULT = tracer


def default_tracer() -> Optional["Tracer"]:
    return _DEFAULT


class Span:
    """One timed stage of a request (or background unit of work)."""

    __slots__ = (
        "span_id",
        "parent_id",
        "trace_id",
        "name",
        "tags",
        "start_ms",
        "end_ms",
        "status",
        "detail",
        "_ctx",
    )

    def __init__(
        self,
        span_id: str,
        parent_id: Optional[str],
        trace_id: str,
        name: str,
        tags: Dict[str, str],
        start_ms: float,
        ctx: Any = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.tags = tags
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.status = "ok"
        self.detail: Optional[str] = None
        self._ctx = ctx

    @property
    def duration_ms(self) -> float:
        end = self.end_ms if self.end_ms is not None else self.start_ms
        return end - self.start_ms

    def to_dict(self, epoch_ms: float) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "tags": dict(self.tags),
            "start_ms": round(self.start_ms - epoch_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
            "status": self.status,
            "detail": self.detail,
        }


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span` / :func:`traced`."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._token = None

    def tag(self, key: str, value: str) -> None:
        self.span.tags[key] = value

    def __enter__(self) -> "_SpanHandle":
        self._token = _CURRENT_SPAN.set(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self._tracer._end_span(self.span, exc)
        return None


class _NullHandle:
    """Reusable no-op stand-in when tracing is off."""

    __slots__ = ()
    span = None

    def tag(self, key: str, value: str) -> None:
        pass

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL = _NullHandle()

_current_context = None


def traced(
    name: str,
    *,
    tags: Optional[Dict[str, str]] = None,
    context: Any = None,
    parent: Optional[Span] = None,
):
    """Open a span on whatever tracer is in scope, or do nothing.

    Resolution order: the explicit/ambient request context's
    ``tracer`` attribute, then the process default tracer. Layers deep
    in the stack (router probes, WAL appends, updater folds) call this
    unconditionally — when no tracer is in scope it costs two
    attribute lookups and allocates nothing.
    """
    ctx = context
    if ctx is None:
        global _current_context
        if _current_context is None:
            # Imported lazily (context.py imports this module) and
            # cached: the tracing-off fast path must not pay import
            # machinery on every call.
            from repro.api.context import current_context

            _current_context = current_context
        ctx = _current_context()
    tracer = getattr(ctx, "tracer", None) if ctx is not None else None
    if tracer is None:
        tracer = _DEFAULT
    if tracer is None:
        return _NULL
    return tracer.span(name, context=ctx, tags=tags, parent=parent)


class _TraceBucket:
    __slots__ = ("trace_id", "spans", "root", "next_id", "created_ms")

    def __init__(self, trace_id: str, created_ms: float) -> None:
        self.trace_id = trace_id
        self.spans: List[Span] = []
        self.root: Optional[Span] = None
        self.next_id = 0
        self.created_ms = created_ms


class Tracer:
    """Collects spans into per-request trees and tail-samples them.

    Thread-safe; one instance per serving process (primary or
    follower), shared by both edges, the gateway, and the background
    write path.
    """

    def __init__(
        self,
        *,
        capacity: int = 256,
        slowest_per_endpoint: int = 8,
        max_spans_per_trace: int = 512,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if slowest_per_endpoint < 1:
            raise ValueError(
                "slowest_per_endpoint must be >= 1, "
                f"got {slowest_per_endpoint}"
            )
        self.capacity = capacity
        self.slowest_per_endpoint = slowest_per_endpoint
        self.max_spans_per_trace = max_spans_per_trace
        self._clock = clock
        self._lock = threading.Lock()
        self._open: "OrderedDict[str, _TraceBucket]" = OrderedDict()
        self._ring: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        # endpoint -> min-heap of the durations of the N slowest kept
        # traces; heap[0] is the ratcheting "slow enough" threshold.
        self._slowest: Dict[str, List[float]] = {}
        self._bg_seq = 0
        self._spans_started = 0
        self._spans_dropped = 0
        self._traces_sampled = 0
        self._traces_dropped = 0
        self._traces_evicted = 0
        self._late_spans = 0

    # -- span creation -------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        context: Any = None,
        tags: Optional[Dict[str, str]] = None,
        parent: Optional[Span] = None,
    ) -> "_SpanHandle | _NullHandle":
        if parent is None:
            parent = _CURRENT_SPAN.get()
        now = self._clock() * 1000.0
        span_tags: Dict[str, str] = {}
        with self._lock:
            self._spans_started += 1
            if parent is not None:
                trace_id = parent.trace_id
            elif context is not None:
                # Hedge children are req-N.1/.2 — the tree is one trace.
                trace_id = str(context.request_id).split(".")[0]
            else:
                self._bg_seq += 1
                trace_id = f"bg-{self._bg_seq}"
            bucket = self._open.get(trace_id)
            if bucket is None:
                if trace_id in self._ring:
                    # The trace already finalized (e.g. a hedge loser
                    # straggling past the winner's root) — record
                    # nothing, but keep the caller's code path intact.
                    self._late_spans += 1
                    return _NULL
                bucket = _TraceBucket(trace_id, now)
                self._open[trace_id] = bucket
                self._evict_stale_locked()
            if len(bucket.spans) >= self.max_spans_per_trace:
                self._spans_dropped += 1
                return _NULL
            bucket.next_id += 1
            span_id = f"{trace_id}:{bucket.next_id}"
            if parent is None and context is not None:
                # Root spans inherit the request's whole tag map.
                span_tags.update(
                    {str(k): str(v) for k, v in context.tags.items()}
                )
            if tags:
                span_tags.update({str(k): str(v) for k, v in tags.items()})
            if context is not None and str(context.request_id) != trace_id:
                span_tags.setdefault("context", str(context.request_id))
            span = Span(
                span_id=span_id,
                parent_id=parent.span_id if parent is not None else None,
                trace_id=trace_id,
                name=name,
                tags=span_tags,
                start_ms=now,
                ctx=context,
            )
            bucket.spans.append(span)
            if bucket.root is None and parent is None:
                bucket.root = span
        return _SpanHandle(self, span)

    def _end_span(self, span: Span, exc: Optional[BaseException]) -> None:
        if span.end_ms is not None:  # already closed by a finalizer
            return
        span.end_ms = self._clock() * 1000.0
        if exc is not None:
            code = getattr(exc, "code", None)
            if code == "cancelled":
                span.status = "cancelled"
                span.detail = str(code)
            else:
                span.status = "error"
                span.detail = (
                    str(code) if code is not None else type(exc).__name__
                )
        with self._lock:
            bucket = self._open.get(span.trace_id)
            if bucket is not None and bucket.root is span:
                del self._open[span.trace_id]
                self._finalize_locked(bucket)

    # -- finalization + sampling ----------------------------------------------

    def _finalize_locked(self, bucket: _TraceBucket) -> None:
        root = bucket.root
        assert root is not None and root.end_ms is not None
        for span in bucket.spans:
            if span.end_ms is None:
                # Still open when the root closed — only a cancelled
                # hedge loser (or abandoned work) can be here.
                span.end_ms = root.end_ms
                span.status = "cancelled"
                ctx = span._ctx
                done = getattr(ctx, "done", False) if ctx is not None else False
                reason = (
                    getattr(getattr(ctx, "token", None), "reason", None)
                    if ctx is not None
                    else None
                )
                span.detail = reason or (
                    "hedge lost" if done else "unfinished"
                )
        endpoint = root.tags.get("endpoint", root.name)
        reason = self._sample_reason_locked(bucket, endpoint)
        if reason is None:
            self._traces_dropped += 1
            return
        spans = sorted(bucket.spans, key=lambda s: (s.start_ms, s.span_id))
        trace = {
            "request_id": bucket.trace_id,
            "endpoint": endpoint,
            "duration_ms": round(root.duration_ms, 3),
            "sampled": reason,
            "ts": time.time(),
            "spans": [s.to_dict(root.start_ms) for s in spans],
        }
        self._ring[bucket.trace_id] = trace
        self._traces_sampled += 1
        while len(self._ring) > self.capacity:
            self._ring.popitem(last=False)
            self._traces_evicted += 1

    def _sample_reason_locked(
        self, bucket: _TraceBucket, endpoint: str
    ) -> Optional[str]:
        if any(s.status == "error" for s in bucket.spans):
            root = bucket.root
            assert root is not None
            if root.detail == "deadline_exceeded" or any(
                s.detail == "deadline_exceeded" for s in bucket.spans
            ):
                return "deadline"
            return "error"
        heap = self._slowest.setdefault(endpoint, [])
        duration = bucket.root.duration_ms  # type: ignore[union-attr]
        if len(heap) < self.slowest_per_endpoint:
            heapq.heappush(heap, duration)
            return "slow"
        if duration > heap[0]:
            heapq.heappushpop(heap, duration)
            return "slow"
        return None

    def _evict_stale_locked(self) -> None:
        # A trace whose root never finishes (edge thread died) must not
        # leak its bucket forever; cap open buckets at 4x the ring.
        limit = self.capacity * 4
        while len(self._open) > limit:
            self._open.popitem(last=False)
            self._traces_dropped += 1

    # -- queries ---------------------------------------------------------------

    def export(self, request_id: str) -> Optional[Dict[str, Any]]:
        """The sampled trace for ``request_id`` (root or child id)."""
        trace_id = str(request_id).split(".")[0]
        with self._lock:
            trace = self._ring.get(trace_id)
            return dict(trace) if trace is not None else None

    def latest(self) -> Optional[Dict[str, Any]]:
        """The most recently sampled trace, if any."""
        with self._lock:
            if not self._ring:
                return None
            return dict(next(reversed(self._ring.values())))

    def trace_ids(self) -> List[Tuple[str, str, float]]:
        """(request_id, endpoint, duration_ms) for every buffered trace,
        most recent last."""
        with self._lock:
            return [
                (t["request_id"], t["endpoint"], t["duration_ms"])
                for t in self._ring.values()
            ]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "spans_started": self._spans_started,
                "spans_dropped": self._spans_dropped,
                "late_spans": self._late_spans,
                "traces_sampled": self._traces_sampled,
                "traces_dropped": self._traces_dropped,
                "traces_evicted": self._traces_evicted,
                "buffered": len(self._ring),
                "open": len(self._open),
                "capacity": self.capacity,
                "slowest_per_endpoint": self.slowest_per_endpoint,
            }
