"""OpenMetrics exposition for the whole metrics tree.

:func:`render_openmetrics` walks the same nested JSON metrics tree
that ``GET /v1/metrics`` serves — gateway, ingest, updater, drift,
analytics, edge, replication lag, tracer drop counters — and renders
it as OpenMetrics text (served at ``GET /v1/metrics?format=prom`` on
both primary and follower roles). Latency recorders can additionally
be passed as live :class:`~repro.obs.histogram.Histogram` objects so
they render as real histogram families with cumulative ``le`` buckets
instead of pre-digested percentile gauges.

:func:`parse_openmetrics` is the strict checker the CI soak scripts
gate on: it validates family declarations, name/label syntax, sample
contiguity, bucket monotonicity, ``+Inf``/``_count`` agreement, and
the terminal ``# EOF`` — a malformed exposition fails the build, not
the scrape.

Renderer conventions (what the checker enforces):

* every family is declared with ``# TYPE`` exactly once, before its
  samples, and all its samples are contiguous;
* numeric tree leaves become ``gauge`` families named
  ``<prefix>_<path components joined by _>``;
* boolean leaves render as 1/0 gauges; string leaves become labels on
  the single ``<prefix>_meta`` family (value 1) so nothing in the
  tree is silently dropped;
* histograms emit ``_bucket``/``_count``/``_sum`` samples with
  millisecond upper bounds and a terminal ``le="+Inf"``.
"""

from __future__ import annotations

import math
import re
from functools import lru_cache
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.histogram import BUCKET_BOUNDS_MS, Histogram

__all__ = [
    "CONTENT_TYPE",
    "OpenMetricsDoc",
    "OpenMetricsError",
    "parse_openmetrics",
    "render_openmetrics",
]

#: Content-Type for the ``?format=prom`` response.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_TYPES = {"gauge", "counter", "histogram", "info", "unknown"}


@lru_cache(maxsize=4096)
def _sanitize(part: str) -> str:
    # Cached: a scrape re-sanitizes the same few hundred tree keys on
    # every request, and the key set is effectively static.
    out = re.sub(r"[^a-zA-Z0-9_]", "_", str(part)).lower()
    if not out or not re.match(r"[a-zA-Z_]", out[0]):
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    # Exact ints dominate real expositions (bucket counts, counters);
    # take that path before touching the float classifiers.
    t = type(value)
    if t is int:
        return str(value)
    if t is bool or isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: ``le`` labels for the shared histogram bounds, rendered once — every
#: histogram in the process uses the same module-constant buckets.
_LE_LABELS: Dict[float, str] = {
    bound: _format_value(bound) for bound in BUCKET_BOUNDS_MS
}


def _flatten(
    tree: Mapping[str, Any],
    path: Tuple[str, ...],
    numbers: List[Tuple[str, float]],
    strings: List[Tuple[str, str]],
) -> None:
    for key in tree:
        value = tree[key]
        sub = path + (_sanitize(key),)
        # type() fast paths first: ABC isinstance (Mapping) is an
        # order of magnitude slower and the tree is plain dicts.
        t = type(value)
        if t is dict or isinstance(value, Mapping):
            _flatten(value, sub, numbers, strings)
        elif t is bool or isinstance(value, bool):
            numbers.append(("_".join(sub), 1.0 if value else 0.0))
        elif t in (int, float) or isinstance(value, (int, float)):
            numbers.append(("_".join(sub), float(value)))
        elif t is str or isinstance(value, str):
            strings.append(("_".join(sub), value))
        # None / lists carry no scrapeable value; skipped by design.


def render_openmetrics(
    tree: Mapping[str, Any],
    *,
    histograms: Optional[Mapping[str, Histogram]] = None,
    prefix: str = "shoal",
) -> str:
    """Render a nested metrics tree (plus live histograms) as
    OpenMetrics text, ``# EOF``-terminated."""
    prefix = _sanitize(prefix)
    numbers: List[Tuple[str, float]] = []
    strings: List[Tuple[str, str]] = []
    _flatten(tree, (), numbers, strings)

    lines: List[str] = []
    for name, value in sorted(dict(numbers).items()):
        full = f"{prefix}_{name}"
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_format_value(value)}")

    for name, hist in sorted((histograms or {}).items()):
        full = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {full} histogram")
        buckets = hist.buckets()
        for ub, cum in buckets:
            le = _LE_LABELS.get(ub)
            if le is None:
                le = "+Inf" if math.isinf(ub) else _format_value(ub)
            lines.append(f'{full}_bucket{{le="{le}"}} {cum}')
        lines.append(f"{full}_count {buckets[-1][1]}")
        lines.append(f"{full}_sum {_format_value(hist.sum_ms())}")

    if strings:
        meta = f"{prefix}_meta"
        lines.append(f"# TYPE {meta} gauge")
        for name, value in sorted(dict(strings).items()):
            lines.append(
                f'{meta}{{path="{_escape_label(name)}",'
                f'value="{_escape_label(value)}"}} 1'
            )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class OpenMetricsError(ValueError):
    """The exposition violated the strict OpenMetrics subset."""


class OpenMetricsDoc:
    """Parsed exposition: family types plus every sample."""

    def __init__(
        self,
        types: Dict[str, str],
        samples: List[Tuple[str, Dict[str, str], float]],
    ) -> None:
        self.types = types
        self.samples = samples

    def value(self, name: str, **labels: str) -> float:
        """The unique sample value for ``name`` with exactly ``labels``."""
        want = dict(labels)
        matches = [v for n, lb, v in self.samples if n == name and lb == want]
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} samples for {name} with labels {want}"
            )
        return matches[0]

    def names(self) -> List[str]:
        return sorted({n for n, _, _ in self.samples})


def _parse_labels(raw: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(raw):
        eq = raw.index("=", i)
        key = raw[i:eq]
        if not _LABEL_RE.match(key):
            raise OpenMetricsError(f"line {line_no}: bad label name {key!r}")
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            raise OpenMetricsError(f"line {line_no}: unquoted label value")
        j = eq + 2
        value_chars: List[str] = []
        while j < len(raw):
            ch = raw[j]
            if ch == "\\":
                if j + 1 >= len(raw):
                    raise OpenMetricsError(
                        f"line {line_no}: dangling escape"
                    )
                esc = raw[j + 1]
                value_chars.append(
                    {"\\": "\\", '"': '"', "n": "\n"}.get(esc, esc)
                )
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        else:
            raise OpenMetricsError(f"line {line_no}: unterminated label")
        if key in labels:
            raise OpenMetricsError(
                f"line {line_no}: duplicate label {key!r}"
            )
        labels[key] = "".join(value_chars)
        i = j + 1
        if i < len(raw):
            if raw[i] != ",":
                raise OpenMetricsError(
                    f"line {line_no}: expected ',' between labels"
                )
            i += 1
    return labels


def _family_of(sample_name: str, types: Dict[str, str]) -> Optional[str]:
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_count", "_sum", "_total", "_info"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in types:
                return base
    return None


def parse_openmetrics(text: str) -> OpenMetricsDoc:
    """Strictly parse OpenMetrics text; raise :class:`OpenMetricsError`
    on any structural violation."""
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise OpenMetricsError("exposition must end with '# EOF'")
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    seen_families: List[str] = []
    current_family: Optional[str] = None
    for line_no, line in enumerate(lines[:-1], start=1):
        if line == "# EOF":
            raise OpenMetricsError(f"line {line_no}: '# EOF' before the end")
        if not line or line != line.strip():
            raise OpenMetricsError(
                f"line {line_no}: blank line or stray whitespace"
            )
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in (
                "TYPE",
                "HELP",
                "UNIT",
            ):
                raise OpenMetricsError(
                    f"line {line_no}: malformed comment {line!r}"
                )
            name = parts[2]
            if not _NAME_RE.match(name):
                raise OpenMetricsError(
                    f"line {line_no}: bad metric name {name!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _TYPES:
                    raise OpenMetricsError(
                        f"line {line_no}: bad TYPE line {line!r}"
                    )
                if name in types:
                    raise OpenMetricsError(
                        f"line {line_no}: family {name!r} declared twice"
                    )
                types[name] = parts[3]
                seen_families.append(name)
                current_family = name
            continue
        # -- sample line ---------------------------------------------------
        m = re.match(r"^([a-zA-Z_][a-zA-Z0-9_]*)(\{(.*)\})? (\S+)$", line)
        if not m:
            raise OpenMetricsError(f"line {line_no}: malformed sample {line!r}")
        sample_name, _, raw_labels, raw_value = m.groups()
        family = _family_of(sample_name, types)
        if family is None:
            raise OpenMetricsError(
                f"line {line_no}: sample {sample_name!r} has no TYPE"
            )
        if family != current_family:
            raise OpenMetricsError(
                f"line {line_no}: sample for {family!r} outside its "
                f"contiguous block (current family {current_family!r})"
            )
        labels = _parse_labels(raw_labels or "", line_no)
        try:
            if raw_value == "+Inf":
                value = math.inf
            elif raw_value == "-Inf":
                value = -math.inf
            else:
                value = float(raw_value)
        except ValueError:
            raise OpenMetricsError(
                f"line {line_no}: bad value {raw_value!r}"
            ) from None
        samples.append((sample_name, labels, value))

    _check_histograms(types, samples)
    return OpenMetricsDoc(types, samples)


def _check_histograms(
    types: Dict[str, str],
    samples: List[Tuple[str, Dict[str, str], float]],
) -> None:
    for family, kind in types.items():
        if kind != "histogram":
            continue
        series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]]
        series = {}
        counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
        sums: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for name, labels, value in samples:
            base = dict(labels)
            le = base.pop("le", None)
            key = tuple(sorted(base.items()))
            if name == f"{family}_bucket":
                if le is None:
                    raise OpenMetricsError(
                        f"{family}: bucket sample without le label"
                    )
                bound = math.inf if le == "+Inf" else float(le)
                series.setdefault(key, []).append((bound, value))
            elif name == f"{family}_count":
                counts[key] = value
            elif name == f"{family}_sum":
                sums[key] = value
        if not series:
            raise OpenMetricsError(f"{family}: histogram with no buckets")
        for key, buckets in series.items():
            bounds = [b for b, _ in buckets]
            if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise OpenMetricsError(
                    f"{family}: bucket bounds not strictly increasing"
                )
            values = [v for _, v in buckets]
            if values != sorted(values):
                raise OpenMetricsError(
                    f"{family}: bucket counts not cumulative"
                )
            if not math.isinf(bounds[-1]):
                raise OpenMetricsError(f"{family}: missing le=\"+Inf\" bucket")
            if key not in counts or key not in sums:
                raise OpenMetricsError(
                    f"{family}: missing _count or _sum sample"
                )
            if counts[key] != values[-1]:
                raise OpenMetricsError(
                    f"{family}: _count {counts[key]} != +Inf bucket "
                    f"{values[-1]}"
                )
