"""Vertex programming model for the BSP engine.

A *vertex program* subclasses :class:`Vertex` and implements
``compute(context, messages)``. During a superstep the engine calls
``compute`` on every active vertex; through the :class:`VertexContext`
the program can send messages, mutate its value, vote to halt, and read
aggregator values from the previous superstep. The engine delivers
messages at the start of the next superstep — classic Pregel.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

__all__ = ["Vertex", "VertexContext"]


class Vertex:
    """A stateful vertex owned by the engine.

    ``vertex_id`` is any hashable id, ``value`` arbitrary mutable
    state, ``edges`` a dict neighbour-id → edge value (weight).
    """

    __slots__ = ("vertex_id", "value", "edges", "active")

    def __init__(
        self,
        vertex_id: Hashable,
        value: Any = None,
        edges: Optional[Dict[Hashable, Any]] = None,
    ):
        self.vertex_id = vertex_id
        self.value = value
        self.edges: Dict[Hashable, Any] = dict(edges or {})
        self.active = True

    def compute(self, ctx: "VertexContext", messages: List[Any]) -> None:
        """Override in subclasses: one superstep of this vertex."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(id={self.vertex_id!r}, "
            f"value={self.value!r}, degree={len(self.edges)}, "
            f"active={self.active})"
        )


class VertexContext:
    """Engine services exposed to a vertex during ``compute``.

    The context is recreated per (vertex, superstep); sends and
    aggregations are collected by the engine after ``compute`` returns.
    """

    __slots__ = (
        "superstep",
        "_vertex",
        "_outbox",
        "_aggregators_in",
        "_aggregators_out",
        "_removed_edges",
    )

    def __init__(
        self,
        superstep: int,
        vertex: Vertex,
        aggregators_in: Dict[str, Any],
    ):
        self.superstep = superstep
        self._vertex = vertex
        self._outbox: List[tuple] = []
        self._aggregators_in = aggregators_in
        self._aggregators_out: List[tuple] = []
        self._removed_edges: List[Hashable] = []

    # -- messaging ---------------------------------------------------------

    def send(self, target_id: Hashable, message: Any) -> None:
        """Queue ``message`` for delivery to ``target_id`` next superstep."""
        self._outbox.append((target_id, message))

    def send_to_neighbors(self, message: Any) -> None:
        """Broadcast ``message`` along every outgoing edge."""
        for nbr in self._vertex.edges:
            self._outbox.append((nbr, message))

    # -- state -------------------------------------------------------------

    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message re-activates it."""
        self._vertex.active = False

    def remove_edge(self, neighbor_id: Hashable) -> None:
        """Schedule removal of the edge to ``neighbor_id`` (applied after
        the superstep so iteration order never matters)."""
        self._removed_edges.append(neighbor_id)

    # -- aggregators ---------------------------------------------------------

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to global aggregator ``name``."""
        self._aggregators_out.append((name, value))

    def aggregated(self, name: str, default: Any = None) -> Any:
        """Read aggregator ``name`` as of the *previous* superstep."""
        return self._aggregators_in.get(name, default)

    # -- engine-side accessors (not for vertex programs) ----------------------

    def drain_outbox(self) -> List[tuple]:
        out, self._outbox = self._outbox, []
        return out

    def drain_aggregations(self) -> List[tuple]:
        out, self._aggregators_out = self._aggregators_out, []
        return out

    def drain_removed_edges(self) -> List[Hashable]:
        out, self._removed_edges = self._removed_edges, []
        return out
