"""Vertex-centric BSP engine (stand-in for Alibaba's ODPS graph platform).

The paper deploys Parallel HAC "on the Alibaba distributed graph
platform (ODPS)". We cannot use ODPS; instead we implement a small
Pregel-style Bulk Synchronous Parallel engine with the same programming
model: vertex programs run in supersteps, exchange messages routed by a
hash partitioner across simulated workers, and halt by mutual vote.
Aggregators provide global reductions (e.g. "any merge happened this
round?"), and per-worker statistics expose the communication volume the
scalability bench (E4) reports.

Running the engine in-process keeps benches deterministic; the worker
abstraction still measures the quantities that matter for the paper's
scalability story: supersteps, messages per superstep, and the maximum
per-worker load (the critical path of a real distributed round).
"""

from repro.pregel.vertex import Vertex, VertexContext
from repro.pregel.messages import MessageRouter, combine_max, combine_sum
from repro.pregel.partition import HashPartitioner
from repro.pregel.aggregators import Aggregator, MaxAggregator, SumAggregator, OrAggregator
from repro.pregel.engine import PregelEngine, PregelConfig, SuperstepStats, PregelRunResult
from repro.pregel.algorithms import (
    pregel_connected_components,
    pregel_degrees,
    pregel_pagerank,
)

__all__ = [
    "Vertex",
    "VertexContext",
    "MessageRouter",
    "combine_max",
    "combine_sum",
    "HashPartitioner",
    "Aggregator",
    "MaxAggregator",
    "SumAggregator",
    "OrAggregator",
    "PregelEngine",
    "PregelConfig",
    "SuperstepStats",
    "PregelRunResult",
    "pregel_connected_components",
    "pregel_pagerank",
    "pregel_degrees",
]
