"""Message routing and combiners for the BSP engine.

Messages sent during superstep *s* are grouped per target vertex and
delivered at superstep *s+1*. An optional *combiner* reduces multiple
messages to one before delivery — the classic Pregel optimisation that
the max-diffusion of Parallel HAC exploits (only the best edge record
needs to travel).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.pregel.partition import HashPartitioner

__all__ = ["MessageRouter", "combine_max", "combine_sum"]

Combiner = Callable[[List[Any]], List[Any]]


def combine_max(messages: List[Any]) -> List[Any]:
    """Keep only the maximum message (requires orderable messages)."""
    if not messages:
        return []
    return [max(messages)]


def combine_sum(messages: List[Any]) -> List[Any]:
    """Sum numeric messages into one."""
    if not messages:
        return []
    return [sum(messages)]


class MessageRouter:
    """Collects sends during a superstep and delivers them at the next.

    Tracks the statistics the scalability model consumes: total
    messages, remote (cross-worker) messages, and per-worker inbox
    sizes.
    """

    def __init__(
        self,
        partitioner: HashPartitioner,
        combiner: Optional[Combiner] = None,
    ):
        self._partitioner = partitioner
        self._combiner = combiner
        self._pending: Dict[Hashable, List[Any]] = {}
        self._sent_total = 0
        self._sent_remote = 0

    # -- sending ------------------------------------------------------------

    def post(self, source_id: Hashable, target_id: Hashable, message: Any) -> None:
        """Queue one message for the next superstep."""
        self._pending.setdefault(target_id, []).append(message)
        self._sent_total += 1
        if self._partitioner.is_remote(source_id, target_id):
            self._sent_remote += 1

    # -- delivery -------------------------------------------------------------

    def flush(self) -> Dict[Hashable, List[Any]]:
        """Return (and clear) the inboxes for the next superstep,
        applying the combiner per target."""
        inboxes = self._pending
        self._pending = {}
        if self._combiner is not None:
            inboxes = {t: self._combiner(msgs) for t, msgs in inboxes.items()}
        return inboxes

    def has_pending(self) -> bool:
        return bool(self._pending)

    # -- statistics ---------------------------------------------------------------

    @property
    def sent_total(self) -> int:
        """Messages posted since construction (pre-combiner)."""
        return self._sent_total

    @property
    def sent_remote(self) -> int:
        """Cross-worker messages posted since construction."""
        return self._sent_remote

    def reset_stats(self) -> None:
        self._sent_total = 0
        self._sent_remote = 0

    def pending_per_worker(self) -> Dict[int, int]:
        """Messages currently queued, grouped by target worker."""
        out: Dict[int, int] = {w: 0 for w in range(self._partitioner.n_workers)}
        for target, msgs in self._pending.items():
            out[self._partitioner.worker_of(target)] += len(msgs)
        return out
