"""Reusable vertex programs for the BSP engine.

The ODPS graph platform SHOAL runs on is general-purpose; to show the
stand-in engine is too (and to validate its semantics beyond the HAC
diffusion), this module ships three classic vertex programs used by
tests and diagnostics:

* connected components via label propagation (min-id),
* weighted PageRank,
* degree / strength computation.

Each has a plain-graph reference in :mod:`repro.graph`, and the tests
pin the two implementations together.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.sparse import SparseGraph
from repro.pregel.engine import PregelConfig, PregelEngine
from repro.pregel.messages import combine_max
from repro.pregel.vertex import Vertex

__all__ = [
    "pregel_connected_components",
    "pregel_pagerank",
    "pregel_degrees",
]


class _ComponentVertex(Vertex):
    """Min-label propagation: value converges to the component's
    smallest vertex id."""

    def compute(self, ctx, messages) -> None:
        if ctx.superstep == 0:
            self.value = self.vertex_id
            ctx.send_to_neighbors(-self.value)  # negate: combine_max → min
            return
        best = self.value
        for m in messages:
            if -m < best:
                best = -m
        if best < self.value:
            self.value = best
            ctx.send_to_neighbors(-self.value)
        ctx.vote_to_halt()


def pregel_connected_components(
    graph: SparseGraph, n_workers: int = 4
) -> Dict[int, int]:
    """Vertex → component label (smallest member id), via the engine."""
    vertices = [
        _ComponentVertex(v, edges=graph.neighbors(v)) for v in graph.vertices()
    ]
    engine = PregelEngine(
        vertices,
        PregelConfig(
            n_workers=n_workers,
            max_supersteps=graph.n_vertices + 2,
            combiner=combine_max,
        ),
    )
    engine.run()
    return {v.vertex_id: v.value for v in engine.vertices()}


class _PageRankVertex(Vertex):
    """Weighted PageRank with a fixed iteration count.

    value = current rank; edge weights define the transition
    distribution (out-weight-proportional).
    """

    __slots__ = ("iterations", "damping", "n_vertices")

    def __init__(self, vertex_id, edges, iterations, damping, n_vertices):
        super().__init__(vertex_id, value=1.0 / n_vertices, edges=edges)
        self.iterations = iterations
        self.damping = damping
        self.n_vertices = n_vertices

    def _send_shares(self, ctx) -> None:
        total = sum(self.edges.values())
        if total <= 0:
            return
        for nbr, w in self.edges.items():
            ctx.send(nbr, self.value * (w / total))

    def compute(self, ctx, messages) -> None:
        if ctx.superstep > 0:
            incoming = sum(messages)
            self.value = (1.0 - self.damping) / self.n_vertices + (
                self.damping * incoming
            )
        if ctx.superstep < self.iterations:
            self._send_shares(ctx)
        else:
            ctx.vote_to_halt()


def pregel_pagerank(
    graph: SparseGraph,
    iterations: int = 20,
    damping: float = 0.85,
    n_workers: int = 4,
) -> Dict[int, float]:
    """Weighted PageRank over an undirected graph (each edge both ways).

    Returns vertex → rank; ranks sum to ~1 (dangling mass is
    redistributed via the teleport term only, so graphs with isolated
    vertices lose a little mass, as in the classic formulation).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = graph.n_vertices
    if n == 0:
        return {}
    vertices = [
        _PageRankVertex(v, graph.neighbors(v), iterations, damping, n)
        for v in graph.vertices()
    ]
    engine = PregelEngine(
        vertices,
        PregelConfig(n_workers=n_workers, max_supersteps=iterations + 2),
    )
    engine.run()
    return {v.vertex_id: float(v.value) for v in engine.vertices()}


class _DegreeVertex(Vertex):
    def compute(self, ctx, messages) -> None:
        self.value = (len(self.edges), float(sum(self.edges.values())))
        ctx.vote_to_halt()


def pregel_degrees(graph: SparseGraph, n_workers: int = 4) -> Dict[int, tuple]:
    """Vertex → (degree, strength) in one superstep."""
    vertices = [
        _DegreeVertex(v, edges=graph.neighbors(v)) for v in graph.vertices()
    ]
    engine = PregelEngine(vertices, PregelConfig(n_workers=n_workers))
    engine.run()
    return {v.vertex_id: v.value for v in engine.vertices()}
