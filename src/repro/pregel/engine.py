"""The BSP superstep engine.

Executes a set of :class:`~repro.pregel.vertex.Vertex` programs until
every vertex has voted to halt and no messages are in flight (or a
superstep cap is reached). Vertices are partitioned over simulated
workers; per-superstep statistics record active vertices, messages
(total and cross-worker) and the busiest worker's load, from which the
scalability bench derives a simulated wall-clock for a true cluster.

The engine is deliberately single-threaded: BSP semantics make worker
execution order unobservable, so an in-process loop that *accounts* for
parallelism is deterministic and exactly as informative for the
experiments in this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro._util import check_positive
from repro.pregel.aggregators import Aggregator
from repro.pregel.messages import Combiner, MessageRouter
from repro.pregel.partition import HashPartitioner
from repro.pregel.vertex import Vertex, VertexContext

__all__ = ["PregelConfig", "SuperstepStats", "PregelRunResult", "PregelEngine"]


@dataclass(frozen=True)
class PregelConfig:
    """Engine parameters."""

    n_workers: int = 4
    max_supersteps: int = 1000
    combiner: Optional[Combiner] = None

    def __post_init__(self) -> None:
        check_positive("n_workers", self.n_workers)
        check_positive("max_supersteps", self.max_supersteps)


@dataclass(frozen=True)
class SuperstepStats:
    """Observability record for one superstep."""

    superstep: int
    active_vertices: int
    messages_sent: int
    messages_remote: int
    max_worker_vertices: int

    @property
    def remote_fraction(self) -> float:
        if self.messages_sent == 0:
            return 0.0
        return self.messages_remote / self.messages_sent


@dataclass
class PregelRunResult:
    """Outcome of :meth:`PregelEngine.run`."""

    supersteps: int
    halted: bool
    stats: List[SuperstepStats] = field(default_factory=list)
    aggregators: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return sum(s.messages_sent for s in self.stats)

    @property
    def total_remote_messages(self) -> int:
        return sum(s.messages_remote for s in self.stats)

    def critical_path_work(self) -> int:
        """Σ over supersteps of the busiest worker's vertex count.

        In a real cluster each superstep takes as long as its slowest
        worker; this sum is the engine's simulated critical path and
        the basis of E4's speedup model.
        """
        return sum(s.max_worker_vertices for s in self.stats)


class PregelEngine:
    """Runs vertex programs in supersteps until global quiescence."""

    def __init__(
        self,
        vertices: List[Vertex],
        config: PregelConfig = PregelConfig(),
        aggregators: Optional[Dict[str, Aggregator]] = None,
    ):
        ids = [v.vertex_id for v in vertices]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate vertex ids")
        self._vertices: Dict[Hashable, Vertex] = {v.vertex_id: v for v in vertices}
        self._config = config
        self._partitioner = HashPartitioner(config.n_workers)
        self._router = MessageRouter(self._partitioner, config.combiner)
        self._aggregators: Dict[str, Aggregator] = dict(aggregators or {})
        self._aggregated_values: Dict[str, Any] = {}

    # -- accessors -----------------------------------------------------------

    @property
    def config(self) -> PregelConfig:
        return self._config

    def vertex(self, vertex_id: Hashable) -> Vertex:
        return self._vertices[vertex_id]

    def vertices(self) -> List[Vertex]:
        return [self._vertices[k] for k in sorted(self._vertices, key=repr)]

    def vertex_values(self) -> Dict[Hashable, Any]:
        return {vid: v.value for vid, v in self._vertices.items()}

    def add_aggregator(self, name: str, aggregator: Aggregator) -> None:
        self._aggregators[name] = aggregator

    def aggregated(self, name: str, default: Any = None) -> Any:
        """Last reduced value of aggregator ``name``."""
        return self._aggregated_values.get(name, default)

    # -- execution -------------------------------------------------------------

    def run(self) -> PregelRunResult:
        """Execute supersteps until halt or the superstep cap."""
        stats: List[SuperstepStats] = []
        inboxes: Dict[Hashable, List[Any]] = {}
        superstep = 0
        halted = False

        while superstep < self._config.max_supersteps:
            # A vertex participates if it is active or has mail.
            participants = [
                v
                for v in self._vertices.values()
                if v.active or v.vertex_id in inboxes
            ]
            if not participants:
                halted = True
                break

            # Per-worker load for this superstep (critical-path model).
            per_worker: Dict[int, int] = {}
            for v in participants:
                w = self._partitioner.worker_of(v.vertex_id)
                per_worker[w] = per_worker.get(w, 0) + 1

            self._router.reset_stats()
            for agg in self._aggregators.values():
                agg.reset()

            # Deterministic order: sorted by repr of id (ids are ints in
            # all our programs, repr sorting matches numeric for same width,
            # but we sort numerically when possible).
            try:
                participants.sort(key=lambda v: v.vertex_id)
            except TypeError:
                participants.sort(key=lambda v: repr(v.vertex_id))

            for v in participants:
                msgs = inboxes.get(v.vertex_id, [])
                if msgs:
                    v.active = True
                ctx = VertexContext(superstep, v, self._aggregated_values)
                v.compute(ctx, msgs)
                for target, message in ctx.drain_outbox():
                    self._router.post(v.vertex_id, target, message)
                for name, value in ctx.drain_aggregations():
                    if name not in self._aggregators:
                        raise KeyError(f"unknown aggregator {name!r}")
                    self._aggregators[name].accumulate(value)
                for nbr in ctx.drain_removed_edges():
                    v.edges.pop(nbr, None)

            self._aggregated_values = {
                name: agg.value for name, agg in self._aggregators.items()
            }

            stats.append(
                SuperstepStats(
                    superstep=superstep,
                    active_vertices=len(participants),
                    messages_sent=self._router.sent_total,
                    messages_remote=self._router.sent_remote,
                    max_worker_vertices=max(per_worker.values(), default=0),
                )
            )
            inboxes = self._router.flush()
            superstep += 1
            if not inboxes and all(not v.active for v in self._vertices.values()):
                halted = True
                break

        return PregelRunResult(
            supersteps=superstep,
            halted=halted,
            stats=stats,
            aggregators=dict(self._aggregated_values),
        )
