"""Worker partitioning for the BSP engine.

Vertices are assigned to simulated workers by a hash partitioner, as on
real distributed graph platforms. Partitioning determines which
messages are "remote" (cross-worker) — the quantity the scalability
bench uses to model network cost.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro._util import check_positive

__all__ = ["HashPartitioner"]


def _stable_hash(key: Hashable) -> int:
    """Deterministic hash across processes (``hash()`` for str is salted)."""
    if isinstance(key, int):
        # Avalanche the bits so consecutive ids spread across workers.
        x = key & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        return x ^ (x >> 31)
    if isinstance(key, str):
        h = 2166136261
        for ch in key.encode("utf-8"):
            h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
        return h
    return hash(key) & 0xFFFFFFFFFFFFFFFF


class HashPartitioner:
    """Deterministic hash assignment of vertex ids to ``n_workers``."""

    def __init__(self, n_workers: int):
        check_positive("n_workers", n_workers)
        self._n_workers = int(n_workers)

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def worker_of(self, vertex_id: Hashable) -> int:
        """Worker index in ``[0, n_workers)`` owning ``vertex_id``."""
        return _stable_hash(vertex_id) % self._n_workers

    def partition(self, vertex_ids: List[Hashable]) -> Dict[int, List[Hashable]]:
        """Group ids by owning worker (all workers present in output)."""
        groups: Dict[int, List[Hashable]] = {w: [] for w in range(self._n_workers)}
        for vid in vertex_ids:
            groups[self.worker_of(vid)].append(vid)
        return groups

    def is_remote(self, source_id: Hashable, target_id: Hashable) -> bool:
        """True if a message between the two ids crosses workers."""
        return self.worker_of(source_id) != self.worker_of(target_id)
