"""Global aggregators for the BSP engine.

Aggregators give vertex programs a global reduction channel: values
contributed during superstep *s* are reduced and visible to every
vertex at superstep *s+1*. Parallel HAC uses an :class:`OrAggregator`
("did any merge happen this round?") to decide termination, and the
benches use :class:`SumAggregator` to count merges per round.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")

__all__ = ["Aggregator", "MaxAggregator", "SumAggregator", "OrAggregator"]


class Aggregator(Generic[T]):
    """Base aggregator: accumulate values, expose the reduction.

    Subclasses define the identity element and the binary reduce.
    The engine calls ``reset`` at each superstep boundary after
    snapshotting the reduced value.
    """

    def __init__(self):
        self._value: T = self.identity()

    def identity(self) -> T:
        raise NotImplementedError

    def reduce(self, a: T, b: T) -> T:
        raise NotImplementedError

    def accumulate(self, value: T) -> None:
        self._value = self.reduce(self._value, value)

    @property
    def value(self) -> T:
        return self._value

    def reset(self) -> None:
        self._value = self.identity()


class MaxAggregator(Aggregator):
    """Global maximum; identity is ``None`` (no contribution yet)."""

    def identity(self):
        return None

    def reduce(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return max(a, b)


class SumAggregator(Aggregator):
    """Global sum of numeric contributions."""

    def identity(self):
        return 0

    def reduce(self, a, b):
        return a + b


class OrAggregator(Aggregator):
    """Global boolean OR; used as a 'work happened' flag."""

    def identity(self):
        return False

    def reduce(self, a, b):
        return bool(a) or bool(b)
