"""Command-line interface.

Operational entry points for the library, mirroring how the production
system would be driven:

* ``python -m repro.cli fit`` — generate a marketplace, run the
  pipeline, print the taxonomy tree and stats, and optionally persist
  the taxonomy as JSON (``--output``) or the full model as a versioned
  snapshot directory (``--save``);
* ``python -m repro.cli evaluate`` — run the precision protocol and
  modularity scoring against ground truth;
* ``python -m repro.cli search`` — answer keyword queries from the
  command line (demo scenario A);
* ``python -m repro.cli abtest`` — run the paired CTR experiment.

All subcommands accept ``--profile`` (tiny/small/default/large/xlarge)
and ``--seed`` so results are reproducible from the shell, plus
``--load DIR`` to warm-start from a ``fit --save`` snapshot instead of
refitting — the offline-fit → online-serving handoff. ``search
--load`` builds the read tier purely from disk, no marketplace
generation at all.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines.ontology_rec import OntologyRecommender, OntologyRecommenderConfig
from repro.core.config import ShoalConfig
from repro.core.pipeline import ShoalModel, ShoalPipeline
from repro.core.report import compute_stats, render_tree
from repro.core.serving import ShoalService
from repro.data.marketplace import PROFILES, generate_marketplace
from repro.eval.abtest import ABTestConfig, ABTestSimulator
from repro.eval.precision import PrecisionConfig, SamplingPrecisionEvaluator
from repro.graph.modularity import modularity
from repro.store.persistence import save_taxonomy

__all__ = ["build_parser", "main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="small",
        help="synthetic marketplace size profile",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--alpha", type=float, default=None,
        help="override Eq. 3 mixing coefficient (default: paper's 0.7)",
    )
    parser.add_argument(
        "--load", default=None, metavar="DIR",
        help="load a model snapshot (from 'fit --save') instead of fitting",
    )


def _fit_model(args, market):
    config = ShoalConfig()
    if args.alpha is not None:
        config = config.with_alpha(args.alpha)
    return ShoalPipeline(config).fit(market)


def _check_load_flags(args) -> None:
    """Reject flag combinations that would silently have no effect."""
    if args.load and args.alpha is not None:
        raise SystemExit(
            "--alpha has no effect with --load: the snapshot was fitted "
            "with its own alpha; refit with 'fit --alpha ... --save' instead"
        )


def _check_snapshot_world(args) -> None:
    """Fail fast when a snapshot is paired with the wrong marketplace.

    Ground truth (evaluate) and the CTR simulation (abtest) come from
    the regenerated world, so the snapshot must have been fitted on the
    same --profile/--seed. 'fit --save' records both in the manifest.
    """
    from repro.store.persistence import read_manifest

    meta = read_manifest(args.load).get("metadata", {})
    profile, seed = meta.get("profile"), meta.get("seed")
    if profile is None:
        return  # snapshot not written by the CLI; trust the operator
    if profile != args.profile or seed != args.seed:
        raise SystemExit(
            f"snapshot at {args.load} was fitted on --profile {profile} "
            f"--seed {seed}, but this command runs against --profile "
            f"{args.profile} --seed {args.seed}; rerun with the "
            "snapshot's flags"
        )


def _build(args) -> tuple:
    """(marketplace, model) — loading the model from a snapshot when
    ``--load`` is given, so only the cheap world generation runs."""
    _check_load_flags(args)
    if args.load:
        _check_snapshot_world(args)
    market = generate_marketplace(PROFILES[args.profile].with_seed(args.seed))
    if args.load:
        model = ShoalModel.load(args.load)
    else:
        model = _fit_model(args, market)
    return market, model


def _cmd_fit(args) -> int:
    market, model = _build(args)
    names = {c.category_id: c.name for c in market.ontology}
    print(market.summary())
    print(model.summary())
    print()
    print(render_tree(model.taxonomy, names, max_roots=args.max_roots))
    print()
    print(compute_stats(model.taxonomy).summary())
    if args.output:
        save_taxonomy(model.taxonomy, args.output)
        print(f"taxonomy written to {args.output}")
    if args.save:
        model.save(
            args.save,
            entity_categories={
                e.entity_id: e.category_id for e in market.catalog.entities
            },
            metadata={"profile": args.profile, "seed": args.seed},
        )
        print(f"model snapshot written to {args.save}")
    return 0


def _cmd_evaluate(args) -> int:
    market, model = _build(args)
    truth = {e.entity_id: e.scenario_id for e in market.catalog.entities}
    report = SamplingPrecisionEvaluator(
        PrecisionConfig(n_topics=args.topics, items_per_topic=args.items)
    ).evaluate(model.taxonomy, truth)
    labels = model.clustering.dendrogram.root_partition()
    q = modularity(model.entity_graph, labels)
    print(f"precision: {report.summary()}  (paper: >= 0.98)")
    print(f"modularity: {q:.3f}  (paper: > 0.3)")
    return 0 if (report.precision >= 0.9 and q > 0.3) else 1


def _default_snapshot_query(service: ShoalService) -> str:
    """A demo query when serving from disk: a topic's own description."""
    for topic in service.taxonomy.root_topics():
        if topic.descriptions:
            return topic.descriptions[0]
    return "example"


def _cmd_search(args) -> int:
    _check_load_flags(args)
    if args.load:
        # Pure warm-start: the read tier comes entirely from the
        # snapshot — no marketplace generation, no fitting. (No world
        # consistency check needed: nothing here uses the marketplace.)
        service = ShoalService.from_snapshot(args.load)
        names = {}
        queries = args.queries or [_default_snapshot_query(service)]
    else:
        market, model = _build(args)
        service = ShoalService(model)
        service.set_entity_categories(
            {e.entity_id: e.category_id for e in market.catalog.entities}
        )
        names = {c.category_id: c.name for c in market.ontology}
        queries = args.queries or [
            next(
                q.text for q in market.query_log.queries
                if q.intent_kind == "scenario"
            )
        ]
    batched = service.search_topics_batch(queries, k=args.k)
    for query, hits in zip(queries, batched):
        print(f"query: {query!r}")
        if not hits:
            print("  (no matching topics)")
            continue
        for h in hits:
            cats = service.categories_of_topic(h.topic_id)
            cat_names = ", ".join(names.get(c, str(c)) for c in cats[:4])
            print(
                f"  topic {h.topic_id}  score={h.score:7.2f}  \"{h.label}\""
                f"  [{cat_names}]"
            )
    return 0


def _cmd_abtest(args) -> int:
    market, model = _build(args)
    service = ShoalService(model)
    service.set_entity_categories(
        {e.entity_id: e.category_id for e in market.catalog.entities}
    )
    control = OntologyRecommender(
        market.ontology, market.catalog,
        OntologyRecommenderConfig(slate_size=args.slate),
    )
    sim = ABTestSimulator(
        market, ABTestConfig(n_impressions=args.impressions, seed=args.seed)
    )
    report = sim.run(
        control.recommend,
        lambda uid, q: service.recommend_entities_for_query(q, args.slate),
    )
    print(report.summary())
    print("paper reported: +5% CTR (3M users, Taobao)")
    return 0 if report.relative_uplift > 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SHOAL reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fit = sub.add_parser("fit", help="fit SHOAL and print the taxonomy")
    _add_common(p_fit)
    p_fit.add_argument("--max-roots", type=int, default=8)
    p_fit.add_argument("--output", default=None, help="write taxonomy JSON here")
    p_fit.add_argument(
        "--save", default=None, metavar="DIR",
        help="write a full model snapshot directory (for later --load)",
    )
    p_fit.set_defaults(func=_cmd_fit)

    p_eval = sub.add_parser("evaluate", help="precision + modularity check")
    _add_common(p_eval)
    p_eval.add_argument("--topics", type=int, default=1000)
    p_eval.add_argument("--items", type=int, default=100)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_search = sub.add_parser("search", help="keyword search over topics")
    _add_common(p_search)
    p_search.add_argument("queries", nargs="*", help="queries to run")
    p_search.add_argument("-k", type=int, default=5)
    p_search.set_defaults(func=_cmd_search)

    p_ab = sub.add_parser("abtest", help="run the paired CTR A/B simulation")
    _add_common(p_ab)
    p_ab.add_argument("--impressions", type=int, default=5000)
    p_ab.add_argument("--slate", type=int, default=8)
    p_ab.set_defaults(func=_cmd_abtest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
