"""Command-line interface.

Operational entry points for the library, mirroring how the production
system would be driven:

* ``python -m repro.cli fit`` — generate a marketplace, run the
  pipeline, print the taxonomy tree and stats, and optionally persist
  the taxonomy as JSON (``--output``) or the full model as a versioned
  snapshot directory (``--save``);
* ``python -m repro.cli evaluate`` — run the precision protocol and
  modularity scoring against ground truth;
* ``python -m repro.cli search`` — answer keyword queries from the
  command line (demo scenario A);
* ``python -m repro.cli abtest`` — run the paired CTR experiment;
* ``python -m repro.cli serve-cluster`` — shard the model behind a
  cluster router, answer queries through it, and optionally write the
  per-shard snapshot directory (``--save-shards``);
* ``python -m repro.cli serve-http`` — expose a snapshot or cluster
  snapshot over the JSON gateway API (``repro.api``) on a stdlib HTTP
  server, with the standard middleware stack (metrics, optional rate
  limit and deadline, result cache);
* ``python -m repro.cli replay`` — replay a Zipf-skewed traffic
  workload (steady/bursty/drifting/adversarial) against the single
  service, the sharded cluster, both, or any ``--backend`` URI
  (``snapshot:DIR`` / ``cluster:DIR`` / ``http://host:port``),
  reporting QPS and p50/p95/p99 latencies;
* ``python -m repro.cli ingest`` — run the streaming write path end to
  end offline: fit a base window, stream the remaining days' events
  through the WAL-backed ingest pipe, micro-batch them into model
  generations, and hot-swap each generation into a live read tier with
  health checks (``repro.streaming``);
* ``python -m repro.cli analytics`` — fold a WAL into the SQLite
  analytics store offline and print a canned report (``--report``) or
  run one guarded read-only SQL statement (``--sql``) against it
  (``repro.analytics``);
* ``python -m repro.cli trace`` — fetch one sampled span tree from a
  running server's ``GET /v1/trace`` endpoint and render it as an
  indented tree (``--request-id`` for an exact lookup, otherwise the
  most recently sampled trace).

``serve-http --ingest-wal DIR`` additionally opens the **live** write
path: ``POST /v1/ingest`` admits query events into a durable WAL, a
background micro-batch updater slides the model window, and every new
generation is hot-swapped into the serving backend with zero read
downtime. ``GET /v1/metrics`` exposes gateway, ingest, updater,
analytics, and async-edge counters as one JSON scrape point (the
unversioned alias is gone after its one-release deprecation).

``serve-http --edge async`` serves the same contract from the asyncio
edge (:class:`~repro.api.aio.AsyncShoalServer`): thousands of
connections, deadline cancellation, request hedging
(``--hedge-after-ms``), and coalesced WAL ingest
(``--coalesce-events`` / ``--coalesce-delay-ms``). ``--edge thread``
keeps the threaded edge for one more release.

Both serving roles (``serve-http`` and ``serve-follower``) carry the
observability surface: a :class:`~repro.obs.Tracer` samples
per-request span trees served at ``GET /v1/trace``
(``--trace-capacity 0`` disables tracing), ``GET
/v1/metrics?format=prom`` renders the whole metrics tree as
OpenMetrics text for scraping, and ``--access-log PATH`` appends one
structured JSON line per gateway request (``-`` writes to stdout).

``serve-http --analytics-db PATH`` (with ``--ingest-wal``) attaches
the HTAP analytics tier: a background :class:`SegmentTailer` streams
closed WAL segments into a WAL-mode SQLite replica, and ``GET/POST
/v1/analytics`` serves guarded SQL and canned reports from it without
ever touching a serving structure. ``--drift-threshold`` arms the
taxonomy-drift gate so trivially-different generations skip their
rollout entirely.

All serving paths go through the typed gateway API in
:mod:`repro.api`; this module never constructs a concrete read tier
directly (a contract test enforces that).

All subcommands accept ``--profile`` (tiny/small/default/large/xlarge)
and ``--seed`` so results are reproducible from the shell, plus
``--load DIR`` to warm-start from a ``fit --save`` snapshot instead of
refitting — the offline-fit → online-serving handoff. ``search
--load`` builds the read tier purely from disk, no marketplace
generation at all.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.api import (
    ANALYTICS_REPORTS,
    BatchRequest,
    RecommendRequest,
    ServiceBackend,
    open_backend,
)
from repro.baselines.ontology_rec import OntologyRecommender, OntologyRecommenderConfig
from repro.core.config import ShoalConfig
from repro.core.pipeline import ShoalModel, ShoalPipeline
from repro.core.report import compute_stats, render_tree
from repro.data.marketplace import PROFILES, generate_marketplace
from repro.eval.abtest import ABTestConfig, ABTestSimulator
from repro.eval.precision import PrecisionConfig, SamplingPrecisionEvaluator
from repro.graph.modularity import modularity
from repro.store.persistence import save_taxonomy

__all__ = ["build_parser", "main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="small",
        help="synthetic marketplace size profile",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--alpha", type=float, default=None,
        help="override Eq. 3 mixing coefficient (default: paper's 0.7)",
    )
    parser.add_argument(
        "--load", default=None, metavar="DIR",
        help="load a model snapshot (from 'fit --save') instead of fitting",
    )


def _fit_model(args, market):
    config = ShoalConfig()
    if args.alpha is not None:
        config = config.with_alpha(args.alpha)
    return ShoalPipeline(config).fit(market)


def _check_load_flags(args) -> None:
    """Reject flag combinations that would silently have no effect."""
    if args.load and args.alpha is not None:
        raise SystemExit(
            "--alpha has no effect with --load: the snapshot was fitted "
            "with its own alpha; refit with 'fit --alpha ... --save' instead"
        )


def _check_world_metadata(meta: dict, location: str, args) -> None:
    """Fail fast when a saved artifact mismatches the regenerated world.

    Ground truth (evaluate), the CTR simulation (abtest) and replay
    workloads come from the regenerated marketplace, so the artifact
    must have been built on the same --profile/--seed. The CLI records
    both in the manifest metadata on every save.
    """
    profile, seed = meta.get("profile"), meta.get("seed")
    if profile is None:
        return  # artifact not written by the CLI; trust the operator
    if profile != args.profile or seed != args.seed:
        raise SystemExit(
            f"{location} was built on --profile {profile} --seed {seed}, "
            f"but this command runs against --profile {args.profile} "
            f"--seed {args.seed}; rerun with the artifact's flags"
        )


def _check_snapshot_world(args) -> None:
    from repro.store.persistence import read_manifest

    _check_world_metadata(
        read_manifest(args.load).get("metadata", {}),
        f"snapshot at {args.load}",
        args,
    )


def _build(args) -> tuple:
    """(marketplace, model) — loading the model from a snapshot when
    ``--load`` is given, so only the cheap world generation runs."""
    _check_load_flags(args)
    if args.load:
        _check_snapshot_world(args)
    market = generate_marketplace(PROFILES[args.profile].with_seed(args.seed))
    if args.load:
        model = ShoalModel.load(args.load)
    else:
        model = _fit_model(args, market)
    return market, model


def _cmd_fit(args) -> int:
    market, model = _build(args)
    names = {c.category_id: c.name for c in market.ontology}
    print(market.summary())
    print(model.summary())
    print()
    print(render_tree(model.taxonomy, names, max_roots=args.max_roots))
    print()
    print(compute_stats(model.taxonomy).summary())
    if args.output:
        save_taxonomy(model.taxonomy, args.output)
        print(f"taxonomy written to {args.output}")
    if args.save:
        model.save(
            args.save,
            entity_categories={
                e.entity_id: e.category_id for e in market.catalog.entities
            },
            metadata={"profile": args.profile, "seed": args.seed},
        )
        print(f"model snapshot written to {args.save}")
    return 0


def _cmd_evaluate(args) -> int:
    market, model = _build(args)
    truth = {e.entity_id: e.scenario_id for e in market.catalog.entities}
    report = SamplingPrecisionEvaluator(
        PrecisionConfig(n_topics=args.topics, items_per_topic=args.items)
    ).evaluate(model.taxonomy, truth)
    labels = model.clustering.dendrogram.root_partition()
    q = modularity(model.entity_graph, labels)
    print(f"precision: {report.summary()}  (paper: >= 0.98)")
    print(f"modularity: {q:.3f}  (paper: > 0.3)")
    return 0 if (report.precision >= 0.9 and q > 0.3) else 1


def _default_snapshot_query(service) -> str:
    """A demo query when serving from disk: a topic's own description."""
    for topic in service.taxonomy.root_topics():
        if topic.descriptions:
            return topic.descriptions[0]
    return "example"


def _print_hits(backend, queries, results, names) -> None:
    """Shared hit renderer for search/serve-cluster."""
    categories_of = getattr(backend, "categories_of_topic", None)
    for query, hits in zip(queries, results):
        print(f"query: {query!r}")
        if not hits:
            print("  (no matching topics)")
            continue
        for h in hits:
            cats = categories_of(h.topic_id) if categories_of else []
            cat_names = ", ".join(names.get(c, str(c)) for c in cats[:4])
            print(
                f"  topic {h.topic_id}  score={h.score:7.2f}  \"{h.label}\""
                f"  [{cat_names}]"
            )


def _cmd_search(args) -> int:
    _check_load_flags(args)
    if args.load:
        # Pure warm-start: the read tier comes entirely from the
        # snapshot — no marketplace generation, no fitting. (No world
        # consistency check needed: nothing here uses the marketplace.)
        backend = open_backend(f"snapshot:{args.load}")
        names = {}
        queries = args.queries or [_default_snapshot_query(backend.service)]
    else:
        market, model = _build(args)
        backend = ServiceBackend.from_model(
            model, entity_categories=_entity_categories(market)
        )
        names = {c.category_id: c.name for c in market.ontology}
        queries = args.queries or [
            next(
                q.text for q in market.query_log.queries
                if q.intent_kind == "scenario"
            )
        ]
    response = backend.batch(
        BatchRequest(queries=tuple(queries), k=args.k, kind="search")
    )
    _print_hits(backend, queries, response.results, names)
    return 0


def _entity_categories(market) -> dict:
    return {e.entity_id: e.category_id for e in market.catalog.entities}


def _cmd_serve_cluster(args) -> int:
    from repro.api import ClusterBackend
    from repro.serving import ShardPlanner

    market, model = _build(args)
    cats = _entity_categories(market)
    # Partition once; the backend and --save-shards share the shard set.
    shard_set = ShardPlanner(args.shards).partition(model, cats)
    backend = ClusterBackend.from_shard_set(
        shard_set, n_replicas=args.replicas
    )
    print(model.summary())
    print(backend.router.plan_summary)
    names = {c.category_id: c.name for c in market.ontology}
    queries = args.queries or [
        q.text
        for q in market.query_log.queries
        if q.intent_kind == "scenario"
    ][:3]
    response = backend.batch(
        BatchRequest(queries=tuple(queries), k=args.k, kind="search")
    )
    _print_hits(backend, queries, response.results, names)
    print(backend.router.cluster_stats().summary())
    if args.save_shards:
        ShardPlanner.save_shard_set(
            shard_set,
            args.save_shards,
            metadata={"profile": args.profile, "seed": args.seed},
        )
        print(f"cluster snapshot written to {args.save_shards}")
    return 0


def _check_cluster_world(args) -> None:
    from repro.serving import ShardPlanner

    _check_world_metadata(
        ShardPlanner.read_cluster_manifest(args.cluster_dir).get(
            "metadata", {}
        ),
        f"cluster snapshot at {args.cluster_dir}",
        args,
    )


def _check_backend_world(args) -> None:
    """World check for local `--backend` URIs (same guard as --load /
    --cluster-dir). Remote http(s) backends own their snapshot — there
    is nothing local to compare."""
    from pathlib import Path

    uri = args.backend
    if uri.startswith(("http://", "https://")):
        return
    path = uri
    for scheme in ("snapshot:", "local:", "cluster:"):
        if uri.startswith(scheme):
            path = uri[len(scheme):]
            break
    path = Path(path)
    if (path / "CLUSTER_MANIFEST.json").is_file():
        from repro.serving import ShardPlanner

        meta = ShardPlanner.read_cluster_manifest(path).get("metadata", {})
    elif (path / "MANIFEST.json").is_file():
        from repro.store.persistence import read_manifest

        meta = read_manifest(path).get("metadata", {})
    else:
        return  # open_backend will produce the real error
    _check_world_metadata(meta, f"backend at {uri}", args)


def _cmd_replay(args) -> int:
    from repro.api import ClusterBackend
    from repro.serving import (
        TrafficReplayer,
        WorkloadConfig,
        build_workload,
    )

    if args.arrival == "open" and (args.rate is None or args.rate <= 0):
        raise SystemExit("--arrival open needs --rate RPS > 0")
    backend = None
    if args.backend:
        if args.cluster_dir or args.load:
            raise SystemExit(
                "--backend is mutually exclusive with --cluster-dir/--load: "
                "the URI names the serving tier"
            )
        _check_load_flags(args)
        _check_backend_world(args)
        market = generate_marketplace(
            PROFILES[args.profile].with_seed(args.seed)
        )
        model = None
        backend = open_backend(args.backend, n_replicas=args.replicas)
    elif args.cluster_dir:
        if args.load:
            raise SystemExit(
                "--cluster-dir and --load are mutually exclusive: the "
                "cluster snapshot already contains the sharded model"
            )
        _check_load_flags(args)
        _check_cluster_world(args)
        market = generate_marketplace(
            PROFILES[args.profile].with_seed(args.seed)
        )
        model = None
        backend = ClusterBackend.from_snapshot(
            args.cluster_dir, n_replicas=args.replicas
        )
    else:
        market, model = _build(args)

    workload = build_workload(
        market.query_log.queries,
        market.scenarios,
        WorkloadConfig(
            n_requests=args.requests,
            profile=args.traffic,
            zipf_exponent=args.zipf,
            pool_variants=args.variants,
            seed=args.seed,
        ),
    )
    warmup = args.warmup if args.warmup is not None else args.requests // 10
    pacing = (
        f" at an open-loop {args.rate:g}/s"
        if args.arrival == "open"
        else ""
    )
    print(
        f"replaying {len(workload)} '{args.traffic}' requests "
        f"({warmup} warm-up){pacing} ..."
    )

    replay_kwargs = dict(
        profile=args.traffic,
        warmup=warmup,
        arrival=args.arrival,
        rate=args.rate,
    )

    def replayer(target):
        return TrafficReplayer(target, k=args.k, concurrency=args.concurrency)

    reports = {}
    if args.backend:
        reports["backend"] = replayer(backend).replay(
            workload, **replay_kwargs
        )
    else:
        if args.target in ("single", "both"):
            if model is None:
                raise SystemExit(
                    "--target single/both needs a fitted or --load model; "
                    "--cluster-dir only carries the sharded form"
                )
            single = ServiceBackend.from_model(
                model, entity_categories=_entity_categories(market)
            )
            reports["single"] = replayer(single).replay(
                workload, **replay_kwargs
            )
        if args.target in ("cluster", "both"):
            if backend is None:
                backend = ClusterBackend.from_model(
                    model,
                    args.shards,
                    n_replicas=args.replicas,
                    entity_categories=_entity_categories(market),
                )
            reports["cluster"] = replayer(backend).replay(
                workload, **replay_kwargs
            )
            print(backend.router.plan_summary)

    for name, report in reports.items():
        print(f"{name:>8}: {report.summary()}")
    if len(reports) == 2:
        speedup = reports["cluster"].qps / max(reports["single"].qps, 1e-9)
        print(f"cluster/single QPS ratio: {speedup:.2f}x")
    return 0


def _cmd_abtest(args) -> int:
    market, model = _build(args)
    backend = ServiceBackend.from_model(
        model, entity_categories=_entity_categories(market)
    )
    control = OntologyRecommender(
        market.ontology, market.catalog,
        OntologyRecommenderConfig(slate_size=args.slate),
    )
    sim = ABTestSimulator(
        market, ABTestConfig(n_impressions=args.impressions, seed=args.seed)
    )
    report = sim.run(
        control.recommend,
        lambda uid, q: list(
            backend.recommend(
                RecommendRequest(query=q, k=args.slate)
            ).entity_ids
        ),
    )
    print(report.summary())
    print("paper reported: +5% CTR (3M users, Taobao)")
    return 0 if report.relative_uplift > 0 else 1


def _build_ingest_side(args, backend):
    """(pipe, updater, shipper) for ``serve-http --ingest-wal``.

    All three are ``None`` without ``--ingest-wal``; the shipper is
    ``None`` without ``--ship-feed``.

    Seeds the updater's sliding-window store by regenerating the query
    log the snapshot was fitted on (profile/seed come from the snapshot
    manifest), warm-starts an :class:`IncrementalShoal` from the loaded
    model, replays any retained WAL from a previous run, and wires a
    :class:`GenerationSwitch` over the serving backend so every new
    generation hot-swaps in with probe-query health checks.
    """
    if not args.ingest_wal:
        if getattr(args, "ship_feed", None):
            raise SystemExit(
                "--ship-feed requires --ingest-wal DIR: followers replay "
                "the primary's closed WAL segments"
            )
        return None, None, None
    if not args.load:
        raise SystemExit(
            "--ingest-wal requires --load DIR: the updater warm-starts "
            "from the model snapshot (cluster snapshots only carry the "
            "sharded halves)"
        )
    from repro.core.incremental import IncrementalShoal
    from repro.store.persistence import load_entity_categories, read_manifest
    from repro.streaming import (
        Generation,
        GenerationSwitch,
        IngestPipe,
        StreamingUpdater,
        WriteAheadLog,
    )

    meta = read_manifest(args.load).get("metadata", {})
    profile, seed = meta.get("profile"), meta.get("seed")
    if profile is None or seed is None:
        raise SystemExit(
            "--ingest-wal needs a snapshot written by 'fit --save' (its "
            "manifest records the --profile/--seed that regenerate the "
            "base query log)"
        )
    market = generate_marketplace(PROFILES[profile].with_seed(seed))
    model = backend.service.model
    cats = load_entity_categories(args.load) or _entity_categories(market)
    # These two knobs shape every refit; a replication feed ships them
    # so followers rebuild with byte-identical settings.
    retrain_every = 7
    max_day_skew = 2
    inc = IncrementalShoal.from_model(
        model, entity_categories=cats, retrain_every=retrain_every
    )

    probes = [
        q.text
        for q in market.query_log.queries
        if q.intent_kind == "scenario"
    ][:4]
    # The snapshot model is the rollback baseline: a first generation
    # failing its health check restores the tier to what it serves now.
    baseline = Generation(
        number=0,
        model=model,
        entity_categories=cats,
        last_day=market.query_log.days()[-1],
    )
    switch = GenerationSwitch(
        probe_queries=probes, baseline=baseline
    ).attach(backend, name="http-backend")
    wal = WriteAheadLog(args.ingest_wal, fsync=args.ingest_fsync)
    pipe = IngestPipe(
        wal,
        max_queue=args.ingest_queue,
        overflow=args.ingest_overflow,
    )
    drift_gate = None
    if getattr(args, "drift_threshold", None) is not None:
        from repro.analytics import DriftMonitor

        drift_gate = DriftMonitor(threshold=args.drift_threshold)
    shipper = None
    generations_dir = args.generations
    if getattr(args, "ship_feed", None):
        import tempfile

        from repro.replication import SegmentShipper

        if generations_dir is None:
            # The shipper encodes deltas between on-disk generation
            # snapshots, so shipping implies persisting them.
            generations_dir = tempfile.mkdtemp(prefix="shoal-generations-")
        shipper = SegmentShipper(
            wal,
            args.ship_feed,
            base_snapshot_dir=args.load,
            manifest={
                "profile": profile,
                "seed": seed,
                "base_last_day": market.query_log.days()[-1],
                "retrain_every": retrain_every,
                "max_day_skew": max_day_skew,
                "min_batch_events": args.ingest_batch_events // 4 or 1,
            },
        )
        shipper.initialise()
    updater = StreamingUpdater(
        inc,
        pipe,
        switch=switch,
        generations_dir=generations_dir,
        batch_max_events=args.ingest_batch_events,
        batch_max_age_s=args.ingest_batch_age_s,
        min_batch_events=args.ingest_batch_events // 4 or 1,
        max_day_skew=max_day_skew,
        drift_gate=drift_gate,
        on_generation=None if shipper is None else shipper.publish_generation,
    )
    updater.seed_log(market.query_log)
    recovered = updater.recover()
    if recovered:
        print(f"recovered {recovered} events from the WAL at {args.ingest_wal}")
    return pipe, updater, shipper


def _build_analytics_side(args, backend, pipe):
    """(engine, tailer) for ``serve-http --analytics-db`` (None,None
    without). The tailer streams the same WAL the ingest pipe appends
    to into an isolated SQLite replica; queries against it can never
    contend with the serving structures."""
    if not args.analytics_db:
        return None, None
    if not args.ingest_wal:
        raise SystemExit(
            "--analytics-db requires --ingest-wal DIR: the analytics "
            "store is a replica of the write-ahead log"
        )
    from repro.analytics import (
        AnalyticsStore,
        QueryEngine,
        SegmentTailer,
        make_topic_resolver,
    )

    store = AnalyticsStore(args.analytics_db)
    tailer = SegmentTailer(
        args.ingest_wal,
        store,
        resolver=make_topic_resolver(backend),
        ingest_pipe=pipe,
    )
    caught_up = tailer.catch_up()
    if caught_up:
        print(
            f"analytics store caught up: {caught_up} WAL events folded "
            f"into {args.analytics_db}"
        )
    tailer.start()
    return QueryEngine(store), tailer


def _open_access_log(args):
    """File object for ``--access-log`` (None when off, ``-`` = stdout).

    Line-buffered so a crash loses at most the in-flight line and tail
    tooling sees requests as they complete.
    """
    path = getattr(args, "access_log", None)
    if not path:
        return None
    if path == "-":
        return sys.stdout
    return open(path, "a", buffering=1, encoding="utf-8")


def _build_tracer(args):
    """Tracer for a serving role, installed as the process default.

    The edge hands it to every :class:`RequestContext` it mints, so
    request spans land in it; installing it as the module default also
    catches background work (updater folds, shipper publishes, follower
    replays) as ``bg-N`` root traces. ``--trace-capacity 0`` disables
    tracing entirely (``/v1/trace`` then answers ``not_found``).
    """
    if args.trace_capacity <= 0:
        return None
    from repro.obs import Tracer, set_default_tracer

    tracer = Tracer(capacity=args.trace_capacity)
    set_default_tracer(tracer)
    return tracer


def _cmd_serve_http(args) -> int:
    from repro.api import (
        AsyncShoalServer,
        Gateway,
        ShoalHttpServer,
        default_middlewares,
    )

    if bool(args.load) == bool(args.cluster_dir):
        raise SystemExit(
            "serve-http needs exactly one of --load DIR or --cluster-dir DIR"
        )
    # When the gateway result cache is on it absorbs every repeat, so a
    # same-size engine cache behind it would only hold duplicate
    # entries; disable it and let one tier do the caching.
    engine_cache = 0 if args.cache_size > 0 else 4096
    if args.load:
        backend = open_backend(
            f"snapshot:{args.load}", cache_size=engine_cache
        )
    else:
        backend = open_backend(
            f"cluster:{args.cluster_dir}",
            cache_size=engine_cache,
            n_replicas=args.replicas,
        )
    tracer = _build_tracer(args)
    gateway = Gateway(
        backend,
        default_middlewares(
            cache_size=args.cache_size,
            cache_ttl_s=args.cache_ttl_s,
            rate_limit=args.rate_limit,
            deadline_ms=args.deadline_ms,
        ),
        access_log=_open_access_log(args),
    )
    pipe, updater, shipper = _build_ingest_side(args, backend)
    if updater is not None:
        # The gateway's result cache must drop on each hot-swap too.
        updater.switch.attach(gateway)
        updater.start()
    analytics_engine, analytics_tailer = _build_analytics_side(
        args, backend, pipe
    )
    replication_stats = None
    coordinator_stop = None
    if shipper is not None:
        import threading as _threading

        from repro.replication import EpochCoordinator, coordinator_loop

        coordinator = EpochCoordinator(
            args.ship_feed, quorum=args.ship_quorum
        )
        coordinator_stop = _threading.Event()
        _threading.Thread(
            target=coordinator_loop,
            args=(coordinator,),
            kwargs={"stop": coordinator_stop},
            name="shoal-epoch-coordinator",
            daemon=True,
        ).start()
        replication_stats = lambda: {  # noqa: E731
            **shipper.stats(),
            "coordinator": coordinator.stats(),
        }
    if args.edge == "async":
        server = AsyncShoalServer(
            gateway,
            args.host,
            args.port,
            quiet=args.quiet,
            ingest_pipe=pipe,
            updater=updater,
            analytics_engine=analytics_engine,
            analytics_tailer=analytics_tailer,
            default_timeout_ms=args.deadline_ms,
            hedge_after_ms=args.hedge_after_ms,
            coalesce_max_events=args.coalesce_events,
            coalesce_max_delay_ms=args.coalesce_delay_ms,
            replication_stats=replication_stats,
            tracer=tracer,
        )
        server.start()  # binds the port so the banner can name it
    else:
        server = ShoalHttpServer(
            gateway,
            args.host,
            args.port,
            quiet=args.quiet,
            ingest_pipe=pipe,
            updater=updater,
            analytics_engine=analytics_engine,
            analytics_tailer=analytics_tailer,
            replication_stats=replication_stats,
            tracer=tracer,
        )
    write_side = " /v1/ingest;" if pipe is not None else ""
    analytics_side = (
        " GET/POST /v1/analytics;" if analytics_engine is not None else ""
    )
    print(
        f"serving {backend.kind} backend on {server.url} "
        f"({args.edge} edge; "
        f"POST /v1/search /v1/recommend /v1/batch{write_side}"
        f"{analytics_side} GET /v1/health /v1/stats /v1/metrics "
        f"/v1/trace; Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        if coordinator_stop is not None:
            coordinator_stop.set()
        server.shutdown()
    return 0


def _cmd_serve_follower(args) -> int:
    """Serve reads from a replication feed, swapping on epoch bumps."""
    import tempfile

    from repro.api import (
        AsyncShoalServer,
        Gateway,
        ShoalHttpServer,
        default_middlewares,
    )
    from repro.replication import Follower

    engine_cache = 0 if args.cache_size > 0 else 4096
    workdir = args.workdir or tempfile.mkdtemp(prefix="shoal-follower-")
    follower = Follower(
        args.feed,
        workdir,
        follower_id=args.id,
        n_shards=args.shards,
        n_replicas=args.replicas,
        cache_size=engine_cache,
    )
    backend = follower.bootstrap()
    tracer = _build_tracer(args)
    gateway = Gateway(
        backend,
        default_middlewares(
            cache_size=args.cache_size,
            cache_ttl_s=args.cache_ttl_s,
            rate_limit=args.rate_limit,
            deadline_ms=args.deadline_ms,
        ),
        access_log=_open_access_log(args),
    )
    # Epoch swaps must drop the gateway's result cache, exactly like
    # the primary's hot-swap path.
    follower.switch.attach(gateway)
    built = follower.catch_up(timeout_s=args.catch_up_s)
    if built:
        print(f"caught up: rebuilt {built} generations from {args.feed}")
    follower.start()
    if args.edge == "async":
        server = AsyncShoalServer(
            gateway,
            args.host,
            args.port,
            quiet=args.quiet,
            default_timeout_ms=args.deadline_ms,
            replication_stats=follower.stats,
            tracer=tracer,
        )
        server.start()
    else:
        server = ShoalHttpServer(
            gateway,
            args.host,
            args.port,
            quiet=args.quiet,
            replication_stats=follower.stats,
            tracer=tracer,
        )
    print(
        f"serving follower {follower.follower_id} on {server.url} "
        f"({args.edge} edge; feed {args.feed}, epoch "
        f"{follower.epoch}; POST /v1/search /v1/recommend /v1/batch; "
        "GET /v1/health /v1/stats /v1/metrics /v1/trace; Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
    return 0


def _cmd_ingest(args) -> int:
    """The offline end-to-end of the streaming write path."""
    import dataclasses as _dc

    from repro.core.incremental import IncrementalShoal
    from repro.streaming import (
        Generation,
        GenerationSwitch,
        IngestPipe,
        StreamingUpdater,
        WriteAheadLog,
    )

    _check_load_flags(args)
    if args.load:
        raise SystemExit(
            "ingest fits its own base window from the generated log; "
            "--load is not supported here (use serve-http --ingest-wal "
            "to stream into a loaded snapshot)"
        )
    if args.queue_size < args.batch_events:
        raise SystemExit(
            f"--queue-size {args.queue_size} must be >= --batch-events "
            f"{args.batch_events}: the submit loop only drains once per "
            "batch, so a smaller queue is guaranteed to overflow"
        )
    base_profile = PROFILES[args.profile].with_seed(args.seed)
    window = ShoalConfig().window_days
    total_days = window + args.live_days
    market = generate_marketplace(
        _dc.replace(
            base_profile,
            query_log=_dc.replace(
                base_profile.query_log, n_days=total_days
            ),
        )
    )
    titles = {e.entity_id: e.title for e in market.catalog.entities}
    query_texts = {q.query_id: q.text for q in market.query_log.queries}
    cats = _entity_categories(market)

    config = ShoalConfig()
    if args.alpha is not None:
        config = config.with_alpha(args.alpha)
    inc = IncrementalShoal(config, titles, query_texts, cats)
    base_last_day = window - 1
    update = inc.advance(market.query_log, last_day=base_last_day)
    print(f"base {update.summary()}")

    backend = inc.backend()
    probes = [
        q.text
        for q in market.query_log.queries
        if q.intent_kind == "scenario"
    ][:4]
    baseline = Generation(
        number=0,
        model=update.model,
        entity_categories=cats,
        last_day=base_last_day,
    )
    switch = GenerationSwitch(
        probe_queries=probes, baseline=baseline
    ).attach(backend, name="read-tier")
    wal = WriteAheadLog(args.wal, fsync=args.fsync)
    pipe = IngestPipe(wal, max_queue=args.queue_size)
    updater = StreamingUpdater(
        inc,
        pipe,
        switch=switch,
        generations_dir=args.generations,
        batch_max_events=args.batch_events,
        batch_max_age_s=0.0,
        min_batch_events=1,
    )
    updater.seed_log(market.query_log.window(0, base_last_day))
    recovered = updater.recover()
    if recovered:
        print(f"recovered {recovered} events from a previous WAL")

    live = [
        e for e in market.query_log.events if e.day > base_last_day
    ]
    print(
        f"streaming {len(live)} live events from days "
        f"{base_last_day + 1}..{total_days - 1} through {args.wal} ..."
    )
    from repro.api import ApiError

    submitted = 0
    for e in live:
        payload = {
            "day": e.day,
            "user_id": e.user_id,
            "query_id": e.query_id,
            "clicked": list(e.clicked_entity_ids),
        }
        try:
            pipe.submit(payload)
        except ApiError as exc:
            if exc.code != "ingest_overloaded":
                raise
            # Backpressure from our own queue: drain a batch, retry.
            updater.run_once(timeout_s=0.0)
            pipe.submit(payload)
        submitted += 1
        if submitted % args.batch_events == 0:
            generation = updater.run_once(timeout_s=0.0)
            if generation is not None:
                print(f"  {generation.summary()}")
    while pipe.queue_depth():
        generation = updater.run_once(timeout_s=0.0)
        if generation is not None:
            print(f"  {generation.summary()}")
    final = updater.force_generation()
    if final is not None:
        print(f"  {final.summary()}")

    stats = updater.stats()
    print(
        f"ingested {stats.events_applied} events -> "
        f"{stats.generations} generations "
        f"({stats.swap_failures} swap failures); {wal.stats()['segments']} "
        f"WAL segments retained"
    )
    print(switch.stats())
    return 0 if stats.swap_failures == 0 and stats.generations > 0 else 1


def _print_table(response) -> None:
    """Render an AnalyticsResponse as an aligned text table."""
    columns = [str(c) for c in response.columns]
    rows = [
        ["" if cell is None else str(cell) for cell in row]
        for row in response.rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rows)) if rows else len(col)
        for i, col in enumerate(columns)
    ]
    line = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    note = []
    if response.truncated:
        note.append("truncated at the row limit")
    if response.sampled:
        note.append("over the reservoir sample")
    suffix = f" ({'; '.join(note)})" if note else ""
    print(
        f"[{len(rows)} rows in {response.elapsed_ms:.1f}ms{suffix}]"
    )


def _cmd_analytics(args) -> int:
    """Offline WAL -> analytics store -> one report or SQL statement."""
    from repro.analytics import (
        AnalyticsStore,
        QueryEngine,
        SegmentTailer,
        make_topic_resolver,
    )
    from repro.api import AnalyticsRequest, ApiError

    if bool(args.sql) == bool(args.report):
        raise SystemExit(
            "analytics needs exactly one of --report NAME or --sql SQL"
        )
    db = args.db or str(Path(args.wal) / "analytics.db")
    resolver = None
    if args.load:
        resolver = make_topic_resolver(
            open_backend(f"snapshot:{args.load}")
        )
    store = AnalyticsStore(db)
    try:
        tailer = SegmentTailer(args.wal, store, resolver=resolver)
        folded = tailer.catch_up()
        counts = store.counts()
        print(
            f"folded {folded} new events (store now holds "
            f"{counts['events']} events through seq "
            f"{counts['applied_seq']}) into {db}"
        )
        engine = QueryEngine(store)
        request = AnalyticsRequest(
            sql=args.sql or None,
            report=args.report or None,
            limit=args.limit,
            sample=args.sample,
        )
        try:
            _print_table(engine.query(request))
        except ApiError as exc:
            print(f"analytics error [{exc.code}]: {exc}")
            return 1
    finally:
        store.close()
    return 0


def _render_span_tree(spans) -> List[str]:
    """Indented text rendering of a TraceResponse's span list.

    Parents always precede children in the exported list, so a single
    pass with a child map suffices. Orphans (parent evicted by the
    per-trace span cap) render as extra roots rather than vanishing.
    """
    by_parent: dict = {}
    ids = {s["span_id"] for s in spans}
    roots = []
    for s in spans:
        parent = s.get("parent_id")
        if parent is None or parent not in ids:
            roots.append(s)
        else:
            by_parent.setdefault(parent, []).append(s)

    lines: List[str] = []

    def walk(span, depth):
        tags = span.get("tags") or {}
        tag_text = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
        status = span["status"]
        if span.get("detail"):
            status += f" ({span['detail']})"
        lines.append(
            f"{'  ' * depth}{span['name']:<{max(32 - 2 * depth, 8)}} "
            f"+{span['start_ms']:8.3f}ms  {span['duration_ms']:8.3f}ms  "
            f"{status}" + (f"  [{tag_text}]" if tag_text else "")
        )
        for child in by_parent.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return lines


def _cmd_trace(args) -> int:
    """Fetch one sampled span tree from GET /v1/trace and render it."""
    from repro.api import ApiError, ShoalClient

    client = ShoalClient(args.url, timeout=args.timeout)
    try:
        response = client.trace(args.request_id)
    except ApiError as exc:
        print(f"trace error [{exc.code}]: {exc}")
        return 1
    print(
        f"trace {response.request_id}  endpoint={response.endpoint}  "
        f"duration={response.duration_ms:.3f}ms  "
        f"sampled={response.sampled}  spans={len(response.spans)}"
    )
    for line in _render_span_tree(response.spans):
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SHOAL reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fit = sub.add_parser("fit", help="fit SHOAL and print the taxonomy")
    _add_common(p_fit)
    p_fit.add_argument("--max-roots", type=int, default=8)
    p_fit.add_argument("--output", default=None, help="write taxonomy JSON here")
    p_fit.add_argument(
        "--save", default=None, metavar="DIR",
        help="write a full model snapshot directory (for later --load)",
    )
    p_fit.set_defaults(func=_cmd_fit)

    p_eval = sub.add_parser("evaluate", help="precision + modularity check")
    _add_common(p_eval)
    p_eval.add_argument("--topics", type=int, default=1000)
    p_eval.add_argument("--items", type=int, default=100)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_search = sub.add_parser("search", help="keyword search over topics")
    _add_common(p_search)
    p_search.add_argument("queries", nargs="*", help="queries to run")
    p_search.add_argument("-k", type=int, default=5)
    p_search.set_defaults(func=_cmd_search)

    p_ab = sub.add_parser("abtest", help="run the paired CTR A/B simulation")
    _add_common(p_ab)
    p_ab.add_argument("--impressions", type=int, default=5000)
    p_ab.add_argument("--slate", type=int, default=8)
    p_ab.set_defaults(func=_cmd_abtest)

    p_cluster = sub.add_parser(
        "serve-cluster", help="shard the model and serve through a router"
    )
    _add_common(p_cluster)
    p_cluster.add_argument("queries", nargs="*", help="queries to run")
    p_cluster.add_argument("-k", type=int, default=5)
    p_cluster.add_argument(
        "--shards", type=int, default=2, help="number of shards"
    )
    p_cluster.add_argument(
        "--replicas", type=int, default=1, help="replicas per shard"
    )
    p_cluster.add_argument(
        "--save-shards", default=None, metavar="DIR",
        help="write a per-shard cluster snapshot directory",
    )
    p_cluster.set_defaults(func=_cmd_serve_cluster)

    p_http = sub.add_parser(
        "serve-http",
        help="serve the typed gateway API over HTTP from a snapshot",
    )
    p_http.add_argument(
        "--load", default=None, metavar="DIR",
        help="model snapshot directory (from 'fit --save')",
    )
    p_http.add_argument(
        "--cluster-dir", default=None, metavar="DIR",
        help="cluster snapshot directory (from 'serve-cluster --save-shards')",
    )
    p_http.add_argument("--host", default="127.0.0.1")
    p_http.add_argument(
        "--port", type=int, default=8080, help="0 picks an ephemeral port"
    )
    p_http.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard (cluster backends only)",
    )
    p_http.add_argument(
        "--cache-size", type=int, default=4096,
        help="gateway result-cache entries (0 disables)",
    )
    p_http.add_argument(
        "--cache-ttl-s", type=float, default=None,
        help="gateway result-cache TTL in seconds (default: no expiry)",
    )
    p_http.add_argument(
        "--ingest-wal", default=None, metavar="DIR",
        help="enable the write path: durable WAL directory for "
             "POST /v1/ingest (requires --load)",
    )
    p_http.add_argument(
        "--ingest-queue", type=int, default=4096,
        help="bounded ingest-queue capacity before backpressure",
    )
    p_http.add_argument(
        "--ingest-overflow", default="shed",
        choices=["shed", "block", "drop_oldest"],
        help="what a full ingest queue does to new events",
    )
    p_http.add_argument(
        "--ingest-fsync", default="batch",
        choices=["always", "batch", "never"],
        help="WAL fsync policy (batch = once per micro-batch)",
    )
    p_http.add_argument(
        "--ingest-batch-events", type=int, default=64,
        help="micro-batch size the updater drains per cycle",
    )
    p_http.add_argument(
        "--ingest-batch-age-s", type=float, default=2.0,
        help="oldest a queued event may get before a partial batch runs",
    )
    p_http.add_argument(
        "--generations", default=None, metavar="DIR",
        help="persist each model generation as a versioned snapshot here",
    )
    p_http.add_argument(
        "--rate-limit", type=float, default=None, metavar="QPS",
        help="token-bucket admission rate (default: unlimited)",
    )
    p_http.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request deadline in milliseconds",
    )
    p_http.add_argument(
        "--edge", default="async", choices=["thread", "async"],
        help="HTTP edge: 'async' (asyncio, hedging + coalescing) or "
             "'thread' (legacy threaded edge, one more release)",
    )
    p_http.add_argument(
        "--hedge-after-ms", type=float, default=None,
        help="async edge: hedge a slow read against an idle replica "
             "after this many ms (0 = immediately; default: adaptive "
             "p95 of observed read latency)",
    )
    p_http.add_argument(
        "--coalesce-events", type=int, default=64,
        help="async edge: flush coalesced ingest after this many events",
    )
    p_http.add_argument(
        "--coalesce-delay-ms", type=float, default=5.0,
        help="async edge: max ms a coalesced ingest event waits before "
             "its batch is flushed to the WAL",
    )
    p_http.add_argument(
        "--analytics-db", default=None, metavar="PATH",
        help="enable the HTAP analytics tier: SQLite replica of the "
             "WAL served at GET/POST /v1/analytics (requires "
             "--ingest-wal)",
    )
    p_http.add_argument(
        "--drift-threshold", type=float, default=None, metavar="FRAC",
        help="skip a generation rollout when at most this fraction of "
             "entities changed topic membership (0.0 = only skip "
             "identical partitions; default: never skip)",
    )
    p_http.add_argument(
        "--ship-feed", default=None, metavar="DIR",
        help="publish closed WAL segments + generation snapshot deltas "
             "into this replication feed directory and run the epoch "
             "coordinator over it (requires --ingest-wal)",
    )
    p_http.add_argument(
        "--ship-quorum", type=int, default=1,
        help="followers that must report a byte-identical rebuild "
             "before an epoch swap is broadcast",
    )
    p_http.add_argument(
        "--quiet", action="store_true", default=False,
        help="suppress per-request access logging",
    )
    p_http.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one structured JSON line per gateway request "
             "here ('-' = stdout; default: off)",
    )
    p_http.add_argument(
        "--trace-capacity", type=int, default=256,
        help="sampled traces the in-memory ring retains for "
             "GET /v1/trace (0 disables tracing)",
    )
    p_http.set_defaults(func=_cmd_serve_http)

    p_follower = sub.add_parser(
        "serve-follower",
        help="serve reads from a replication feed (see serve-http "
             "--ship-feed), hot-swapping on coordinated epoch bumps",
    )
    p_follower.add_argument(
        "--feed", required=True, metavar="DIR",
        help="replication feed directory published by the primary",
    )
    p_follower.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="scratch directory for rebuilt generation snapshots "
             "(default: a fresh temp directory)",
    )
    p_follower.add_argument(
        "--id", default=None,
        help="stable follower identity in reports (default: random)",
    )
    p_follower.add_argument("--host", default="127.0.0.1")
    p_follower.add_argument(
        "--port", type=int, default=8081, help="0 picks an ephemeral port"
    )
    p_follower.add_argument(
        "--shards", type=int, default=1,
        help="serve through an n-shard cluster tier instead of a "
             "single service",
    )
    p_follower.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard (with --shards > 1)",
    )
    p_follower.add_argument(
        "--cache-size", type=int, default=4096,
        help="gateway result-cache entries (0 disables)",
    )
    p_follower.add_argument(
        "--cache-ttl-s", type=float, default=None,
        help="gateway result-cache TTL in seconds (default: no expiry)",
    )
    p_follower.add_argument(
        "--rate-limit", type=float, default=None, metavar="QPS",
        help="token-bucket admission rate (default: unlimited)",
    )
    p_follower.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request deadline in milliseconds",
    )
    p_follower.add_argument(
        "--edge", default="async", choices=["thread", "async"],
        help="HTTP edge implementation",
    )
    p_follower.add_argument(
        "--catch-up-s", type=float, default=60.0,
        help="max seconds to replay the feed before the port opens",
    )
    p_follower.add_argument(
        "--quiet", action="store_true", default=False,
        help="suppress per-request access logging",
    )
    p_follower.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one structured JSON line per gateway request "
             "here ('-' = stdout; default: off)",
    )
    p_follower.add_argument(
        "--trace-capacity", type=int, default=256,
        help="sampled traces the in-memory ring retains for "
             "GET /v1/trace (0 disables tracing)",
    )
    p_follower.set_defaults(func=_cmd_serve_follower)

    p_ingest = sub.add_parser(
        "ingest",
        help="stream live query events through the WAL-backed write path",
    )
    _add_common(p_ingest)
    p_ingest.add_argument(
        "--wal", required=True, metavar="DIR",
        help="write-ahead log directory (created if missing)",
    )
    p_ingest.add_argument(
        "--live-days", type=int, default=2,
        help="days of traffic to stream in after the base window",
    )
    p_ingest.add_argument(
        "--batch-events", type=int, default=256,
        help="micro-batch size per generation",
    )
    p_ingest.add_argument(
        "--queue-size", type=int, default=8192,
        help="bounded ingest-queue capacity",
    )
    p_ingest.add_argument(
        "--fsync", default="batch", choices=["always", "batch", "never"],
        help="WAL fsync policy",
    )
    p_ingest.add_argument(
        "--generations", default=None, metavar="DIR",
        help="persist each model generation as a versioned snapshot here",
    )
    p_ingest.set_defaults(func=_cmd_ingest)

    p_analytics = sub.add_parser(
        "analytics",
        help="fold a WAL into the SQLite analytics store and query it",
    )
    p_analytics.add_argument(
        "--wal", required=True, metavar="DIR",
        help="write-ahead log directory to fold into the store",
    )
    p_analytics.add_argument(
        "--db", default=None, metavar="PATH",
        help="analytics SQLite file (default: <wal>/analytics.db)",
    )
    p_analytics.add_argument(
        "--report", default=None, choices=list(ANALYTICS_REPORTS),
        help="canned report to print",
    )
    p_analytics.add_argument(
        "--sql", default=None, metavar="SELECT",
        help="one guarded read-only SQL statement to run instead",
    )
    p_analytics.add_argument("--limit", type=int, default=100)
    p_analytics.add_argument(
        "--sample", action="store_true", default=False,
        help="run --sql over the fixed-size reservoir sample",
    )
    p_analytics.add_argument(
        "--load", default=None, metavar="DIR",
        help="model snapshot for per-topic attribution (optional; "
             "events get topic_id -1 without it)",
    )
    p_analytics.set_defaults(func=_cmd_analytics)

    p_trace = sub.add_parser(
        "trace",
        help="fetch one sampled span tree from a server's GET /v1/trace",
    )
    p_trace.add_argument(
        "--url", required=True, metavar="URL",
        help="gateway base URL, e.g. http://127.0.0.1:8080",
    )
    p_trace.add_argument(
        "--request-id", default=None,
        help="exact request id to look up (accepts hedge-child ids "
             "like req-7.1; default: the most recently sampled trace)",
    )
    p_trace.add_argument("--timeout", type=float, default=10.0)
    p_trace.set_defaults(func=_cmd_trace)

    p_replay = sub.add_parser(
        "replay", help="replay a traffic workload against service/cluster"
    )
    _add_common(p_replay)
    p_replay.add_argument("--requests", type=int, default=1000)
    p_replay.add_argument(
        "--traffic", default="bursty",
        choices=["steady", "bursty", "drifting", "adversarial"],
        help="workload profile",
    )
    p_replay.add_argument("--zipf", type=float, default=1.1)
    p_replay.add_argument(
        "--variants", type=int, default=1,
        help="distinct textual variants per base query",
    )
    p_replay.add_argument(
        "--warmup", type=int, default=None,
        help="unrecorded warm-up requests (default: requests/10)",
    )
    p_replay.add_argument("-k", type=int, default=5)
    p_replay.add_argument("--shards", type=int, default=2)
    p_replay.add_argument("--replicas", type=int, default=1)
    p_replay.add_argument(
        "--cluster-dir", default=None, metavar="DIR",
        help="load the cluster from a 'serve-cluster --save-shards' dir",
    )
    p_replay.add_argument(
        "--backend", default=None, metavar="URI",
        help="replay against a backend URI: snapshot:DIR, cluster:DIR, "
             "or http://host:port (overrides --target)",
    )
    p_replay.add_argument(
        "--target", default="cluster", choices=["single", "cluster", "both"],
        help="what to replay against",
    )
    p_replay.add_argument(
        "--arrival", default="closed", choices=["closed", "open"],
        help="load model: 'closed' paces on responses (latency-biased "
             "under saturation), 'open' schedules request i at t0+i/rate "
             "regardless of how the target is doing",
    )
    p_replay.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="open-loop arrival rate in requests/s (required with "
             "--arrival open)",
    )
    p_replay.add_argument(
        "--concurrency", type=int, default=1,
        help="worker threads driving the target",
    )
    p_replay.set_defaults(func=_cmd_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
