"""Shared internal utilities for the SHOAL reproduction.

Small, dependency-free helpers used across subpackages: seeded RNG
construction, argument validation, and a few numeric conveniences.
Nothing here is part of the public API.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def atomic_write_json(
    path: Union[str, Path], payload: Dict[str, Any], *, indent: int = 2
) -> Path:
    """Atomically persist ``payload`` as JSON at ``path``.

    Written to a ``.tmp`` sibling and renamed into place, so a reader
    never observes a torn file and a crash mid-write leaves the
    previous version intact. This is the one checkpoint/sidecar write
    idiom of the repo — the WAL checkpoint, the analytics tailer
    sidecar, and the replication feed all go through it.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(payload, indent=indent, sort_keys=True, allow_nan=False)
    )
    os.replace(tmp, path)
    return path


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Atomically materialise ``data`` at ``path`` (tmp + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)
    return path


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or generator.

    Every stochastic component in the library accepts ``seed`` in this
    form so that experiments are reproducible end to end.

    >>> g = ensure_rng(7)
    >>> isinstance(g, np.random.Generator)
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_in(name: str, value: object, allowed: Sequence[object]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {list(allowed)!r}, got {value!r}")


def safe_log(x: float) -> float:
    """Natural log that maps non-positive input to 0.0.

    Used by frequency-normalisation formulas (paper Sec. 2.3) where
    ``log tf`` of an empty corpus should degrade gracefully.
    """
    if x <= 0:
        return 0.0
    return math.log(x)


def normalize_rows(matrix: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """L2-normalise the rows of ``matrix``; zero rows stay zero."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms = np.where(norms < eps, 1.0, norms)
    return matrix / norms


def cosine(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> float:
    """Cosine similarity of two 1-D vectors, 0.0 if either is zero."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na < eps or nb < eps:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def jaccard(a: Iterable, b: Iterable) -> float:
    """Jaccard similarity of two collections (paper Eq. 1).

    ``|A ∩ B| / |A ∪ B|``; two empty sets have similarity 0.0.
    """
    sa, sb = set(a), set(b)
    union = len(sa | sb)
    if union == 0:
        return 0.0
    return len(sa & sb) / union


def stable_pairs_key(u: int, v: int) -> tuple:
    """Canonical undirected edge key (smaller id first)."""
    return (u, v) if u <= v else (v, u)


def chunked(seq: Sequence, size: int) -> Iterable[Sequence]:
    """Yield ``seq`` in chunks of at most ``size`` elements."""
    check_positive("size", size)
    for i in range(0, len(seq), size):
        yield seq[i : i + size]


def harmonic_number(n: int, s: float = 1.0) -> float:
    """Generalised harmonic number H_{n,s} = sum_{k=1..n} k^-s."""
    return float(sum(k ** (-s) for k in range(1, n + 1)))


def top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest values, sorted descending by value."""
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    k = min(k, len(values))
    part = np.argpartition(values, -k)[-k:]
    return part[np.argsort(values[part])[::-1]]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a plain-text table for bench output.

    Benches print paper-vs-measured rows; keep them readable without
    any third-party table library.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def weighted_choice(
    rng: np.random.Generator,
    items: Sequence,
    weights: Optional[Sequence[float]] = None,
):
    """Pick one element of ``items``, optionally weighted."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if weights is None:
        return items[int(rng.integers(len(items)))]
    w = np.asarray(weights, dtype=float)
    total = w.sum()
    if total <= 0:
        return items[int(rng.integers(len(items)))]
    return items[int(rng.choice(len(items), p=w / total))]
