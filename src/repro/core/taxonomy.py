"""Hierarchical topic taxonomy (paper Fig. 1b).

Converts the Parallel HAC merge forest into the served data model:
:class:`Topic` nodes (each a conceptual shopping scenario holding a
cluster of item entities) arranged in a hierarchy, each linked to the
ontology categories its entities belong to, and — after description
matching — tagged with representative queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.clustering.dendrogram import Dendrogram

__all__ = ["Topic", "Taxonomy"]


@dataclass
class Topic:
    """A node of the SHOAL taxonomy.

    ``topic_id`` equals its dendrogram node id. ``entity_ids`` are the
    item entities clustered under the node; ``category_ids`` the
    ontology categories those entities span (the paper's topic →
    category association); ``descriptions`` is filled by the
    :class:`~repro.core.descriptions.TopicDescriber` with the
    top-scoring queries.
    """

    topic_id: int
    entity_ids: List[int]
    category_ids: List[int]
    parent_id: Optional[int] = None
    child_ids: List[int] = field(default_factory=list)
    level: int = 0
    similarity: float = 0.0
    descriptions: List[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.entity_ids)

    def is_root(self) -> bool:
        return self.parent_id is None

    def label(self) -> str:
        """Best available human-readable label."""
        if self.descriptions:
            return self.descriptions[0]
        return f"topic-{self.topic_id}"


class Taxonomy:
    """The full topic hierarchy with category links and lookups."""

    def __init__(self, topics: List[Topic]):
        self._topics: Dict[int, Topic] = {}
        for t in topics:
            if t.topic_id in self._topics:
                raise ValueError(f"duplicate topic id {t.topic_id}")
            self._topics[t.topic_id] = t
        # Indexes: entity -> most specific topic; category -> topics.
        self._topic_of_entity: Dict[int, int] = {}
        self._topics_of_category: Dict[int, Set[int]] = {}
        for t in sorted(self._topics.values(), key=lambda x: x.level, reverse=True):
            for e in t.entity_ids:
                self._topic_of_entity.setdefault(e, t.topic_id)
            for c in t.category_ids:
                self._topics_of_category.setdefault(c, set()).add(t.topic_id)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_dendrogram(
        cls,
        dendrogram: Dendrogram,
        entity_categories: Dict[int, int],
        min_topic_size: int = 2,
        max_levels: Optional[int] = None,
    ) -> "Taxonomy":
        """Build the taxonomy from a merge forest.

        Every internal dendrogram node whose subtree holds at least
        ``min_topic_size`` entities becomes a topic; leaves and tiny
        nodes are absorbed into their closest qualifying ancestor.
        ``max_levels`` optionally truncates the hierarchy depth (the
        served taxonomy rarely needs the full binary merge tree: a node
        whose only qualifying child is itself collapses).

        ``entity_categories`` maps entity id → ontology category id.
        """
        topics: List[Topic] = []
        for root in dendrogram.internal_roots():
            cls._emit_subtree(
                dendrogram,
                root,
                None,
                0,
                entity_categories,
                min_topic_size,
                max_levels,
                topics,
            )
        return cls(topics)

    @classmethod
    def _emit_subtree(
        cls,
        dendrogram: Dendrogram,
        node: int,
        parent_topic: Optional[int],
        level: int,
        entity_categories: Dict[int, int],
        min_topic_size: int,
        max_levels: Optional[int],
        out: List[Topic],
    ) -> Optional[int]:
        """Recursively emit topics for qualifying dendrogram nodes.

        Children that merge *at a similar level* (binary merge chains)
        are flattened: a child becomes a separate sub-topic only if both
        it and its sibling meet ``min_topic_size``; otherwise the parent
        absorbs it, keeping the hierarchy compact and interpretable.
        """
        entities = dendrogram.leaves_under(node)
        if len(entities) < min_topic_size:
            return None
        if max_levels is not None and level + 1 >= max_levels:
            # Depth cap reached: absorb the whole subtree here, so the
            # taxonomy has at most ``max_levels`` levels.
            child_candidates: List[int] = []
        else:
            child_candidates = [
                k
                for k in dendrogram.subtopics(node)
                if len(dendrogram.leaves_under(k)) >= min_topic_size
            ]
        # Only split when the node genuinely partitions into 2+ sizable
        # sub-topics; a single qualifying child is a chain link to skip.
        split = len(child_candidates) >= 2

        categories = sorted(
            {entity_categories[e] for e in entities if e in entity_categories}
        )
        topic = Topic(
            topic_id=node,
            entity_ids=sorted(entities),
            category_ids=categories,
            parent_id=parent_topic,
            level=level,
            similarity=dendrogram.similarity_of(node),
        )
        out.append(topic)
        if split:
            for k in child_candidates:
                child_id = cls._emit_subtree(
                    dendrogram,
                    k,
                    node,
                    level + 1,
                    entity_categories,
                    min_topic_size,
                    max_levels,
                    out,
                )
                if child_id is not None:
                    topic.child_ids.append(child_id)
            topic.child_ids.sort()
        return node

    # -- lookups -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._topics)

    def __contains__(self, topic_id: int) -> bool:
        return topic_id in self._topics

    def __iter__(self):
        return iter(sorted(self._topics.values(), key=lambda t: t.topic_id))

    def topic(self, topic_id: int) -> Topic:
        return self._topics[topic_id]

    def topics(self) -> List[Topic]:
        return list(self)

    def root_topics(self) -> List[Topic]:
        """Top-level topics — the pivots of category correlation (Sec. 2.4)."""
        return [t for t in self if t.parent_id is None]

    def subtopics(self, topic_id: int) -> List[Topic]:
        return [self._topics[c] for c in self._topics[topic_id].child_ids]

    def parent(self, topic_id: int) -> Optional[Topic]:
        pid = self._topics[topic_id].parent_id
        return None if pid is None else self._topics[pid]

    def topic_of_entity(self, entity_id: int) -> Optional[Topic]:
        """The most specific topic containing an entity (None if unplaced)."""
        tid = self._topic_of_entity.get(entity_id)
        return None if tid is None else self._topics[tid]

    def root_topic_of_entity(self, entity_id: int) -> Optional[Topic]:
        t = self.topic_of_entity(entity_id)
        while t is not None and t.parent_id is not None:
            t = self._topics[t.parent_id]
        return t

    def topics_of_category(self, category_id: int) -> List[Topic]:
        """Topics associated with an ontology category."""
        ids = self._topics_of_category.get(category_id, set())
        return [self._topics[t] for t in sorted(ids)]

    def placed_entities(self) -> List[int]:
        return sorted(self._topic_of_entity)

    def n_levels(self) -> int:
        if not self._topics:
            return 0
        return 1 + max(t.level for t in self._topics.values())

    def describe(self) -> str:
        roots = self.root_topics()
        return (
            f"Taxonomy(topics={len(self)}, roots={len(roots)}, "
            f"levels={self.n_levels()}, "
            f"entities={len(self._topic_of_entity)})"
        )
