"""End-to-end SHOAL configuration.

One frozen dataclass aggregating every stage's parameters, so a whole
run is reproducible from a single object. Defaults follow the paper
where it states values (α = 0.7, diffusion k = 2, correlation
threshold 10) and use sensible laptop-scale settings elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._util import check_positive
from repro.clustering.parallel_hac import ParallelHACConfig
from repro.core.correlation import CategoryCorrelationConfig
from repro.core.descriptions import DescriptionConfig
from repro.graph.entity_graph import EntityGraphConfig
from repro.text.word2vec import Word2VecConfig

__all__ = ["ShoalConfig"]


@dataclass(frozen=True)
class ShoalConfig:
    """Every stage of the SHOAL pipeline in one place.

    ``window_days`` is the sliding window over the query log (paper:
    seven days). ``min_topic_size`` filters trivially small root topics
    out of the served taxonomy — singletons carry no scenario meaning.
    """

    word2vec: Word2VecConfig = Word2VecConfig()
    entity_graph: EntityGraphConfig = EntityGraphConfig()
    clustering: ParallelHACConfig = ParallelHACConfig()
    descriptions: DescriptionConfig = DescriptionConfig()
    correlation: CategoryCorrelationConfig = CategoryCorrelationConfig()
    window_days: int = 7
    min_clicks: int = 1
    min_topic_size: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("window_days", self.window_days)
        check_positive("min_clicks", self.min_clicks)
        check_positive("min_topic_size", self.min_topic_size)

    # -- convenience copies -------------------------------------------------

    def with_alpha(self, alpha: float) -> "ShoalConfig":
        """Copy with a different Eq. 3 mixing coefficient (bench E6)."""
        return replace(self, entity_graph=replace(self.entity_graph, alpha=alpha))

    def with_diffusion_rounds(self, k: int) -> "ShoalConfig":
        """Copy with a different diffusion depth (bench E5)."""
        return replace(self, clustering=replace(self.clustering, diffusion_rounds=k))

    def with_similarity_threshold(self, threshold: float) -> "ShoalConfig":
        return replace(
            self, clustering=replace(self.clustering, similarity_threshold=threshold)
        )

    def with_linkage(self, linkage: str) -> "ShoalConfig":
        """Copy with a different merge linkage (Eq. 4 ablation)."""
        return replace(self, clustering=replace(self.clustering, linkage=linkage))

    def with_seed(self, seed: int) -> "ShoalConfig":
        return replace(
            self,
            seed=seed,
            word2vec=replace(self.word2vec, seed=seed),
        )
