"""Taxonomy reporting: text rendering and summary statistics.

The demo paper sells SHOAL through its GUI (Fig. 5); in a library the
equivalent is a readable text rendering of the taxonomy tree plus the
distributional statistics an operator watches (topic sizes, depth,
category spread, description coverage). Used by examples and exposed
as public API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.taxonomy import Taxonomy, Topic

__all__ = ["TaxonomyStats", "compute_stats", "render_tree", "render_topic"]


@dataclass(frozen=True)
class TaxonomyStats:
    """Distributional summary of a fitted taxonomy."""

    n_topics: int
    n_root_topics: int
    n_levels: int
    n_entities_placed: int
    mean_root_size: float
    median_root_size: float
    max_root_size: int
    mean_categories_per_root: float
    description_coverage: float  # fraction of topics with >= 1 description

    def summary(self) -> str:
        return (
            f"topics={self.n_topics} (roots={self.n_root_topics}, "
            f"levels={self.n_levels}), entities={self.n_entities_placed}, "
            f"root size mean/median/max="
            f"{self.mean_root_size:.1f}/{self.median_root_size:.1f}/"
            f"{self.max_root_size}, "
            f"categories/root={self.mean_categories_per_root:.1f}, "
            f"described={self.description_coverage:.0%}"
        )


def compute_stats(taxonomy: Taxonomy) -> TaxonomyStats:
    """Compute :class:`TaxonomyStats` for a taxonomy (empty-safe)."""
    topics = taxonomy.topics()
    roots = taxonomy.root_topics()
    root_sizes = np.array([t.size for t in roots]) if roots else np.zeros(0)
    described = sum(1 for t in topics if t.descriptions)
    return TaxonomyStats(
        n_topics=len(topics),
        n_root_topics=len(roots),
        n_levels=taxonomy.n_levels(),
        n_entities_placed=len(taxonomy.placed_entities()),
        mean_root_size=float(root_sizes.mean()) if len(root_sizes) else 0.0,
        median_root_size=float(np.median(root_sizes)) if len(root_sizes) else 0.0,
        max_root_size=int(root_sizes.max()) if len(root_sizes) else 0,
        mean_categories_per_root=(
            float(np.mean([len(t.category_ids) for t in roots])) if roots else 0.0
        ),
        description_coverage=(described / len(topics)) if topics else 0.0,
    )


def render_topic(
    topic: Topic,
    category_names: Optional[Dict[int, str]] = None,
    max_descriptions: int = 2,
) -> str:
    """One-line rendering of a topic: tags, size, categories."""
    tags = "; ".join(topic.descriptions[:max_descriptions]) or topic.label()
    if category_names:
        cats = ", ".join(
            category_names.get(c, str(c)) for c in topic.category_ids[:4]
        )
    else:
        cats = ", ".join(str(c) for c in topic.category_ids[:4])
    suffix = " ..." if len(topic.category_ids) > 4 else ""
    return f"[{topic.topic_id}] \"{tags}\" ({topic.size} entities; {cats}{suffix})"


def render_tree(
    taxonomy: Taxonomy,
    category_names: Optional[Dict[int, str]] = None,
    max_roots: Optional[int] = None,
    max_depth: Optional[int] = None,
) -> str:
    """ASCII tree of the taxonomy, largest root topics first.

    ``max_roots`` limits how many roots render; ``max_depth`` truncates
    deep hierarchies. Returns a single printable string.
    """
    lines: List[str] = []
    roots = sorted(taxonomy.root_topics(), key=lambda t: (-t.size, t.topic_id))
    if max_roots is not None:
        roots = roots[:max_roots]
    for root in roots:
        _render_subtree(
            taxonomy, root, "", True, 0, category_names, max_depth, lines
        )
    return "\n".join(lines)


def _render_subtree(
    taxonomy: Taxonomy,
    topic: Topic,
    prefix: str,
    is_last: bool,
    depth: int,
    category_names: Optional[Dict[int, str]],
    max_depth: Optional[int],
    lines: List[str],
) -> None:
    connector = "" if depth == 0 else ("`-- " if is_last else "|-- ")
    lines.append(prefix + connector + render_topic(topic, category_names))
    if max_depth is not None and depth + 1 >= max_depth:
        return
    children = sorted(
        taxonomy.subtopics(topic.topic_id), key=lambda t: (-t.size, t.topic_id)
    )
    child_prefix = prefix + (
        "" if depth == 0 else ("    " if is_last else "|   ")
    )
    for i, child in enumerate(children):
        _render_subtree(
            taxonomy,
            child,
            child_prefix,
            i == len(children) - 1,
            depth + 1,
            category_names,
            max_depth,
            lines,
        )
