"""Incremental sliding-window maintenance.

Production SHOAL rebuilds from the last seven days of queries; naively
that means retraining word2vec and refitting everything daily. This
module implements the operational optimisation the paper's deployment
implies: keep the expensive, slowly-changing artifacts (word
embeddings) warm, rebuild only the window-dependent ones (bipartite
graph → entity graph → clustering → descriptions → correlations), and
report how much the taxonomy moved between consecutive windows.

The embedding-reuse policy is safe because Eq. 2 only needs stable
token geometry: titles change slowly relative to the click stream, so
embeddings go stale on vocabulary shifts, not window slides. A
configurable ``retrain_every`` forces periodic full retrains.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.clustering.parallel_hac import ParallelHAC
from repro.core.config import ShoalConfig
from repro.core.correlation import CategoryCorrelationMiner
from repro.core.descriptions import TopicDescriber
from repro.core.pipeline import ShoalModel
from repro.core.serving import ShoalService
from repro.core.taxonomy import Taxonomy
from repro.data.queries import QueryLog
from repro.eval.metrics import normalized_mutual_information
from repro.graph.bipartite import build_query_item_graph
from repro.graph.entity_graph import EntityGraphBuilder
from repro.text.tokenizer import Tokenizer
from repro.text.word2vec import Word2Vec, WordEmbeddings

__all__ = ["IncrementalShoal", "WindowUpdate"]


@dataclass
class WindowUpdate:
    """What changed when the window slid to ``last_day``."""

    last_day: int
    first_day: int
    model: ShoalModel
    embeddings_retrained: bool
    taxonomy_stability: Optional[float] = None

    def summary(self) -> str:
        stability = (
            f"{self.taxonomy_stability:.3f}"
            if self.taxonomy_stability is not None
            else "n/a"
        )
        return (
            f"window {self.first_day}..{self.last_day}: "
            f"{len(self.model.taxonomy.root_topics())} root topics, "
            f"stability={stability}, "
            f"retrained={self.embeddings_retrained}"
        )


class IncrementalShoal:
    """Maintains a SHOAL model as the query-log window slides.

    Usage::

        inc = IncrementalShoal(config, titles, query_texts, categories)
        for day in range(6, horizon):
            update = inc.advance(log, last_day=day)
    """

    def __init__(
        self,
        config: ShoalConfig,
        titles: Dict[int, str],
        query_texts: Dict[int, str],
        entity_categories: Optional[Dict[int, int]] = None,
        retrain_every: int = 7,
    ):
        if retrain_every < 1:
            raise ValueError("retrain_every must be >= 1")
        self._config = config
        self._titles = dict(titles)
        self._query_texts = dict(query_texts)
        self._categories = dict(entity_categories or {})
        self._retrain_every = retrain_every
        self._tokenizer = Tokenizer()
        self._embeddings: Optional[WordEmbeddings] = None
        self._fits_since_retrain = 0
        self._last_model: Optional[ShoalModel] = None
        self._service: Optional[ShoalService] = None
        self._backend = None  # Optional[repro.api.backends.ServiceBackend]
        self._cluster = None  # Optional[repro.serving.router.ClusterRouter]

    @classmethod
    def from_model(
        cls,
        model: ShoalModel,
        entity_categories: Optional[Dict[int, int]] = None,
        retrain_every: int = 7,
    ) -> "IncrementalShoal":
        """Warm-start maintenance from an already-fitted model.

        The streaming updater uses this to resume sliding-window
        maintenance over a snapshot a serving process loaded from disk:
        the model's titles, query texts, and embeddings seed the
        maintainer, so the first :meth:`advance` reuses warm embeddings
        exactly as if this process had fitted the model itself.
        """
        inc = cls(
            model.config,
            model.titles,
            model.query_texts,
            entity_categories,
            retrain_every=retrain_every,
        )
        inc._last_model = model
        inc._embeddings = model.embeddings
        inc._fits_since_retrain = 1
        return inc

    @property
    def model(self) -> Optional[ShoalModel]:
        """The most recent fitted model (None before the first advance)."""
        return self._last_model

    @property
    def entity_categories(self) -> Dict[int, int]:
        """The authoritative entity → category map the maintainer holds."""
        return dict(self._categories)

    def service(self) -> ShoalService:
        """A persistent serving engine over the latest model.

        The same :class:`ShoalService` instance is returned across
        window slides; each :meth:`advance` refreshes its indexes and
        invalidates its query cache, so stale window results are never
        served while cache hit/miss counters stay cumulative.

        Deprecated for external callers: frontends should serve through
        :meth:`backend`, which wraps this engine in the gateway-API
        contract (:mod:`repro.api`). The raw engine remains available
        for scenario-B/C/D navigation.
        """
        if self._last_model is None:
            raise RuntimeError("no model yet; call advance() first")
        if self._service is None:
            self._service = ShoalService(
                self._last_model, entity_categories=self._categories
            )
        return self._service

    def backend(self):
        """The gateway-API view of the maintained read tier.

        Returns a persistent
        :class:`~repro.api.backends.ServiceBackend` over the same
        engine :meth:`service` maintains, so window slides refresh the
        backend's answers too. This is the supported serving surface
        for frontends; construct requests from :mod:`repro.api` and
        call ``search`` / ``recommend`` / ``batch`` on it.
        """
        if self._backend is None:
            # Imported lazily: repro.api adapters depend on this package.
            from repro.api.backends import ServiceBackend

            self._backend = ServiceBackend(self.service())
        return self._backend

    def cluster(
        self,
        n_shards: int = 2,
        n_replicas: int = 1,
        cache_size: int = 4096,
    ):
        """A persistent sharded cluster router over the latest model.

        The same :class:`~repro.serving.router.ClusterRouter` instance
        is returned across window slides; each :meth:`advance`
        re-partitions the new model into it and rebuilds **only the
        affected shards** — a shard whose pruned content and global
        corpus statistics are unchanged keeps its replicas and warm
        caches. Calling again with a different shape builds a fresh
        router (the old one keeps serving whoever holds it).
        """
        if self._last_model is None:
            raise RuntimeError("no model yet; call advance() first")
        # Imported lazily: repro.serving depends on this package.
        from repro.serving.router import ClusterRouter

        c = self._cluster
        if (
            c is None
            or c.n_shards != n_shards
            or c.n_replicas != n_replicas
            or c.cache_size != cache_size
        ):
            self._cluster = ClusterRouter.from_model(
                self._last_model,
                n_shards,
                n_replicas=n_replicas,
                entity_categories=self._categories,
                cache_size=cache_size,
            )
        return self._cluster

    # -- embedding lifecycle -----------------------------------------------

    def _ensure_embeddings(self) -> bool:
        """(Re)train embeddings if missing or due; returns True if
        a retrain happened."""
        due = (
            self._embeddings is None
            or self._fits_since_retrain >= self._retrain_every
        )
        if not due:
            return False
        corpus = list(self._titles.values()) + list(self._query_texts.values())
        token_docs = self._tokenizer.tokenize_all(corpus)
        self._embeddings = Word2Vec(self._config.word2vec).fit(token_docs)
        self._fits_since_retrain = 0
        return True

    def invalidate_embeddings(self) -> None:
        """Force a retrain at the next advance (e.g. catalog changed)."""
        self._embeddings = None

    def update_titles(self, titles: Dict[int, str]) -> None:
        """Catalog update: new/changed titles invalidate embeddings."""
        self._titles.update(titles)
        self.invalidate_embeddings()

    def update_queries(self, query_texts: Dict[int, str]) -> None:
        """Register new/changed query texts (e.g. queries first seen in a
        later window) so :class:`TopicDescriber` can score them.

        Unlike :meth:`update_titles` this does *not* force an embedding
        retrain: description matching only needs the raw text, and the
        token geometry catches up at the next scheduled retrain.
        """
        self._query_texts.update(query_texts)

    # -- persistence ----------------------------------------------------------

    def checkpoint(self, directory: Union[str, Path]) -> Path:
        """Persist the full maintenance state to ``directory``.

        Includes the refit inputs (titles, query texts, categories),
        the embedding-retrain counters, and a complete snapshot of the
        latest model, so sliding-window maintenance survives a process
        restart via :meth:`resume`.
        """
        # Imported lazily: the store layer depends on core modules.
        from repro.store.persistence import CheckpointState, save_checkpoint

        state = CheckpointState(
            config=self._config,
            titles=dict(self._titles),
            query_texts=dict(self._query_texts),
            entity_categories=dict(self._categories),
            retrain_every=self._retrain_every,
            fits_since_retrain=self._fits_since_retrain,
            embeddings_valid=self._embeddings is not None,
            model=self._last_model,
        )
        return save_checkpoint(state, directory)

    @classmethod
    def resume(cls, directory: Union[str, Path]) -> "IncrementalShoal":
        """Reconstruct an :class:`IncrementalShoal` from a checkpoint.

        Warm embeddings are re-linked from the snapshotted model (they
        are the same artifact), unless they were invalidated before the
        checkpoint — then the next :meth:`advance` retrains, exactly as
        it would have without the restart.
        """
        from repro.store.persistence import load_checkpoint

        state = load_checkpoint(directory)
        inc = cls(
            state.config,
            state.titles,
            state.query_texts,
            state.entity_categories,
            retrain_every=state.retrain_every,
        )
        inc._fits_since_retrain = state.fits_since_retrain
        inc._last_model = state.model
        if state.embeddings_valid and state.model is not None:
            inc._embeddings = state.model.embeddings
        return inc

    # -- the slide -----------------------------------------------------------

    def advance(self, query_log: QueryLog, last_day: int) -> WindowUpdate:
        """Refit over ``[last_day − window + 1, last_day]`` reusing warm
        embeddings; returns the update record with a stability score
        (NMI between consecutive root partitions)."""
        cfg = self._config
        first_day = max(0, last_day - cfg.window_days + 1)
        retrained = self._ensure_embeddings()
        assert self._embeddings is not None

        bipartite = build_query_item_graph(
            query_log, first_day, last_day, cfg.min_clicks
        )
        builder = EntityGraphBuilder(
            self._embeddings, self._tokenizer, cfg.entity_graph
        )
        entity_graph = builder.build(bipartite, self._titles)
        clustering = ParallelHAC(cfg.clustering).fit(entity_graph)
        taxonomy = Taxonomy.from_dendrogram(
            clustering.dendrogram,
            self._categories,
            min_topic_size=cfg.min_topic_size,
        )
        describer = TopicDescriber(self._tokenizer, cfg.descriptions)
        descriptions = describer.describe(
            taxonomy, bipartite, self._titles, self._query_texts
        )
        correlations = CategoryCorrelationMiner(cfg.correlation).mine(taxonomy)

        model = ShoalModel(
            config=cfg,
            bipartite=bipartite,
            embeddings=self._embeddings,
            entity_graph=entity_graph,
            clustering=clustering,
            taxonomy=taxonomy,
            descriptions=descriptions,
            correlations=correlations,
            titles=dict(self._titles),
            query_texts=dict(self._query_texts),
        )

        stability = self._stability(self._last_model, model)
        self._last_model = model
        self._fits_since_retrain += 1
        if self._service is not None:
            self._service.refresh(model, entity_categories=self._categories)
        if self._cluster is not None:
            self._cluster.refresh(model, entity_categories=self._categories)
        return WindowUpdate(
            last_day=last_day,
            first_day=first_day,
            model=model,
            embeddings_retrained=retrained,
            taxonomy_stability=stability,
        )

    @staticmethod
    def _stability(
        previous: Optional[ShoalModel], current: ShoalModel
    ) -> Optional[float]:
        """NMI between consecutive root partitions on shared entities."""
        if previous is None:
            return None
        prev_labels = previous.clustering.dendrogram.root_partition()
        curr_labels = current.clustering.dendrogram.root_partition()
        shared = set(prev_labels) & set(curr_labels)
        if len(shared) < 2:
            return None
        return normalized_mutual_information(
            {e: curr_labels[e] for e in shared},
            {e: prev_labels[e] for e in shared},
        )
