"""Serving engine: the four demo scenarios of paper Fig. 5, built for
read throughput.

* **Query→Topic (A)** — keyword search over topic descriptions and
  content returns the matching topics (the "visual star graph");
* **Topic→Sub-topic (B)** — hierarchy navigation;
* **Topic→Category→Item (C)** — categories under a topic and the items
  of each category within it;
* **Category→Category (D)** — related categories from the Sec. 2.4
  correlation graph.

The engine separates the *build* path from the *serve* path, the way a
production read tier must when the paper claims "millions of searches
per day":

1. **Precomputed indexes** — per-topic description token sets, the
   inverted token→topic index, the category→topic index, per-topic
   subtree sets, and the entity→category map are all built once per
   model into an immutable :class:`_ServiceState`, never per request.
2. **Candidate pruning** — :meth:`search_topics` scores only the BM25
   posting-list candidates; :meth:`related_topics` scores only topics
   sharing at least one description token or category with the centre
   topic. Both prunings are exact: a topic outside the candidate set
   scores zero and could never be returned.
3. **Query-result LRU cache** — repeated ``search_topics`` /
   ``related_topics`` / ``recommend`` calls are served from an LRU
   cache with hit/miss accounting (:meth:`cache_stats`) and explicit
   invalidation (:meth:`invalidate_cache`). Sliding-window updates
   invalidate it via :meth:`refresh`, which
   :class:`~repro.core.incremental.IncrementalShoal` and the streaming
   :class:`~repro.streaming.rollout.GenerationSwitch` call on every
   model rollout.
4. **Batch APIs** — :meth:`search_topics_batch` and
   :meth:`recommend_batch` amortise tokenisation and share cache
   lookups across a request batch.

**Hot swap.** Every per-model structure lives in one
:class:`_ServiceState` object and every request reads
``self._state`` exactly once, so :meth:`refresh` builds the next
window's indexes *off to the side* and publishes them with a single
reference assignment — a concurrent reader sees either the old state
or the new one in full, never a half-installed mix, and the serving
process never stops answering during a rollout.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

# The query-result cache lives in the shared, locked repro.api.cache
# module (one implementation for the engine, the cluster router's
# front cache, and the gateway middleware). `_LRUCache` is the
# pre-gateway private name, kept as an alias for one release.
from repro.api.cache import CacheStats, LRUCache as _LRUCache
from repro.core.correlation import CorrelationGraph
from repro.core.pipeline import ShoalModel
from repro.core.taxonomy import Taxonomy, Topic
from repro.text.bm25 import BM25, CollectionStats
from repro.text.tokenizer import Tokenizer

__all__ = [
    "TopicHit",
    "CategoryHit",
    "CacheStats",
    "ShoalService",
    "build_topic_documents",
]


@dataclass(frozen=True)
class TopicHit:
    """A topic returned for a keyword query, with retrieval score."""

    topic_id: int
    score: float
    label: str
    n_entities: int
    n_categories: int


@dataclass(frozen=True)
class CategoryHit:
    """A related category with its correlation strength."""

    category_id: int
    strength: int


def build_topic_documents(
    topics: Sequence[Topic],
    titles: Dict[int, str],
    tokenize: Callable[[str], List[str]],
) -> Tuple[List[List[str]], List[FrozenSet[str]]]:
    """The retrieval document of each topic, plus its description-token set.

    One document per topic: its descriptions (boosted by repetition)
    followed by its entity titles. This is THE definition of the serving
    corpus — :class:`ShoalService` indexes exactly these documents, and
    the shard planner computes global collection statistics over them,
    so both must build documents through this one function or sharded
    scores drift from the unsharded ones.
    """
    docs: List[List[str]] = []
    token_sets: List[FrozenSet[str]] = []
    for t in topics:
        desc_tokens: List[str] = []
        for d in t.descriptions:
            desc_tokens.extend(tokenize(d))
        doc = desc_tokens * 3
        for e in t.entity_ids:
            doc.extend(tokenize(titles.get(e, "")))
        docs.append(doc)
        token_sets.append(frozenset(desc_tokens))
    return docs, token_sets


#: Monotonic id source for _ServiceState.version (see below).
_STATE_VERSIONS = itertools.count(1)


class _ServiceState:
    """Every per-model serving structure, built once and then immutable.

    One instance is published per installed model; requests read the
    service's state reference once and work against that snapshot for
    their whole lifetime, which is what makes :meth:`ShoalService.refresh`
    a zero-downtime swap.

    ``version`` is a process-unique id mixed into every cache key, so a
    request that computed its answer against the *old* state can never
    poison the cache after a refresh cleared it — its late ``put`` lands
    under the old version and is unreachable from new lookups.
    """

    __slots__ = (
        "version",
        "model",
        "topics",
        "position_of",
        "topic_tokens",
        "topic_categories",
        "index",
        "positions_with_token",
        "positions_with_category",
        "subtree",
        "entity_categories",
    )

    def __init__(
        self,
        model: ShoalModel,
        tokenizer: Tokenizer,
        entity_categories: Optional[Dict[int, int]] = None,
        collection_stats: Optional[CollectionStats] = None,
    ):
        tokenize = tokenizer.tokenize
        self.version = next(_STATE_VERSIONS)
        self.model = model
        self.topics: List[Topic] = model.taxonomy.topics()
        self.position_of: Dict[int, int] = {
            t.topic_id: pos for pos, t in enumerate(self.topics)
        }

        # Retrieval index: one document per topic = its descriptions
        # (boosted by repetition) plus its entity titles; the
        # description-token sets feed related_topics, tokenised once
        # here instead of per call.
        docs, self.topic_tokens = build_topic_documents(
            self.topics, model.titles, tokenize
        )
        self.topic_categories: List[FrozenSet[int]] = [
            frozenset(t.category_ids) for t in self.topics
        ]
        self.index = (
            BM25(docs, collection_stats=collection_stats) if docs else None
        )

        # Inverted indexes for related_topics candidate pruning.
        self.positions_with_token: Dict[str, List[int]] = {}
        self.positions_with_category: Dict[int, List[int]] = {}
        for pos, tokens in enumerate(self.topic_tokens):
            for tok in tokens:
                self.positions_with_token.setdefault(tok, []).append(pos)
        for pos, cats in enumerate(self.topic_categories):
            for c in cats:
                self.positions_with_category.setdefault(c, []).append(pos)

        # Subtree sets (topic + all descendants), children before
        # parents so each parent unions already-complete child sets.
        self.subtree: Dict[int, FrozenSet[int]] = {}
        for t in sorted(self.topics, key=lambda t: t.level, reverse=True):
            ids = {t.topic_id}
            for c in t.child_ids:
                ids.update(self.subtree[c])
            self.subtree[t.topic_id] = frozenset(ids)

        # Entity → category map: authoritative if provided, otherwise
        # derived — a topic whose category set is a single category
        # pins all its entities, leaf-most topics winning ties.
        if entity_categories is not None:
            self.entity_categories = dict(entity_categories)
        else:
            mapping: Dict[int, int] = {}
            for t in sorted(self.topics, key=lambda t: t.level, reverse=True):
                if len(t.category_ids) == 1:
                    c = t.category_ids[0]
                    for e in t.entity_ids:
                        mapping.setdefault(e, c)
            self.entity_categories = mapping

    def with_entity_categories(
        self, mapping: Dict[int, int]
    ) -> "_ServiceState":
        """A sibling state sharing every index, with a new entity map."""
        twin = object.__new__(_ServiceState)
        for name in _ServiceState.__slots__:
            setattr(twin, name, getattr(self, name))
        twin.version = next(_STATE_VERSIONS)
        twin.entity_categories = dict(mapping)
        return twin


class ShoalService:
    """Read-only query engine over a fitted :class:`ShoalModel`.

    ``cache_size`` bounds the query-result LRU cache (0 disables it).
    ``entity_categories`` installs the authoritative entity → category
    map up front; without it the map is derived from single-category
    topics (see :meth:`set_entity_categories`).

    ``collection_stats`` scores this service's BM25 index against the
    statistics of a larger corpus it is a partition of — the mechanism
    a sharded cluster uses to keep per-shard scores identical to the
    unsharded service (see :mod:`repro.serving`). Leave it ``None`` for
    a standalone service.
    """

    def __init__(
        self,
        model: ShoalModel,
        tokenizer: Optional[Tokenizer] = None,
        *,
        cache_size: int = 4096,
        entity_categories: Optional[Dict[int, int]] = None,
        collection_stats: Optional[CollectionStats] = None,
    ):
        self._tokenizer = tokenizer or Tokenizer()
        self._cache = _LRUCache(cache_size)
        self._state = _ServiceState(
            model, self._tokenizer, entity_categories, collection_stats
        )

    @classmethod
    def from_snapshot(
        cls,
        directory,
        tokenizer: Optional[Tokenizer] = None,
        *,
        cache_size: int = 4096,
    ) -> "ShoalService":
        """Warm-start the full read tier from a model snapshot on disk.

        This is the production deployment path: the pipeline fits
        offline and calls :meth:`ShoalModel.save`; every serving
        process then constructs from the snapshot directory, skipping
        the fit entirely. If the snapshot carries the authoritative
        entity → category sidecar it is installed up front, so answers
        are identical to a service built from the in-memory model.
        """
        # Imported lazily: the store layer depends on this module's package.
        from repro.store.persistence import load_entity_categories, load_model

        return cls(
            load_model(directory),
            tokenizer,
            cache_size=cache_size,
            entity_categories=load_entity_categories(directory),
        )

    # -- model lifecycle -----------------------------------------------------

    def refresh(
        self,
        model: ShoalModel,
        entity_categories: Optional[Dict[int, int]] = None,
        collection_stats: Optional[CollectionStats] = None,
    ) -> None:
        """Swap in a freshly fitted model with zero read downtime.

        Every precomputed index is rebuilt *off to the side* and then
        published with one reference assignment — requests in flight
        keep the state they started with, requests arriving after see
        the new model, and none ever observe a half-built mix. The
        query cache is invalidated last: results computed against the
        previous window must never be served against the new one.
        """
        new_state = _ServiceState(
            model, self._tokenizer, entity_categories, collection_stats
        )
        self._state = new_state
        self._cache.clear()

    def update_collection_stats(self, stats: CollectionStats) -> None:
        """Re-score against new corpus-wide statistics, keeping the index.

        The cheap refresh path for a shard whose own documents did not
        change while a sibling shard's did: postings and term
        frequencies are reused as-is, only IDF and the length norm are
        rebound. The query cache is invalidated — cached scores were
        computed against the old statistics.
        """
        index = self._state.index
        if index is not None:
            index.rebind_collection_stats(stats)
        self._cache.clear()

    def replica(self, cache_size: Optional[int] = None) -> "ShoalService":
        """A serving replica sharing this service's precomputed indexes.

        Replicas model the N-processes-per-shard deployment: the
        immutable state (BM25 postings, inverted indexes, subtree sets)
        is shared read-only, while each replica gets its own
        query-result cache — exactly like separate processes warm their
        caches independently. ``cache_size`` defaults to this service's
        cache capacity.
        """
        twin = object.__new__(ShoalService)
        twin.__dict__.update(self.__dict__)
        size = self._cache.max_size if cache_size is None else cache_size
        twin._cache = _LRUCache(size)
        return twin

    def posting_tokens(self) -> FrozenSet[str]:
        """Tokens in this service's BM25 posting lists.

        A query sharing no token with this set cannot match any topic
        here; a cluster router uses this to skip the shard outright.
        """
        index = self._state.index
        if index is None:
            return frozenset()
        return index.indexed_tokens()

    def collection_stats(self) -> Optional[CollectionStats]:
        """The corpus statistics the BM25 index scores against."""
        index = self._state.index
        return None if index is None else index.collection_stats

    @property
    def model(self) -> ShoalModel:
        return self._state.model

    @property
    def taxonomy(self) -> Taxonomy:
        return self._state.model.taxonomy

    # -- cache lifecycle -----------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Hit/miss/size counters of the query-result cache."""
        return self._cache.stats()

    def invalidate_cache(self) -> None:
        """Drop all cached query results (counters are cumulative)."""
        self._cache.clear()

    # -- scenario A: Query → Topic ------------------------------------------

    def search_topics(self, query: str, k: int = 5) -> List[TopicHit]:
        """Topics relevant to a keyword query, best first."""
        return self._search_tokens(
            self._state, tuple(self._tokenizer.tokenize(query)), k
        )

    def search_tokens(
        self, tokens: Sequence[str], k: int = 5
    ) -> List[TopicHit]:
        """Like :meth:`search_topics` over already-tokenised terms.

        The cluster router tokenises a query once and fans the token
        tuple out to candidate shards through this entry point.
        """
        return self._search_tokens(self._state, tuple(tokens), k)

    def _search_tokens(
        self, state: _ServiceState, tokens: Tuple[str, ...], k: int
    ) -> List[TopicHit]:
        """Cached BM25 search over pre-tokenised query terms, against
        one state snapshot (hot-swap safety: search and any follow-up
        lookups of the caller run against the same model)."""
        if state.index is None or not tokens:
            return []
        key = ("search", state.version, tokens, k)
        cached = self._cache.get(key)
        if cached is not _LRUCache._MISS:
            return list(cached)
        hits = []
        for doc_idx, score in state.index.top_k(tokens, k):
            t = state.topics[doc_idx]
            hits.append(
                TopicHit(
                    topic_id=t.topic_id,
                    score=score,
                    label=t.label(),
                    n_entities=t.size,
                    n_categories=len(t.category_ids),
                )
            )
        self._cache.put(key, tuple(hits))
        return hits

    def search_topics_batch(
        self, queries: Sequence[str], k: int = 5
    ) -> List[List[TopicHit]]:
        """One result list per query, in order.

        Tokenises the whole batch up front and serves duplicate
        queries from the cache, so a panel of N widgets issuing the
        same trending queries costs one index probe each.
        """
        state = self._state
        token_lists = self._tokenizer.tokenize_all(queries)
        return [
            self._search_tokens(state, tuple(toks), k)
            for toks in token_lists
        ]

    def best_topic(self, query: str) -> Optional[Topic]:
        """The single best-matching topic (None if nothing matches)."""
        state = self._state
        hits = self._search_tokens(
            state, tuple(self._tokenizer.tokenize(query)), 1
        )
        if not hits:
            return None
        return state.model.taxonomy.topic(hits[0].topic_id)

    # -- scenario B: Topic → Sub-topic ------------------------------------------

    def subtopics(self, topic_id: int) -> List[Topic]:
        """Direct sub-topics of a topic (empty for leaf topics)."""
        return self.taxonomy.subtopics(topic_id)

    def topic_path(self, topic_id: int) -> List[Topic]:
        """Ancestors from the topic up to its root (inclusive both ends)."""
        taxonomy = self.taxonomy
        path = [taxonomy.topic(topic_id)]
        while path[-1].parent_id is not None:
            path.append(taxonomy.topic(path[-1].parent_id))
        return path

    # -- scenario C: Topic → Category → Item -------------------------------------

    def categories_of_topic(self, topic_id: int) -> List[int]:
        """Ontology categories associated with a topic."""
        return list(self.taxonomy.topic(topic_id).category_ids)

    def entities_of_topic_category(
        self, topic_id: int, category_id: int
    ) -> List[int]:
        """Entities of the topic falling under one of its categories.

        Uses the precomputed entity → category map; entities without
        category info never match.
        """
        state = self._state
        topic = state.model.taxonomy.topic(topic_id)
        cat_map = state.entity_categories
        return [e for e in topic.entity_ids if cat_map.get(e) == category_id]

    def set_entity_categories(self, mapping: Dict[int, int]) -> None:
        """Install the authoritative entity → category map (preferred).

        The pipeline knows the catalog's categories; examples call this
        so scenario C filters exactly. Invalidates the query cache.
        """
        self._state = self._state.with_entity_categories(mapping)
        self._cache.clear()

    # -- scenario D: Category → Category ---------------------------------------

    def related_categories(self, category_id: int, k: int = 8) -> List[CategoryHit]:
        """Correlated categories by descending Eq. 5 strength."""
        graph: CorrelationGraph = self._state.model.correlations
        return [
            CategoryHit(c, s) for c, s in graph.related_categories(category_id, k)
        ]

    def related_topics(self, topic_id: int, k: int = 6) -> List[Tuple[Topic, float]]:
        """Topics similar to ``topic_id`` — the demo's star-graph neighbours.

        Similarity blends category overlap (Jaccard of category sets)
        with description-token overlap, so topics about the same
        merchandise *or* the same intent surface together. Excludes the
        topic itself and its ancestors/descendants (hierarchy
        navigation already covers those).

        Only candidate topics sharing at least one description token or
        category with the centre are scored (anything else scores 0).
        """
        state = self._state
        taxonomy = state.model.taxonomy
        center = taxonomy.topic(topic_id)
        key = ("related", state.version, topic_id, k)
        cached = self._cache.get(key)
        if cached is not _LRUCache._MISS:
            return list(cached)

        center_pos = state.position_of[topic_id]
        lineage = set(state.subtree[topic_id])
        parent = center.parent_id
        while parent is not None:
            lineage.add(parent)
            parent = taxonomy.topic(parent).parent_id

        center_cats = state.topic_categories[center_pos]
        center_tokens = state.topic_tokens[center_pos]
        candidates: set = set()
        for tok in center_tokens:
            candidates.update(state.positions_with_token.get(tok, ()))
        for c in center_cats:
            candidates.update(state.positions_with_category.get(c, ()))

        scored: List[Tuple[Topic, float]] = []
        for pos in candidates:
            other = state.topics[pos]
            if other.topic_id in lineage:
                continue
            cats = state.topic_categories[pos]
            cat_sim = (
                len(center_cats & cats) / len(center_cats | cats)
                if center_cats or cats
                else 0.0
            )
            tokens = state.topic_tokens[pos]
            tok_sim = (
                len(center_tokens & tokens) / len(center_tokens | tokens)
                if center_tokens or tokens
                else 0.0
            )
            score = 0.5 * cat_sim + 0.5 * tok_sim
            if score > 0.0:
                scored.append((other, score))
        scored.sort(key=lambda ts: (-ts[1], ts[0].topic_id))
        result = scored[:k]
        self._cache.put(key, tuple(result))
        return result

    # -- recommendation (used by the A/B bench) -----------------------------------

    def recommend_entities_for_query(self, query: str, k: int = 10) -> List[int]:
        """Topic-matched entity recommendation (experiment group, Fig. 4b).

        Find the best topic for the query and return its entities —
        cross-category by construction, which is the behaviour the A/B
        test credits for the CTR uplift. The search and the topic
        lookup run against one state snapshot, so a concurrent refresh
        can never make the winning topic "disappear" mid-request.
        """
        state = self._state
        hits = self._search_tokens(
            state, tuple(self._tokenizer.tokenize(query)), 1
        )
        if not hits:
            return []
        topic = state.model.taxonomy.topic(hits[0].topic_id)
        return topic.entity_ids[:k]

    def recommend_batch(
        self, queries: Sequence[str], k: int = 10
    ) -> List[List[int]]:
        """One entity slate per query, in order.

        The batched counterpart of :meth:`recommend_entities_for_query`;
        shares tokenisation and cache lookups across the batch.
        """
        state = self._state
        token_lists = self._tokenizer.tokenize_all(queries)
        slates: List[List[int]] = []
        for toks in token_lists:
            hits = self._search_tokens(state, tuple(toks), 1)
            if not hits:
                slates.append([])
            else:
                topic = state.model.taxonomy.topic(hits[0].topic_id)
                slates.append(topic.entity_ids[:k])
        return slates
