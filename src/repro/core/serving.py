"""Serving layer: the four demo scenarios of paper Fig. 5.

* **Query→Topic (A)** — keyword search over topic descriptions and
  content returns the matching topics (the "visual star graph");
* **Topic→Sub-topic (B)** — hierarchy navigation;
* **Topic→Category→Item (C)** — categories under a topic and the items
  of each category within it;
* **Category→Category (D)** — related categories from the Sec. 2.4
  correlation graph.

Retrieval for (A) ranks topics by BM25 relevance of the query against
each topic's description+pseudo-document index, matching how the demo
"query processor finds related topics for the input query".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.correlation import CorrelationGraph
from repro.core.pipeline import ShoalModel
from repro.core.taxonomy import Taxonomy, Topic
from repro.text.bm25 import BM25, BM25Config
from repro.text.tokenizer import Tokenizer

__all__ = ["TopicHit", "CategoryHit", "ShoalService"]


@dataclass(frozen=True)
class TopicHit:
    """A topic returned for a keyword query, with retrieval score."""

    topic_id: int
    score: float
    label: str
    n_entities: int
    n_categories: int


@dataclass(frozen=True)
class CategoryHit:
    """A related category with its correlation strength."""

    category_id: int
    strength: int


class ShoalService:
    """Read-only query interface over a fitted :class:`ShoalModel`."""

    def __init__(self, model: ShoalModel, tokenizer: Optional[Tokenizer] = None):
        self._model = model
        self._tokenizer = tokenizer or Tokenizer()
        self._topics: List[Topic] = model.taxonomy.topics()
        # Retrieval index: one document per topic = its descriptions
        # (boosted by repetition) plus its entity titles.
        docs: List[List[str]] = []
        for t in self._topics:
            tokens: List[str] = []
            for d in t.descriptions:
                tokens.extend(self._tokenizer.tokenize(d) * 3)
            for e in t.entity_ids:
                tokens.extend(self._tokenizer.tokenize(model.titles.get(e, "")))
            docs.append(tokens)
        self._index = BM25(docs) if docs else None

    @property
    def model(self) -> ShoalModel:
        return self._model

    @property
    def taxonomy(self) -> Taxonomy:
        return self._model.taxonomy

    # -- scenario A: Query → Topic ------------------------------------------

    def search_topics(self, query: str, k: int = 5) -> List[TopicHit]:
        """Topics relevant to a keyword query, best first."""
        if self._index is None:
            return []
        tokens = self._tokenizer.tokenize(query)
        if not tokens:
            return []
        hits = []
        for doc_idx, score in self._index.top_k(tokens, k):
            t = self._topics[doc_idx]
            hits.append(
                TopicHit(
                    topic_id=t.topic_id,
                    score=score,
                    label=t.label(),
                    n_entities=t.size,
                    n_categories=len(t.category_ids),
                )
            )
        return hits

    def best_topic(self, query: str) -> Optional[Topic]:
        """The single best-matching topic (None if nothing matches)."""
        hits = self.search_topics(query, k=1)
        if not hits:
            return None
        return self.taxonomy.topic(hits[0].topic_id)

    # -- scenario B: Topic → Sub-topic ------------------------------------------

    def subtopics(self, topic_id: int) -> List[Topic]:
        """Direct sub-topics of a topic (empty for leaf topics)."""
        return self.taxonomy.subtopics(topic_id)

    def topic_path(self, topic_id: int) -> List[Topic]:
        """Ancestors from the topic up to its root (inclusive both ends)."""
        path = [self.taxonomy.topic(topic_id)]
        while path[-1].parent_id is not None:
            path.append(self.taxonomy.topic(path[-1].parent_id))
        return path

    # -- scenario C: Topic → Category → Item -------------------------------------

    def categories_of_topic(self, topic_id: int) -> List[int]:
        """Ontology categories associated with a topic."""
        return list(self.taxonomy.topic(topic_id).category_ids)

    def entities_of_topic_category(
        self, topic_id: int, category_id: int
    ) -> List[int]:
        """Entities of the topic falling under one of its categories.

        Requires the model to know entity categories via the taxonomy's
        category links; entities without category info never match.
        """
        topic = self.taxonomy.topic(topic_id)
        cat_map = self._entity_category_map()
        return [e for e in topic.entity_ids if cat_map.get(e) == category_id]

    def _entity_category_map(self) -> Dict[int, int]:
        """Reconstruct entity → category from leaf-most topics.

        Built lazily and cached: a topic whose category set is a single
        category pins all its entities; otherwise entities stay
        ambiguous unless a more specific topic resolves them.
        """
        cached = getattr(self, "_entity_categories", None)
        if cached is not None:
            return cached
        mapping: Dict[int, int] = {}
        for t in sorted(self._topics, key=lambda t: t.level, reverse=True):
            if len(t.category_ids) == 1:
                c = t.category_ids[0]
                for e in t.entity_ids:
                    mapping.setdefault(e, c)
        self._entity_categories = mapping
        return mapping

    def set_entity_categories(self, mapping: Dict[int, int]) -> None:
        """Install the authoritative entity → category map (preferred).

        The pipeline knows the catalog's categories; examples call this
        so scenario C filters exactly.
        """
        self._entity_categories = dict(mapping)

    # -- scenario D: Category → Category ---------------------------------------

    def related_categories(self, category_id: int, k: int = 8) -> List[CategoryHit]:
        """Correlated categories by descending Eq. 5 strength."""
        graph: CorrelationGraph = self._model.correlations
        return [
            CategoryHit(c, s) for c, s in graph.related_categories(category_id, k)
        ]

    def related_topics(self, topic_id: int, k: int = 6) -> List[Tuple[Topic, float]]:
        """Topics similar to ``topic_id`` — the demo's star-graph neighbours.

        Similarity blends category overlap (Jaccard of category sets)
        with description-token overlap, so topics about the same
        merchandise *or* the same intent surface together. Excludes the
        topic itself and its ancestors/descendants (hierarchy
        navigation already covers those).
        """
        center = self.taxonomy.topic(topic_id)
        lineage = {t.topic_id for t in self.topic_path(topic_id)}
        stack = list(center.child_ids)
        while stack:
            node = stack.pop()
            lineage.add(node)
            stack.extend(self.taxonomy.topic(node).child_ids)

        center_cats = set(center.category_ids)
        center_tokens = set()
        for d in center.descriptions:
            center_tokens.update(self._tokenizer.tokenize(d))

        scored: List[Tuple[Topic, float]] = []
        for other in self._topics:
            if other.topic_id in lineage:
                continue
            cats = set(other.category_ids)
            cat_sim = (
                len(center_cats & cats) / len(center_cats | cats)
                if center_cats | cats
                else 0.0
            )
            tokens = set()
            for d in other.descriptions:
                tokens.update(self._tokenizer.tokenize(d))
            tok_sim = (
                len(center_tokens & tokens) / len(center_tokens | tokens)
                if center_tokens | tokens
                else 0.0
            )
            score = 0.5 * cat_sim + 0.5 * tok_sim
            if score > 0.0:
                scored.append((other, score))
        scored.sort(key=lambda ts: (-ts[1], ts[0].topic_id))
        return scored[:k]

    # -- recommendation (used by the A/B bench) -----------------------------------

    def recommend_entities_for_query(self, query: str, k: int = 10) -> List[int]:
        """Topic-matched entity recommendation (experiment group, Fig. 4b).

        Find the best topic for the query and return its entities —
        cross-category by construction, which is the behaviour the A/B
        test credits for the CTR uplift.
        """
        topic = self.best_topic(query)
        if topic is None:
            return []
        return topic.entity_ids[:k]
