"""Core SHOAL: the paper's primary contribution, end to end.

* :mod:`repro.core.config` — one config object for the whole pipeline;
* :mod:`repro.core.taxonomy` — the hierarchical topic structure built
  from the Parallel HAC dendrogram (paper Fig. 1b);
* :mod:`repro.core.descriptions` — representative-query tagging of
  topics (Sec. 2.3: popularity × concentration, BM25);
* :mod:`repro.core.correlation` — ontology-category correlation mining
  over root topics (Sec. 2.4, Eq. 5);
* :mod:`repro.core.pipeline` — orchestration: query log → bipartite
  graph → embeddings → entity graph → Parallel HAC → taxonomy →
  descriptions → correlations;
* :mod:`repro.core.serving` — the four demo scenarios of Fig. 5.
"""

from repro.core.config import ShoalConfig
from repro.core.taxonomy import Taxonomy, Topic
from repro.core.descriptions import (
    DescriptionConfig,
    TopicDescriber,
    QueryScore,
)
from repro.core.correlation import (
    CategoryCorrelationConfig,
    CategoryCorrelationMiner,
    CorrelationGraph,
)
from repro.core.pipeline import ShoalPipeline, ShoalModel
from repro.core.serving import CacheStats, CategoryHit, ShoalService, TopicHit
from repro.core.incremental import IncrementalShoal, WindowUpdate
from repro.core.report import TaxonomyStats, compute_stats, render_tree, render_topic

__all__ = [
    "ShoalConfig",
    "Taxonomy",
    "Topic",
    "DescriptionConfig",
    "TopicDescriber",
    "QueryScore",
    "CategoryCorrelationConfig",
    "CategoryCorrelationMiner",
    "CorrelationGraph",
    "ShoalPipeline",
    "ShoalModel",
    "ShoalService",
    "TopicHit",
    "CategoryHit",
    "CacheStats",
    "IncrementalShoal",
    "WindowUpdate",
    "TaxonomyStats",
    "compute_stats",
    "render_tree",
    "render_topic",
]
