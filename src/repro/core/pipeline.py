"""End-to-end SHOAL pipeline orchestration.

Runs the four components of the paper's framework in order:

1. build the query–item bipartite graph over the sliding window;
2. train word2vec on the corpus, build the item entity graph (Eq. 1–3);
3. run Parallel HAC to obtain the merge forest, cut it into the topic
   taxonomy;
4. tag topics with representative queries (Sec. 2.3) and mine the
   category correlation graph (Sec. 2.4).

The result is a :class:`ShoalModel` — everything the serving layer and
the evaluation harness need, plus stage timings for the benches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.clustering.parallel_hac import ParallelHAC, ParallelHACResult
from repro.core.config import ShoalConfig
from repro.core.correlation import CategoryCorrelationMiner, CorrelationGraph
from repro.core.descriptions import QueryScore, TopicDescriber
from repro.core.taxonomy import Taxonomy
from repro.data.marketplace import Marketplace
from repro.data.queries import QueryLog
from repro.graph.bipartite import QueryItemGraph, build_query_item_graph
from repro.graph.entity_graph import EntityGraphBuilder
from repro.graph.sparse import SparseGraph
from repro.text.tokenizer import Tokenizer
from repro.text.word2vec import Word2Vec, WordEmbeddings

__all__ = ["ShoalModel", "ShoalPipeline"]


@dataclass
class ShoalModel:
    """All artifacts of one SHOAL run."""

    config: ShoalConfig
    bipartite: QueryItemGraph
    embeddings: WordEmbeddings
    entity_graph: SparseGraph
    clustering: ParallelHACResult
    taxonomy: Taxonomy
    descriptions: Dict[int, List[QueryScore]]
    correlations: CorrelationGraph
    titles: Dict[int, str]
    query_texts: Dict[int, str]
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"ShoalModel(entities={self.entity_graph.n_vertices}, "
            f"edges={self.entity_graph.n_edges}, "
            f"topics={len(self.taxonomy)}, "
            f"roots={len(self.taxonomy.root_topics())}, "
            f"correlated_pairs={self.correlations.n_correlations}, "
            f"rounds={self.clustering.n_rounds})"
        )

    # -- persistence --------------------------------------------------------

    def save(
        self,
        directory: Union[str, Path],
        *,
        entity_categories: Optional[Dict[int, int]] = None,
        metadata: Optional[Dict] = None,
    ) -> Path:
        """Write a versioned snapshot of every artifact to ``directory``.

        The snapshot is what a serving fleet warm-starts from (see
        :mod:`repro.store.persistence.snapshot` for the on-disk
        format); ``entity_categories`` optionally persists the
        authoritative entity → category map alongside the model, and
        ``metadata`` is a JSON-safe dict recorded in the manifest.
        """
        # Imported lazily: the store layer depends on this module.
        from repro.store.persistence import save_model

        return save_model(
            self,
            directory,
            entity_categories=entity_categories,
            metadata=metadata,
        )

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "ShoalModel":
        """Reconstruct a model from a snapshot written by :meth:`save`."""
        from repro.store.persistence import load_model

        return load_model(directory)


class ShoalPipeline:
    """Builds a :class:`ShoalModel` from a marketplace or raw inputs."""

    def __init__(self, config: ShoalConfig = ShoalConfig()):
        self._config = config
        self._tokenizer = Tokenizer()

    @property
    def config(self) -> ShoalConfig:
        return self._config

    # -- entry points ----------------------------------------------------------

    def fit(self, marketplace: Marketplace) -> ShoalModel:
        """Run the full pipeline on a synthetic marketplace."""
        titles = {e.entity_id: e.title for e in marketplace.catalog.entities}
        query_texts = {q.query_id: q.text for q in marketplace.query_log.queries}
        entity_categories = {
            e.entity_id: e.category_id for e in marketplace.catalog.entities
        }
        days = marketplace.query_log.days()
        if not days:
            raise ValueError(
                "cannot fit on an empty query log: it contains no events, "
                "so there is no window to build the bipartite graph from"
            )
        last_day = days[-1]
        first_day = max(0, last_day - self._config.window_days + 1)
        return self.fit_raw(
            marketplace.query_log,
            titles,
            query_texts,
            entity_categories=entity_categories,
            corpus=marketplace.corpus(),
            first_day=first_day,
            last_day=last_day,
        )

    def fit_raw(
        self,
        query_log: QueryLog,
        titles: Dict[int, str],
        query_texts: Dict[int, str],
        entity_categories: Optional[Dict[int, int]] = None,
        corpus: Optional[List[str]] = None,
        first_day: Optional[int] = None,
        last_day: Optional[int] = None,
    ) -> ShoalModel:
        """Run the pipeline on raw inputs.

        ``entity_categories`` maps entity id → ontology category; when
        omitted, topics have no category links (the correlation graph
        will be empty, everything else works).
        """
        cfg = self._config
        timings: Dict[str, float] = {}

        t0 = time.perf_counter()
        bipartite = build_query_item_graph(
            query_log, first_day, last_day, cfg.min_clicks
        )
        timings["bipartite"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        corpus_texts = corpus if corpus is not None else (
            list(titles.values()) + list(query_texts.values())
        )
        token_docs = self._tokenizer.tokenize_all(corpus_texts)
        embeddings = Word2Vec(cfg.word2vec).fit(token_docs)
        timings["word2vec"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        builder = EntityGraphBuilder(embeddings, self._tokenizer, cfg.entity_graph)
        entity_graph = builder.build(bipartite, titles)
        timings["entity_graph"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        clustering = ParallelHAC(cfg.clustering).fit(entity_graph)
        timings["clustering"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        taxonomy = Taxonomy.from_dendrogram(
            clustering.dendrogram,
            entity_categories or {},
            min_topic_size=cfg.min_topic_size,
        )
        timings["taxonomy"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        describer = TopicDescriber(self._tokenizer, cfg.descriptions)
        descriptions = describer.describe(taxonomy, bipartite, titles, query_texts)
        timings["descriptions"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        correlations = CategoryCorrelationMiner(cfg.correlation).mine(taxonomy)
        timings["correlation"] = time.perf_counter() - t0

        return ShoalModel(
            config=cfg,
            bipartite=bipartite,
            embeddings=embeddings,
            entity_graph=entity_graph,
            clustering=clustering,
            taxonomy=taxonomy,
            descriptions=descriptions,
            correlations=correlations,
            titles=titles,
            query_texts=query_texts,
            stage_seconds=timings,
        )
