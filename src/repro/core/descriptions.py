"""Topic description matching (paper Sec. 2.3).

Each topic is tagged with the queries that best represent it. The
representativeness of query ``q`` for topic ``t_k`` combines two
factors (adapted from TaxoGen [6] as the paper notes):

* **popularity** — how often ``q`` was issued against items of the
  topic, frequency-normalised::

      pop(q, t_k) = (log tf(q, I_k) + 1) / log tf(I_k)

  where ``tf(q, I_k)`` counts occurrences of ``q`` with the topic's
  items and ``tf(I_k)`` is the total token count of the topic;

* **concentration** — how much more relevant ``q`` is to this topic's
  pseudo-document than to other topics', via a softmax over BM25::

      con(q, t_k) = exp(rel(q, D_k)) / (1 + Σ_j exp(rel(q, D_j)))

  where ``D_k`` concatenates all titles of the topic's items.

The final score is the geometric mean ``r = sqrt(pop · con)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._util import check_positive, safe_log
from repro.core.taxonomy import Taxonomy, Topic
from repro.graph.bipartite import QueryItemGraph
from repro.text.bm25 import BM25, BM25Config
from repro.text.tokenizer import Tokenizer

__all__ = ["DescriptionConfig", "QueryScore", "TopicDescriber"]


@dataclass(frozen=True)
class DescriptionConfig:
    """Description-matching parameters.

    ``top_k`` representative queries are attached per topic.
    ``softmax_scale`` divides BM25 scores before exponentiation to
    avoid overflow on long pseudo-documents (a pure numerical guard —
    ranking is unchanged because the scale is shared across topics).
    """

    top_k: int = 3
    bm25: BM25Config = BM25Config()
    softmax_scale: float = 10.0

    def __post_init__(self) -> None:
        check_positive("top_k", self.top_k)
        check_positive("softmax_scale", self.softmax_scale)


@dataclass(frozen=True)
class QueryScore:
    """Scored candidate description for a topic."""

    query_id: int
    text: str
    popularity: float
    concentration: float

    @property
    def representativeness(self) -> float:
        """Paper: r(q, t_k) = sqrt(pop · con)."""
        return math.sqrt(max(0.0, self.popularity) * max(0.0, self.concentration))


class TopicDescriber:
    """Scores and attaches representative queries to taxonomy topics."""

    def __init__(
        self,
        tokenizer: Optional[Tokenizer] = None,
        config: DescriptionConfig = DescriptionConfig(),
    ):
        self._tokenizer = tokenizer or Tokenizer()
        self._config = config

    @property
    def config(self) -> DescriptionConfig:
        return self._config

    # -- main entry -----------------------------------------------------------

    def describe(
        self,
        taxonomy: Taxonomy,
        bipartite: QueryItemGraph,
        titles: Dict[int, str],
        query_texts: Dict[int, str],
    ) -> Dict[int, List[QueryScore]]:
        """Score candidate queries for every topic; mutates topics'
        ``descriptions`` with the top-k texts and returns all scores.

        ``titles`` maps entity id → title; ``query_texts`` maps query
        id → query string.
        """
        topics = taxonomy.topics()
        if not topics:
            return {}
        pseudo_docs = [self._pseudo_document(t, titles) for t in topics]
        bm25 = BM25(pseudo_docs, self._config.bm25)
        topic_token_totals = [len(d) for d in pseudo_docs]

        result: Dict[int, List[QueryScore]] = {}
        for idx, topic in enumerate(topics):
            scores = self._score_topic(
                topic, idx, bipartite, query_texts, bm25, topic_token_totals[idx]
            )
            scores.sort(key=lambda s: (-s.representativeness, s.query_id))
            result[topic.topic_id] = scores
            topic.descriptions = [
                s.text for s in scores[: self._config.top_k]
            ]
        return result

    # -- pieces ------------------------------------------------------------------

    def _pseudo_document(self, topic: Topic, titles: Dict[int, str]) -> List[str]:
        """D_k: concatenated tokenised titles of the topic's entities."""
        tokens: List[str] = []
        for e in topic.entity_ids:
            tokens.extend(self._tokenizer.tokenize(titles.get(e, "")))
        return tokens

    def _candidate_queries(
        self, topic: Topic, bipartite: QueryItemGraph
    ) -> Dict[int, int]:
        """query id → tf(q, I_k): total clicks of q on the topic's items."""
        counts: Dict[int, int] = {}
        for e in topic.entity_ids:
            for q, c in bipartite.query_clicks_of_entity(e).items():
                counts[q] = counts.get(q, 0) + c
        return counts

    def popularity(self, tf_q: int, topic_tokens: int) -> float:
        """pop(q, t_k) = (log tf(q, I_k) + 1) / log tf(I_k)."""
        if tf_q <= 0:
            return 0.0
        denom = safe_log(topic_tokens)
        if denom <= 0.0:
            return 0.0
        return (safe_log(tf_q) + 1.0) / denom

    def concentration(
        self, bm25: BM25, query_tokens: Sequence[str], topic_index: int
    ) -> float:
        """Softmax of BM25 relevance across topic pseudo-documents."""
        rels = bm25.scores(query_tokens) / self._config.softmax_scale
        # The paper's denominator carries a +1; reproduce it in the
        # shifted domain (the shift cancels in ranking but we keep the
        # formula close to the paper by working with raw scores when safe).
        raw = np.exp(np.clip(rels, None, 700.0))
        denom = 1.0 + float(raw.sum())
        return float(raw[topic_index]) / denom

    def _score_topic(
        self,
        topic: Topic,
        topic_index: int,
        bipartite: QueryItemGraph,
        query_texts: Dict[int, str],
        bm25: BM25,
        topic_tokens: int,
    ) -> List[QueryScore]:
        out: List[QueryScore] = []
        for q, tf_q in self._candidate_queries(topic, bipartite).items():
            text = query_texts.get(q)
            if text is None:
                continue
            pop = self.popularity(tf_q, topic_tokens)
            con = self.concentration(
                bm25, self._tokenizer.tokenize(text), topic_index
            )
            out.append(QueryScore(q, text, pop, con))
        return out
