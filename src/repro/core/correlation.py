"""Category correlation mining (paper Sec. 2.4, Eq. 5).

Root topics act as pivots linking ontology categories: two categories
C_i and C_j are correlated with strength equal to the number of root
topics whose category sets contain both::

    Sc(C_i, C_j) = Σ_{t_k ∈ T} [C_i ∈ C_k and C_j ∈ C_k]

A correlation exists only above a threshold (paper: 10 on the
production corpus; configurable here because synthetic corpora have far
fewer root topics). The resulting category-correlation graph powers the
"related categories" recommendation (demo scenario D).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro._util import check_positive
from repro.core.taxonomy import Taxonomy

__all__ = ["CategoryCorrelationConfig", "CorrelationGraph", "CategoryCorrelationMiner"]


@dataclass(frozen=True)
class CategoryCorrelationConfig:
    """Correlation mining parameters.

    ``min_strength`` is the Eq. 5 threshold: the paper uses
    ``Sc > 10`` on a taxonomy with vastly more root topics than our
    synthetic worlds produce, so the default here is proportionally
    lower; bench E7 sweeps it.
    """

    min_strength: int = 2

    def __post_init__(self) -> None:
        check_positive("min_strength", self.min_strength)


class CorrelationGraph:
    """Symmetric category–category co-occurrence counts above threshold."""

    def __init__(self, strengths: Dict[Tuple[int, int], int], min_strength: int):
        self._adj: Dict[int, Dict[int, int]] = {}
        self._min_strength = min_strength
        for (a, b), s in strengths.items():
            if a == b:
                continue
            if s >= min_strength:
                self._adj.setdefault(a, {})[b] = s
                self._adj.setdefault(b, {})[a] = s

    @property
    def min_strength(self) -> int:
        return self._min_strength

    @property
    def n_categories(self) -> int:
        return len(self._adj)

    @property
    def n_correlations(self) -> int:
        return sum(len(v) for v in self._adj.values()) // 2

    def categories(self) -> List[int]:
        return sorted(self._adj)

    def strength(self, a: int, b: int) -> int:
        """Co-occurrence count of (a, b); 0 if below threshold/absent."""
        return self._adj.get(a, {}).get(b, 0)

    def correlated(self, a: int, b: int) -> bool:
        return self.strength(a, b) > 0

    def related_categories(self, category_id: int, k: Optional[int] = None) -> List[Tuple[int, int]]:
        """(category, strength) pairs sorted by descending strength.

        This is the paper's category recommendation primitive (demo D).
        """
        nbrs = self._adj.get(category_id, {})
        ordered = sorted(nbrs.items(), key=lambda cs: (-cs[1], cs[0]))
        return ordered if k is None else ordered[:k]

    def pairs(self) -> List[Tuple[int, int, int]]:
        """All correlated (a, b, strength) with a < b, sorted."""
        out = []
        for a in sorted(self._adj):
            for b, s in sorted(self._adj[a].items()):
                if a < b:
                    out.append((a, b, s))
        return out


class CategoryCorrelationMiner:
    """Computes Eq. 5 over the root topics of a taxonomy."""

    def __init__(self, config: CategoryCorrelationConfig = CategoryCorrelationConfig()):
        self._config = config

    @property
    def config(self) -> CategoryCorrelationConfig:
        return self._config

    def raw_strengths(self, taxonomy: Taxonomy) -> Dict[Tuple[int, int], int]:
        """Unthresholded co-occurrence counts over root topics."""
        strengths: Dict[Tuple[int, int], int] = {}
        for topic in taxonomy.root_topics():
            for a, b in combinations(sorted(set(topic.category_ids)), 2):
                strengths[(a, b)] = strengths.get((a, b), 0) + 1
        return strengths

    def mine(self, taxonomy: Taxonomy) -> CorrelationGraph:
        """Build the thresholded correlation graph."""
        return CorrelationGraph(
            self.raw_strengths(taxonomy), self._config.min_strength
        )
