"""Corpus vocabulary with min-count filtering and subsampling tables.

Shared by the word2vec trainer and BM25 scorer: maps tokens to dense
ids, tracks frequencies, and precomputes the unigram^0.75 negative-
sampling distribution and frequency-downsampling keep-probabilities
from the original word2vec paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro._util import check_positive

__all__ = ["VocabularyBuildConfig", "Vocabulary", "build_vocabulary"]


@dataclass(frozen=True)
class VocabularyBuildConfig:
    """Vocabulary construction parameters."""

    min_count: int = 1
    subsample_threshold: float = 1e-3
    negative_sampling_power: float = 0.75

    def __post_init__(self) -> None:
        check_positive("min_count", self.min_count)
        check_positive("subsample_threshold", self.subsample_threshold)
        check_positive("negative_sampling_power", self.negative_sampling_power, allow_zero=True)


class Vocabulary:
    """Token ↔ dense-id mapping with frequency statistics."""

    def __init__(
        self,
        words: List[str],
        counts: np.ndarray,
        config: VocabularyBuildConfig,
    ):
        if len(words) != len(counts):
            raise ValueError("words and counts must align")
        self._words = list(words)
        self._counts = np.asarray(counts, dtype=np.int64)
        self._index: Dict[str, int] = {w: i for i, w in enumerate(self._words)}
        if len(self._index) != len(self._words):
            raise ValueError("duplicate words in vocabulary")
        self._config = config
        total = float(self._counts.sum())
        freq = self._counts / total if total > 0 else np.zeros_like(self._counts, dtype=float)
        # Mikolov et al. subsampling: keep probability per word.
        t = config.subsample_threshold
        with np.errstate(divide="ignore", invalid="ignore"):
            keep = np.sqrt(t / np.maximum(freq, 1e-12)) + t / np.maximum(freq, 1e-12)
        self._keep_prob = np.minimum(keep, 1.0)
        # Unigram^power negative sampling distribution.
        ns = self._counts.astype(float) ** config.negative_sampling_power
        ns_sum = ns.sum()
        self._neg_dist = ns / ns_sum if ns_sum > 0 else ns

    # -- basic mapping -----------------------------------------------------

    @property
    def config(self) -> VocabularyBuildConfig:
        """The build parameters (needed to persist/rebuild the tables)."""
        return self._config

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: str) -> bool:
        return word in self._index

    def id_of(self, word: str) -> int:
        """Dense id of ``word`` (KeyError if out of vocabulary)."""
        return self._index[word]

    def get(self, word: str, default: int = -1) -> int:
        return self._index.get(word, default)

    def word_of(self, word_id: int) -> str:
        return self._words[word_id]

    @property
    def words(self) -> List[str]:
        return list(self._words)

    def count_of(self, word: str) -> int:
        return int(self._counts[self._index[word]])

    @property
    def counts(self) -> np.ndarray:
        return self._counts.copy()

    @property
    def total_tokens(self) -> int:
        return int(self._counts.sum())

    # -- training tables -----------------------------------------------------

    @property
    def keep_probabilities(self) -> np.ndarray:
        """Per-word subsampling keep probability (1.0 = always keep)."""
        return self._keep_prob.copy()

    @property
    def negative_sampling_distribution(self) -> np.ndarray:
        """Unigram^0.75 distribution for drawing negative samples."""
        return self._neg_dist.copy()

    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Map tokens to ids, silently dropping out-of-vocabulary ones."""
        idx = self._index
        return [idx[t] for t in tokens if t in idx]

    def encode_corpus(self, token_docs: Iterable[Sequence[str]]) -> List[List[int]]:
        return [self.encode(doc) for doc in token_docs]


def build_vocabulary(
    token_docs: Iterable[Sequence[str]],
    config: VocabularyBuildConfig = VocabularyBuildConfig(),
) -> Vocabulary:
    """Count tokens over a tokenised corpus and build the vocabulary.

    Words with frequency below ``min_count`` are dropped. Word ids are
    assigned by descending frequency (ties broken alphabetically) so
    id 0 is always the most frequent token — convenient for debugging.
    """
    raw: Dict[str, int] = {}
    for doc in token_docs:
        for tok in doc:
            raw[tok] = raw.get(tok, 0) + 1
    kept = [(w, c) for w, c in raw.items() if c >= config.min_count]
    kept.sort(key=lambda wc: (-wc[1], wc[0]))
    words = [w for w, _ in kept]
    counts = np.array([c for _, c in kept], dtype=np.int64)
    return Vocabulary(words, counts, config)
