"""Skip-gram word2vec with negative sampling, pure numpy.

Paper Sec. 2.1 obtains "a set of word vectors using the word2vec
technique". No embedding library is available offline, so we implement
SGNS directly: for each (center, context) pair within a window, update
input vectors W and output vectors C by SGD on the negative-sampling
objective. Mini-batched numpy updates keep training fast enough for the
bench corpora (tens of thousands of tokens).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro._util import check_positive, ensure_rng, normalize_rows
from repro.text.vocab import Vocabulary

__all__ = ["Word2VecConfig", "WordEmbeddings", "Word2Vec"]


@dataclass(frozen=True)
class Word2VecConfig:
    """SGNS hyper-parameters (defaults tuned for the synthetic corpus)."""

    dim: int = 32
    window: int = 4
    negatives: int = 5
    epochs: int = 12
    learning_rate: float = 0.1
    min_learning_rate: float = 0.01
    batch_size: int = 256
    subsample: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("dim", self.dim)
        check_positive("window", self.window)
        check_positive("negatives", self.negatives)
        check_positive("epochs", self.epochs)
        check_positive("learning_rate", self.learning_rate)
        check_positive("min_learning_rate", self.min_learning_rate)
        check_positive("batch_size", self.batch_size)
        if self.min_learning_rate > self.learning_rate:
            raise ValueError("min_learning_rate must be <= learning_rate")


class WordEmbeddings:
    """Trained word vectors with lookup helpers.

    Wraps the input-embedding matrix of a trained SGNS model; rows are
    L2-normalisable on demand. Unknown words map to a zero vector so
    downstream similarity degrades gracefully instead of raising.
    """

    def __init__(self, vocabulary: Vocabulary, matrix: np.ndarray):
        if matrix.shape[0] != len(vocabulary):
            raise ValueError("embedding matrix and vocabulary size mismatch")
        self._vocab = vocabulary
        self._matrix = np.asarray(matrix, dtype=np.float64)
        self._unit = normalize_rows(self._matrix)

    @property
    def dim(self) -> int:
        return self._matrix.shape[1]

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocab

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def __contains__(self, word: str) -> bool:
        return word in self._vocab

    def vector(self, word: str) -> np.ndarray:
        """Raw vector of ``word``; zeros if out of vocabulary."""
        idx = self._vocab.get(word)
        if idx < 0:
            return np.zeros(self.dim)
        return self._matrix[idx].copy()

    def unit_vector(self, word: str) -> np.ndarray:
        """L2-normalised vector of ``word``; zeros if out of vocabulary."""
        idx = self._vocab.get(word)
        if idx < 0:
            return np.zeros(self.dim)
        return self._unit[idx].copy()

    def vectors(self, words: Sequence[str]) -> np.ndarray:
        """Stack raw vectors for known words only (may return 0 rows)."""
        ids = [self._vocab.get(w) for w in words]
        ids = [i for i in ids if i >= 0]
        if not ids:
            return np.zeros((0, self.dim))
        return self._matrix[ids].copy()

    def unit_vectors(self, words: Sequence[str]) -> np.ndarray:
        ids = [self._vocab.get(w) for w in words]
        ids = [i for i in ids if i >= 0]
        if not ids:
            return np.zeros((0, self.dim))
        return self._unit[ids].copy()

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two words (0.0 if either unknown)."""
        va, vb = self.unit_vector(a), self.unit_vector(b)
        return float(np.dot(va, vb))

    def most_similar(self, word: str, k: int = 10) -> List[tuple]:
        """Top-``k`` (word, cosine) neighbours, excluding the word itself."""
        idx = self._vocab.get(word)
        if idx < 0:
            return []
        sims = self._unit @ self._unit[idx]
        order = np.argsort(sims)[::-1]
        out = []
        for j in order:
            if int(j) == idx:
                continue
            out.append((self._vocab.word_of(int(j)), float(sims[j])))
            if len(out) >= k:
                break
        return out


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class Word2Vec:
    """Skip-gram negative-sampling trainer.

    Typical use::

        model = Word2Vec(Word2VecConfig(dim=32))
        embeddings = model.fit(token_docs)
    """

    def __init__(self, config: Word2VecConfig = Word2VecConfig()):
        self._config = config

    @property
    def config(self) -> Word2VecConfig:
        return self._config

    # -- training ----------------------------------------------------------

    def fit(
        self,
        token_docs: Sequence[Sequence[str]],
        vocabulary: Optional[Vocabulary] = None,
    ) -> WordEmbeddings:
        """Train on a tokenised corpus and return the embeddings."""
        from repro.text.vocab import build_vocabulary

        cfg = self._config
        rng = ensure_rng(cfg.seed)
        vocab = vocabulary or build_vocabulary(token_docs)
        if len(vocab) == 0:
            raise ValueError("empty vocabulary: corpus has no in-vocab tokens")
        encoded = vocab.encode_corpus(token_docs)

        n = len(vocab)
        # Standard init: input vectors uniform, output vectors zero.
        w_in = (rng.random((n, cfg.dim)) - 0.5) / cfg.dim
        w_out = np.zeros((n, cfg.dim))
        neg_dist = vocab.negative_sampling_distribution
        keep = vocab.keep_probabilities

        pairs = self._generate_pairs(encoded, keep, rng)
        if len(pairs) == 0:
            return WordEmbeddings(vocab, w_in)

        total_steps = cfg.epochs * ((len(pairs) + cfg.batch_size - 1) // cfg.batch_size)
        step = 0
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(pairs))
            shuffled = pairs[order]
            for start in range(0, len(shuffled), cfg.batch_size):
                batch = shuffled[start : start + cfg.batch_size]
                lr = cfg.learning_rate + (cfg.min_learning_rate - cfg.learning_rate) * (
                    step / max(1, total_steps - 1)
                )
                self._sgd_batch(batch, w_in, w_out, neg_dist, lr, rng)
                step += 1
        return WordEmbeddings(vocab, w_in)

    def _generate_pairs(
        self,
        encoded: List[List[int]],
        keep_prob: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Materialise (center, context) pairs with dynamic windows."""
        cfg = self._config
        pairs: List[tuple] = []
        for doc in encoded:
            if cfg.subsample and len(doc) > 1:
                mask = rng.random(len(doc)) < keep_prob[doc]
                doc = [w for w, m in zip(doc, mask) if m]
            L = len(doc)
            if L < 2:
                continue
            # Dynamic window size as in the reference implementation.
            windows = rng.integers(1, cfg.window + 1, size=L)
            for i, center in enumerate(doc):
                b = int(windows[i])
                lo, hi = max(0, i - b), min(L, i + b + 1)
                for j in range(lo, hi):
                    if j != i:
                        pairs.append((center, doc[j]))
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(pairs, dtype=np.int64)

    def _sgd_batch(
        self,
        batch: np.ndarray,
        w_in: np.ndarray,
        w_out: np.ndarray,
        neg_dist: np.ndarray,
        lr: float,
        rng: np.random.Generator,
    ) -> None:
        """One mini-batch SGNS update (vectorised over the batch).

        Gradients are accumulated with ``np.add.at`` so repeated word
        ids within a batch sum correctly instead of overwriting.
        """
        cfg = self._config
        centers = batch[:, 0]
        contexts = batch[:, 1]
        B = len(batch)
        negatives = rng.choice(len(neg_dist), size=(B, cfg.negatives), p=neg_dist)

        v_c = w_in[centers]                       # (B, d)
        u_pos = w_out[contexts]                   # (B, d)
        u_neg = w_out[negatives]                  # (B, k, d)

        # Positive term: maximize log sigmoid(u_pos . v_c)
        score_pos = _sigmoid(np.einsum("bd,bd->b", v_c, u_pos))  # (B,)
        g_pos = (score_pos - 1.0)[:, None]                        # (B, 1)

        # Negative term: maximize log sigmoid(-u_neg . v_c)
        score_neg = _sigmoid(np.einsum("bkd,bd->bk", u_neg, v_c))  # (B, k)
        g_neg = score_neg[:, :, None]                               # (B, k, 1)

        grad_v = g_pos * u_pos + np.einsum("bkd,bk->bd", u_neg, score_neg)
        grad_u_pos = g_pos * v_c
        grad_u_neg = g_neg * v_c[:, None, :]

        np.add.at(w_in, centers, -lr * grad_v)
        np.add.at(w_out, contexts, -lr * grad_u_pos)
        np.add.at(
            w_out,
            negatives.reshape(-1),
            -lr * grad_u_neg.reshape(-1, cfg.dim),
        )
