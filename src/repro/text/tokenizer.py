"""Title/query segmentation.

Paper Sec. 2.1: "We segment the title/s of an item entity into words".
Production Chinese segmentation is replaced by a deterministic
rule-based tokenizer adequate for the synthetic corpus (and for any
whitespace language): lowercasing, punctuation stripping, optional
stop-word removal, and length filtering.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List

__all__ = ["TokenizerConfig", "Tokenizer"]

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:-[a-z0-9]+)*")

#: Minimal english stop list; the synthetic vocabulary never collides
#: with these, but real-text users of the library benefit.
_DEFAULT_STOPWORDS = frozenset(
    """a an and are as at be by for from has in is it of on or that the to
    with new hot sale free""".split()
)


@dataclass(frozen=True)
class TokenizerConfig:
    """Tokenizer behaviour switches."""

    lowercase: bool = True
    min_token_length: int = 1
    max_token_length: int = 40
    remove_stopwords: bool = False
    stopwords: FrozenSet[str] = _DEFAULT_STOPWORDS

    def __post_init__(self) -> None:
        if self.min_token_length < 1:
            raise ValueError("min_token_length must be >= 1")
        if self.max_token_length < self.min_token_length:
            raise ValueError("max_token_length must be >= min_token_length")


class Tokenizer:
    """Deterministic rule-based tokenizer.

    >>> Tokenizer().tokenize("Beach  Dress, SALE!")
    ['beach', 'dress', 'sale']
    """

    def __init__(self, config: TokenizerConfig = TokenizerConfig()):
        self._config = config

    @property
    def config(self) -> TokenizerConfig:
        return self._config

    def tokenize(self, text: str) -> List[str]:
        """Segment ``text`` into normalised tokens."""
        if not text:
            return []
        c = self._config
        normalized = text.lower() if c.lowercase else text
        tokens = _TOKEN_RE.findall(normalized.lower())
        out = []
        for tok in tokens:
            if not c.min_token_length <= len(tok) <= c.max_token_length:
                continue
            if c.remove_stopwords and tok in c.stopwords:
                continue
            out.append(tok)
        return out

    def tokenize_all(self, texts: Iterable[str]) -> List[List[str]]:
        """Tokenize a corpus; preserves document order."""
        return [self.tokenize(t) for t in texts]

    def __call__(self, text: str) -> List[str]:
        return self.tokenize(text)
