"""Text/NLP substrate.

Implements from scratch the pieces of NLP machinery the paper relies
on: title segmentation (tokenisation), a corpus vocabulary with
min-count filtering and frequency downsampling, skip-gram word2vec with
negative sampling (pure numpy — no gensim in this environment), a BM25
scorer for the concentration score of paper Sec. 2.3, and embedding
similarity helpers implementing the shifted-cosine kernel of Eq. 2.
"""

from repro.text.tokenizer import Tokenizer, TokenizerConfig
from repro.text.vocab import Vocabulary, VocabularyBuildConfig, build_vocabulary
from repro.text.word2vec import Word2Vec, Word2VecConfig, WordEmbeddings
from repro.text.bm25 import BM25, BM25Config
from repro.text.similarity import (
    mean_pairwise_shifted_cosine,
    shifted_cosine,
    entity_embedding,
)

__all__ = [
    "Tokenizer",
    "TokenizerConfig",
    "Vocabulary",
    "VocabularyBuildConfig",
    "build_vocabulary",
    "Word2Vec",
    "Word2VecConfig",
    "WordEmbeddings",
    "BM25",
    "BM25Config",
    "shifted_cosine",
    "mean_pairwise_shifted_cosine",
    "entity_embedding",
]
