"""BM25 (Okapi) relevance scorer.

Paper Sec. 2.3 defines the concentration of a query for a topic via
``rel(q, D_k)``, "the BM25 relevance of query q to D_k", where ``D_k``
is the pseudo-document made by concatenating every item title in topic
``t_k``. This module provides a standard, from-scratch Okapi BM25 over
tokenised documents.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro._util import check_positive

__all__ = ["BM25Config", "BM25", "CollectionStats"]


@dataclass(frozen=True)
class BM25Config:
    """Okapi BM25 parameters (classic defaults)."""

    k1: float = 1.5
    b: float = 0.75

    def __post_init__(self) -> None:
        check_positive("k1", self.k1)
        if not 0.0 <= self.b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {self.b!r}")


@dataclass(frozen=True)
class CollectionStats:
    """Corpus-level BM25 statistics, detachable from any single index.

    Every score a BM25 index produces depends on three collection-wide
    quantities: the document count ``n_documents`` (for IDF), the
    per-token document frequencies (for IDF), and the average document
    length (for length normalisation). A *partition* of a collection —
    e.g. one shard of a sharded serving cluster — must score its local
    documents against the statistics of the **whole** collection, or
    its scores drift from the unsharded index and merged top-k lists
    stop being answer-transparent. This dataclass carries exactly those
    statistics so they can be exported from a full index, persisted as
    JSON, and injected into per-shard indexes.
    """

    n_documents: int
    average_document_length: float
    document_frequencies: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_documents(
        cls, documents: Sequence[Sequence[str]]
    ) -> "CollectionStats":
        """Compute collection statistics exactly as :class:`BM25` does."""
        df: Dict[str, int] = {}
        lengths: List[int] = []
        for doc in documents:
            lengths.append(len(doc))
            for tok in set(doc):
                df[tok] = df.get(tok, 0) + 1
        n = len(lengths)
        return cls(
            n_documents=n,
            average_document_length=(sum(lengths) / n) if n else 0.0,
            document_frequencies=df,
        )

    def idf(self) -> Dict[str, float]:
        """Smoothed IDF table derived from these statistics."""
        n = self.n_documents
        return {
            tok: math.log(1.0 + (n - d + 0.5) / (d + 0.5))
            for tok, d in self.document_frequencies.items()
        }


class BM25:
    """Okapi BM25 index over a fixed collection of tokenised documents.

    IDF uses the standard smoothed formulation
    ``log(1 + (N - df + 0.5) / (df + 0.5))`` which is always positive,
    avoiding the negative-IDF pathology for very common terms.

    ``collection_stats`` optionally scores the local documents against
    the statistics of a larger collection this index is a partition of
    (see :class:`CollectionStats`); postings and term frequencies stay
    local, only IDF and the length norm come from the global numbers.
    """

    def __init__(
        self,
        documents: Sequence[Sequence[str]],
        config: BM25Config = BM25Config(),
        *,
        collection_stats: Optional[CollectionStats] = None,
    ):
        self._config = config
        self._doc_freqs: List[Dict[str, int]] = []
        self._doc_lengths: List[int] = []
        self._postings: Dict[str, List[int]] = {}
        df: Dict[str, int] = {}
        for doc_index, doc in enumerate(documents):
            tf: Dict[str, int] = {}
            for tok in doc:
                tf[tok] = tf.get(tok, 0) + 1
            self._doc_freqs.append(tf)
            self._doc_lengths.append(len(doc))
            for tok in tf:
                df[tok] = df.get(tok, 0) + 1
                self._postings.setdefault(tok, []).append(doc_index)
        n = len(self._doc_freqs)
        if collection_stats is None:
            collection_stats = CollectionStats(
                n_documents=n,
                average_document_length=(
                    (sum(self._doc_lengths) / n) if n else 0.0
                ),
                document_frequencies=df,
            )
        self._bind_collection_stats(collection_stats)

    def _bind_collection_stats(self, stats: CollectionStats) -> None:
        # Local document count stays local (bounds checks, scores());
        # the global count only enters through the IDF table.
        self._stats = stats
        self._n_docs = len(self._doc_freqs)
        self._avg_len = stats.average_document_length
        self._idf: Dict[str, float] = stats.idf()

    def rebind_collection_stats(self, stats: CollectionStats) -> None:
        """Swap in new collection statistics without re-tokenising.

        Used when a sibling partition of the collection changed: this
        index's documents (and therefore postings and term frequencies)
        are untouched, but IDF and the length norm must follow the
        collection. Any cached scores computed against the old
        statistics are stale after this call.
        """
        self._bind_collection_stats(stats)

    # -- accessors ----------------------------------------------------------

    @property
    def n_documents(self) -> int:
        return self._n_docs

    @property
    def average_document_length(self) -> float:
        return self._avg_len

    @property
    def collection_stats(self) -> CollectionStats:
        """The collection statistics this index scores against."""
        return self._stats

    def indexed_tokens(self) -> FrozenSet[str]:
        """Tokens with a non-empty local posting list.

        A query sharing no token with this set scores zero against
        every local document, so a router may skip this index entirely.
        """
        return frozenset(self._postings)

    def idf(self, token: str) -> float:
        """Smoothed IDF of a token (0.0 for unseen tokens)."""
        return self._idf.get(token, 0.0)

    def candidates(self, query_tokens: Sequence[str]) -> List[int]:
        """Documents containing at least one query token, ascending.

        Every document with a non-zero BM25 score for the query is in
        this list, so scoring only candidates is exact top-k pruning,
        not an approximation.
        """
        seen: set = set()
        for tok in query_tokens:
            seen.update(self._postings.get(tok, ()))
        return sorted(seen)

    # -- scoring --------------------------------------------------------------

    def score(self, query_tokens: Sequence[str], doc_index: int) -> float:
        """BM25 relevance of the query to document ``doc_index``."""
        if not 0 <= doc_index < self._n_docs:
            raise IndexError(f"doc_index {doc_index} out of range")
        if self._avg_len == 0:
            return 0.0
        cfg = self._config
        tf = self._doc_freqs[doc_index]
        dl = self._doc_lengths[doc_index]
        norm = cfg.k1 * (1.0 - cfg.b + cfg.b * dl / self._avg_len)
        total = 0.0
        for tok in query_tokens:
            f = tf.get(tok, 0)
            if f == 0:
                continue
            total += self._idf.get(tok, 0.0) * (f * (cfg.k1 + 1.0)) / (f + norm)
        return total

    def scores(self, query_tokens: Sequence[str]) -> np.ndarray:
        """BM25 relevance of the query to every document."""
        return np.array(
            [self.score(query_tokens, i) for i in range(self._n_docs)], dtype=float
        )

    def top_k(self, query_tokens: Sequence[str], k: int = 10) -> List[tuple]:
        """Top-``k`` (doc_index, score) pairs by descending relevance.

        Scores only the posting-list candidates instead of the full
        collection; ties break toward the lower document index.
        """
        if k <= 0:
            return []
        scored = [
            (self.score(query_tokens, i), i)
            for i in self.candidates(query_tokens)
        ]
        top = heapq.nlargest(k, scored, key=lambda si: (si[0], -si[1]))
        return [(i, s) for s, i in top if s > 0.0]
