"""Embedding similarity kernels (paper Eq. 2).

Content-driven similarity between two item entities u, v is the mean
pairwise *shifted cosine* over their title word vectors::

    Sc(u, v) = (1 / (|Vu|·|Vv|)) · Σ_{w1∈Vu} Σ_{w2∈Vv} (1/2 + cos(w1,w2)/2)

The shift maps cosine from [-1, 1] to [0, 1] so that Sc composes with
the Jaccard term in Eq. 3 on a common scale. The double sum factorises:
with unit-normalised vectors, mean pairwise cosine equals the dot
product of the *mean* unit vectors, so Sc is computed in O(|Vu|+|Vv|)
time — important because the entity-graph builder calls it O(E) times.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.text.word2vec import WordEmbeddings

__all__ = ["shifted_cosine", "mean_pairwise_shifted_cosine", "entity_embedding"]


def shifted_cosine(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> float:
    """``1/2 + cos(a, b)/2`` in [0, 1]; 0.5 if either vector is zero.

    The 0.5 fallback corresponds to cos = 0 (orthogonal / no signal),
    the neutral point of the shifted kernel.
    """
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na < eps or nb < eps:
        return 0.5
    return 0.5 + 0.5 * float(np.dot(a, b) / (na * nb))


def entity_embedding(
    embeddings: WordEmbeddings, tokens: Sequence[str]
) -> np.ndarray:
    """Mean of the unit word vectors of ``tokens`` (zeros if none known).

    This is the sufficient statistic for Eq. 2: the mean pairwise
    cosine between two token sets is the dot product of their mean
    unit vectors.
    """
    vecs = embeddings.unit_vectors(tokens)
    if vecs.shape[0] == 0:
        return np.zeros(embeddings.dim)
    return vecs.mean(axis=0)


def mean_pairwise_shifted_cosine(
    embeddings: WordEmbeddings,
    tokens_u: Sequence[str],
    tokens_v: Sequence[str],
) -> float:
    """Eq. 2 exactly: mean over all token pairs of the shifted cosine.

    Computed via the factorised form; returns 0.5 (the neutral value)
    when either side has no in-vocabulary tokens.
    """
    mu = entity_embedding(embeddings, tokens_u)
    mv = entity_embedding(embeddings, tokens_v)
    if not mu.any() or not mv.any():
        return 0.5
    # Mean unit vectors are not unit; the pairwise mean of cosines is
    # exactly dot(mu, mv) because each row was unit before averaging.
    return 0.5 + 0.5 * float(np.dot(mu, mv))


def pairwise_content_similarity_matrix(
    embeddings: WordEmbeddings,
    token_docs: Sequence[Sequence[str]],
) -> np.ndarray:
    """Dense Sc matrix for a (small) list of entities.

    Only used by tests and the naive HAC baseline on small inputs; the
    production path in :mod:`repro.graph.entity_graph` never builds a
    dense matrix.
    """
    means = np.stack([entity_embedding(embeddings, doc) for doc in token_docs])
    sims = 0.5 + 0.5 * (means @ means.T)
    # Entities with no known tokens have zero mean vectors; their dot
    # products are 0 → shifted 0.5, which matches the scalar kernel.
    return sims
