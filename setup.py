"""Legacy setup shim.

The execution environment has no `wheel` package and no network, so
PEP 517 editable installs fail; this setup.py lets
``pip install -e . --no-build-isolation`` take the legacy
``setup.py develop`` path.
"""

from setuptools import setup

setup()
