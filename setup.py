"""Packaging for the SHOAL reproduction (src/ layout).

Kept as a plain setup.py (no pyproject build-system table) so
offline environments without the ``wheel`` package can still
``pip install -e . --no-build-isolation`` via the legacy
``setup.py develop`` path; networked CI installs with plain
``pip install .``.
"""

from setuptools import find_packages, setup

setup(
    name="shoal-repro",
    version="1.0.0",
    description=(
        "Reproduction of SHOAL: large-scale hierarchical taxonomy via "
        "graph-based query coalition (Li et al., PVLDB 12(12), 2019)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
