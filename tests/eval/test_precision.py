"""Tests for repro.eval.precision (the paper's expert protocol)."""

import pytest

from repro.core.taxonomy import Taxonomy, Topic
from repro.eval.precision import (
    ExpertJudge,
    PrecisionConfig,
    SamplingPrecisionEvaluator,
)


def pure_taxonomy():
    """Two topics, each pure in one scenario."""
    return Taxonomy(
        [
            Topic(100, entity_ids=[0, 1, 2], category_ids=[]),
            Topic(101, entity_ids=[3, 4, 5], category_ids=[]),
        ]
    )


PURE_TRUTH = {0: 7, 1: 7, 2: 7, 3: 8, 4: 8, 5: 8}
MIXED_TRUTH = {0: 7, 1: 7, 2: 8, 3: 8, 4: 8, 5: 7}


class TestExpertJudge:
    def test_dominant_scenario(self):
        judge = ExpertJudge(MIXED_TRUTH)
        t = pure_taxonomy().topic(100)
        assert judge.dominant_scenario(t) == 7

    def test_dominant_tie_deterministic(self):
        judge = ExpertJudge({0: 1, 1: 2})
        t = Topic(5, entity_ids=[0, 1], category_ids=[])
        assert judge.dominant_scenario(t) == 1  # smallest label wins ties? max(sorted) picks by count then order

    def test_judge_correct(self):
        judge = ExpertJudge(PURE_TRUTH)
        t = pure_taxonomy().topic(100)
        assert judge.judge(0, t)
        assert not judge.judge(3, t)

    def test_unknown_entity_is_wrong(self):
        judge = ExpertJudge(PURE_TRUTH)
        t = pure_taxonomy().topic(100)
        assert not judge.judge(99, t)

    def test_empty_topic_no_concept(self):
        judge = ExpertJudge(PURE_TRUTH)
        assert judge.dominant_scenario(Topic(5, entity_ids=[99], category_ids=[])) is None

    def test_noisy_judge_flips_sometimes(self):
        judge = ExpertJudge(PURE_TRUTH, error_rate=1.0, seed=0)
        t = pure_taxonomy().topic(100)
        # error_rate=1 always flips: a correct item is judged wrong.
        assert not judge.judge(0, t)


class TestSamplingEvaluator:
    def test_pure_taxonomy_perfect_precision(self):
        report = SamplingPrecisionEvaluator(
            PrecisionConfig(n_topics=10, items_per_topic=10)
        ).evaluate(pure_taxonomy(), PURE_TRUTH)
        assert report.precision == 1.0
        assert report.n_topics_sampled == 2
        assert report.n_items_judged == 6

    def test_mixed_taxonomy_lower_precision(self):
        report = SamplingPrecisionEvaluator(
            PrecisionConfig(n_topics=10, items_per_topic=10)
        ).evaluate(pure_taxonomy(), MIXED_TRUTH)
        # Each topic is 2/3 pure.
        assert report.precision == pytest.approx(4 / 6)

    def test_items_per_topic_cap(self):
        report = SamplingPrecisionEvaluator(
            PrecisionConfig(n_topics=10, items_per_topic=2)
        ).evaluate(pure_taxonomy(), PURE_TRUTH)
        assert report.n_items_judged == 4

    def test_topic_sampling_cap(self):
        report = SamplingPrecisionEvaluator(
            PrecisionConfig(n_topics=1, items_per_topic=10, seed=3)
        ).evaluate(pure_taxonomy(), PURE_TRUTH)
        assert report.n_topics_sampled == 1

    def test_per_topic_precision_recorded(self):
        report = SamplingPrecisionEvaluator(
            PrecisionConfig(n_topics=10, items_per_topic=10)
        ).evaluate(pure_taxonomy(), MIXED_TRUTH)
        assert set(report.per_topic_precision) == {100, 101}
        assert report.worst_topics(1)[0][1] <= max(
            report.per_topic_precision.values()
        )

    def test_empty_taxonomy(self):
        report = SamplingPrecisionEvaluator().evaluate(Taxonomy([]), PURE_TRUTH)
        assert report.precision == 0.0
        assert report.n_items_judged == 0

    def test_deterministic(self):
        cfg = PrecisionConfig(n_topics=1, items_per_topic=2, seed=5)
        a = SamplingPrecisionEvaluator(cfg).evaluate(pure_taxonomy(), MIXED_TRUTH)
        b = SamplingPrecisionEvaluator(cfg).evaluate(pure_taxonomy(), MIXED_TRUTH)
        assert a.precision == b.precision

    def test_summary(self):
        report = SamplingPrecisionEvaluator().evaluate(pure_taxonomy(), PURE_TRUTH)
        assert "precision=" in report.summary()

    def test_model_precision_meets_paper_band(self, tiny_model, entity_scenarios_tiny):
        """The headline reproduction check at unit-test scale: the
        fitted taxonomy places items with ≥90 % expert precision (the
        paper reports 98 % at production scale; tiny corpora are
        noisier)."""
        report = SamplingPrecisionEvaluator(
            PrecisionConfig(n_topics=1000, items_per_topic=100)
        ).evaluate(tiny_model.taxonomy, entity_scenarios_tiny)
        assert report.precision >= 0.9


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PrecisionConfig(n_topics=0)
        with pytest.raises(ValueError):
            PrecisionConfig(judge_error_rate=1.5)
