"""Tests for repro.eval.abtest (simulated CTR A/B test)."""

import pytest

from repro.eval.abtest import ABTestConfig, ABTestReport, ABTestSimulator, ClickModel


class TestClickModel:
    def test_probability_tiers(self, tiny_marketplace):
        cfg = ABTestConfig()
        cm = ClickModel(tiny_marketplace, cfg)
        # Pick an entity and its ground-truth scenario.
        e = tiny_marketplace.catalog.entities[0]
        assert cm.click_probability(e.entity_id, e.scenario_id) == cfg.p_click_scenario
        # A scenario this entity's category does NOT belong to.
        others = [
            s for s in tiny_marketplace.leaf_scenarios()
            if e.category_id not in s.category_ids and s.scenario_id != e.scenario_id
        ]
        if others:
            assert (
                cm.click_probability(e.entity_id, others[0].scenario_id)
                == cfg.p_click_random
            )

    def test_category_tier(self, tiny_marketplace):
        cfg = ABTestConfig()
        cm = ClickModel(tiny_marketplace, cfg)
        # Find (entity, scenario) where the category matches but the
        # scenario differs → the middle tier.
        for e in tiny_marketplace.catalog.entities:
            for s in tiny_marketplace.leaf_scenarios():
                if s.scenario_id != e.scenario_id and e.category_id in s.category_ids:
                    assert (
                        cm.click_probability(e.entity_id, s.scenario_id)
                        == cfg.p_click_category
                    )
                    return
        pytest.skip("no category-tier pair in this world")


class TestReport:
    def test_ctr_and_uplift(self):
        r = ABTestReport(1000, 50, 1000, 75)
        assert r.control_ctr == 0.05
        assert r.treatment_ctr == 0.075
        assert r.relative_uplift == pytest.approx(0.5)

    def test_zero_impressions(self):
        r = ABTestReport(0, 0, 0, 0)
        assert r.control_ctr == 0.0
        assert r.relative_uplift == 0.0

    def test_summary(self):
        assert "uplift" in ABTestReport(10, 1, 10, 2).summary()


class TestSimulator:
    def test_identical_arms_tie(self, tiny_marketplace):
        """The same recommender in both arms must produce ~equal CTR
        (paired impressions, same click draws distribution)."""
        sim = ABTestSimulator(
            tiny_marketplace, ABTestConfig(n_impressions=3000, seed=0)
        )
        members = tiny_marketplace.catalog.entities_in_scenario(
            tiny_marketplace.leaf_scenarios()[0].scenario_id
        )
        fixed = lambda uid, q: members[:8]
        report = sim.run(fixed, fixed)
        assert report.control_impressions == report.treatment_impressions
        assert report.relative_uplift == pytest.approx(0.0, abs=0.15)

    def test_oracle_beats_random(self, tiny_marketplace):
        """An intent-oracle recommender must beat a fixed-slate one."""
        sim = ABTestSimulator(
            tiny_marketplace, ABTestConfig(n_impressions=3000, seed=1)
        )
        catalog = tiny_marketplace.catalog
        all_ids = [e.entity_id for e in catalog.entities]

        # Control: always the same arbitrary slate.
        control = lambda uid, q: all_ids[:8]

        # Treatment: look up the query's scenario from ground truth.
        by_text = {q.text: q for q in tiny_marketplace.query_log.queries}

        def oracle(uid, q):
            query = by_text.get(q)
            if query is None or query.intent_kind != "scenario":
                return all_ids[:8]
            return catalog.entities_in_scenario(query.intent_id)[:8]

        report = sim.run(control, oracle)
        assert report.treatment_ctr > report.control_ctr

    def test_deterministic(self, tiny_marketplace):
        cfg = ABTestConfig(n_impressions=500, seed=7)
        members = [e.entity_id for e in tiny_marketplace.catalog.entities[:8]]
        rec = lambda uid, q: members
        a = ABTestSimulator(tiny_marketplace, cfg).run(rec, rec)
        b = ABTestSimulator(tiny_marketplace, cfg).run(rec, rec)
        assert a.control_clicks == b.control_clicks
        assert a.treatment_clicks == b.treatment_clicks

    def test_slate_size_cap(self, tiny_marketplace):
        cfg = ABTestConfig(n_impressions=200, slate_size=3, seed=0)
        sim = ABTestSimulator(tiny_marketplace, cfg)
        big = [e.entity_id for e in tiny_marketplace.catalog.entities[:20]]
        rec = lambda uid, q: big
        report = sim.run(rec, rec)
        # Every impression shows at most 3 items.
        assert report.control_impressions <= 200 * 3


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ABTestConfig(n_impressions=0)
        with pytest.raises(ValueError):
            ABTestConfig(p_click_scenario=1.5)
