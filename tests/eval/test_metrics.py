"""Tests for repro.eval.metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    adjusted_rand_index,
    cluster_purity,
    contingency_table,
    normalized_mutual_information,
    pair_precision_recall,
)

PERFECT = ({0: 0, 1: 0, 2: 1, 3: 1}, {0: 10, 1: 10, 2: 20, 3: 20})
RANDOMISH = ({0: 0, 1: 1, 2: 0, 3: 1}, {0: 10, 1: 10, 2: 20, 3: 20})


class TestContingency:
    def test_shape_and_sum(self):
        pred = np.array([0, 0, 1, 1])
        true = np.array([5, 5, 6, 7])
        t = contingency_table(pred, true)
        assert t.shape == (2, 3)
        assert t.sum() == 4

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            contingency_table(np.array([0]), np.array([0, 1]))


class TestPurity:
    def test_perfect(self):
        assert cluster_purity(*PERFECT) == 1.0

    def test_half(self):
        assert cluster_purity(*RANDOMISH) == 0.5

    def test_single_cluster(self):
        pred = {i: 0 for i in range(4)}
        assert cluster_purity(pred, PERFECT[1]) == 0.5

    def test_no_common_items_raises(self):
        with pytest.raises(ValueError):
            cluster_purity({0: 0}, {1: 1})

    def test_only_common_keys_scored(self):
        pred = {0: 0, 1: 0, 99: 5}
        true = {0: 1, 1: 1, 42: 7}
        assert cluster_purity(pred, true) == 1.0


class TestNMI:
    def test_perfect(self):
        assert normalized_mutual_information(*PERFECT) == pytest.approx(1.0)

    def test_label_permutation_invariant(self):
        pred_a = {0: 0, 1: 0, 2: 1, 3: 1}
        pred_b = {0: 7, 1: 7, 2: 3, 3: 3}
        truth = PERFECT[1]
        assert normalized_mutual_information(
            pred_a, truth
        ) == pytest.approx(normalized_mutual_information(pred_b, truth))

    def test_independent_partitions_low(self):
        rng = np.random.default_rng(0)
        pred = {i: int(rng.integers(4)) for i in range(400)}
        true = {i: int(rng.integers(4)) for i in range(400)}
        assert normalized_mutual_information(pred, true) < 0.1

    def test_bounded(self):
        assert 0.0 <= normalized_mutual_information(*RANDOMISH) <= 1.0

    def test_both_single_cluster(self):
        pred = {0: 0, 1: 0}
        assert normalized_mutual_information(pred, pred) == 1.0


class TestARI:
    def test_perfect(self):
        assert adjusted_rand_index(*PERFECT) == pytest.approx(1.0)

    def test_worse_than_perfect(self):
        assert adjusted_rand_index(*RANDOMISH) < 1.0

    def test_chance_near_zero(self):
        rng = np.random.default_rng(1)
        pred = {i: int(rng.integers(3)) for i in range(600)}
        true = {i: int(rng.integers(3)) for i in range(600)}
        assert abs(adjusted_rand_index(pred, true)) < 0.05

    def test_bounded_above(self):
        assert adjusted_rand_index(*RANDOMISH) <= 1.0


class TestPairPrecisionRecall:
    def test_perfect(self):
        pairs = [(1, 2), (3, 4)]
        p, r = pair_precision_recall(pairs, pairs)
        assert (p, r) == (1.0, 1.0)

    def test_order_insensitive(self):
        p, r = pair_precision_recall([(2, 1)], [(1, 2)])
        assert (p, r) == (1.0, 1.0)

    def test_partial(self):
        p, r = pair_precision_recall([(1, 2), (5, 6)], [(1, 2), (3, 4)])
        assert p == 0.5
        assert r == 0.5

    def test_empty_predictions(self):
        p, r = pair_precision_recall([], [(1, 2)])
        assert (p, r) == (0.0, 0.0)

    def test_empty_truth(self):
        p, r = pair_precision_recall([(1, 2)], [])
        assert p == 0.0
        assert r == 1.0

    def test_both_empty(self):
        assert pair_precision_recall([], []) == (0.0, 1.0)
