"""Tests for the ranking metrics (DCG/NDCG, precision@k)."""

import math

import pytest

from repro.eval.metrics import dcg_at_k, ndcg_at_k, precision_at_k


class TestDCG:
    def test_single_result(self):
        assert dcg_at_k([1.0], 1) == pytest.approx(1.0)

    def test_log_discount(self):
        # positions 0,1,2 discount by log2(2), log2(3), log2(4)
        expected = 1.0 + 1.0 / math.log2(3) + 1.0 / math.log2(4)
        assert dcg_at_k([1, 1, 1], 3) == pytest.approx(expected)

    def test_truncation_at_k(self):
        assert dcg_at_k([1, 1, 1], 1) == pytest.approx(1.0)

    def test_graded_relevance(self):
        assert dcg_at_k([3, 0], 2) == pytest.approx(3.0)

    def test_empty(self):
        assert dcg_at_k([], 5) == 0.0

    def test_k_zero(self):
        assert dcg_at_k([1, 2], 0) == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            dcg_at_k([1], -1)


class TestNDCG:
    def test_ideal_order_is_one(self):
        assert ndcg_at_k([3, 2, 1], 3) == pytest.approx(1.0)

    def test_reversed_order_below_one(self):
        v = ndcg_at_k([1, 2, 3], 3)
        assert 0.0 < v < 1.0

    def test_no_relevance_zero(self):
        assert ndcg_at_k([0, 0, 0], 3) == 0.0

    def test_bounded(self):
        for rels in ([1, 0, 1], [0, 3, 0, 1], [2]):
            assert 0.0 <= ndcg_at_k(rels, len(rels)) <= 1.0

    def test_relevant_first_beats_relevant_last(self):
        assert ndcg_at_k([1, 0, 0], 3) > ndcg_at_k([0, 0, 1], 3)


class TestPrecisionAtK:
    def test_all_relevant(self):
        assert precision_at_k([1, 1, 1], 3) == 1.0

    def test_partial(self):
        assert precision_at_k([1, 0, 1, 0], 4) == 0.5

    def test_short_list_counts_as_misses(self):
        assert precision_at_k([1], 4) == 0.25

    def test_k_validated(self):
        with pytest.raises(ValueError):
            precision_at_k([1], 0)


class TestRetrievalOnModel:
    def test_scenario_queries_retrieve_relevant_topics(
        self, tiny_model, tiny_marketplace
    ):
        """Demo scenario A scored with NDCG: for a scenario query, a
        returned topic is relevant when its dominant ground-truth
        scenario matches the query intent."""
        from repro.core.serving import ShoalService
        from repro.eval.metrics import ndcg_at_k

        service = ShoalService(tiny_model)
        catalog = tiny_marketplace.catalog

        def dominant(topic_id):
            topic = tiny_model.taxonomy.topic(topic_id)
            scenarios = [
                catalog.entity(e).scenario_id for e in topic.entity_ids
            ]
            return max(set(scenarios), key=scenarios.count)

        scores = []
        for q in tiny_marketplace.query_log.queries:
            if q.intent_kind != "scenario":
                continue
            hits = service.search_topics(q.text, k=5)
            if not hits:
                continue
            rels = [1.0 if dominant(h.topic_id) == q.intent_id else 0.0
                    for h in hits]
            scores.append(ndcg_at_k(rels, 5))
        assert scores
        assert sum(scores) / len(scores) > 0.6
