"""Tests for repro.cli (command-line interface)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "--profile", "galactic"])

    def test_defaults(self):
        args = build_parser().parse_args(["fit"])
        assert args.profile == "small"
        assert args.seed == 0


class TestFitCommand:
    def test_prints_taxonomy(self, capsys):
        rc = main(["fit", "--profile", "tiny", "--max-roots", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ShoalModel(" in out
        assert "entities" in out
        assert "topics=" in out

    def test_writes_taxonomy_json(self, tmp_path, capsys):
        path = tmp_path / "tax.json"
        rc = main(["fit", "--profile", "tiny", "--output", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["topics"]

    def test_alpha_override(self, capsys):
        rc = main(["fit", "--profile", "tiny", "--alpha", "0.5"])
        assert rc == 0


class TestEvaluateCommand:
    def test_passes_on_tiny(self, capsys):
        rc = main(["evaluate", "--profile", "tiny"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "precision:" in out
        assert "modularity:" in out


class TestSearchCommand:
    def test_default_query(self, capsys):
        rc = main(["search", "--profile", "tiny"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "query:" in out
        assert "topic" in out

    def test_explicit_garbage_query(self, capsys):
        rc = main(["search", "--profile", "tiny", "zzzz qqqq"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no matching topics" in out


class TestABTestCommand:
    def test_uplift_positive(self, capsys):
        rc = main(
            ["abtest", "--profile", "tiny", "--impressions", "1500"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "uplift" in out


class TestSnapshotFlow:
    """fit --save followed by --load on the serving commands: the
    offline-fit → online-serving handoff, end to end from the CLI."""

    @pytest.fixture(scope="class")
    def snapshot(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("cli") / "snap"
        rc = main(["fit", "--profile", "tiny", "--save", str(d)])
        assert rc == 0
        return d

    def test_fit_save_writes_snapshot(self, snapshot, capsys):
        assert (snapshot / "MANIFEST.json").is_file()
        assert (snapshot / "entity_categories.json").is_file()

    def test_search_load_serves_from_disk(self, snapshot, capsys):
        rc = main(["search", "--load", str(snapshot)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "query:" in out
        assert "topic" in out  # the default demo query matches its topic

    def test_search_load_explicit_query(self, snapshot, capsys):
        rc = main(["search", "--load", str(snapshot), "zzzz qqqq"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no matching topics" in out

    def test_evaluate_load_skips_fit(self, snapshot, capsys):
        rc = main(["evaluate", "--profile", "tiny", "--load", str(snapshot)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "precision:" in out

    def test_abtest_load(self, snapshot, capsys):
        rc = main([
            "abtest", "--profile", "tiny", "--impressions", "1500",
            "--load", str(snapshot),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "uplift" in out

    def test_fit_load_reprints_without_refitting(self, snapshot, capsys):
        rc = main(["fit", "--profile", "tiny", "--load", str(snapshot)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ShoalModel(" in out

    def test_load_with_mismatched_world_rejected(self, snapshot, capsys):
        """A snapshot fitted on one profile/seed must not be scored
        against a different regenerated world."""
        with pytest.raises(SystemExit, match="--profile tiny"):
            main(["evaluate", "--profile", "small", "--load", str(snapshot)])
        with pytest.raises(SystemExit, match="--seed 0"):
            main(["evaluate", "--profile", "tiny", "--seed", "7",
                  "--load", str(snapshot)])

    def test_load_with_alpha_rejected(self, snapshot, capsys):
        with pytest.raises(SystemExit, match="alpha"):
            main(["search", "--load", str(snapshot), "--alpha", "0.5"])


class TestClusterCommands:
    """serve-cluster + replay: the scale-out handoff from the CLI."""

    @pytest.fixture(scope="class")
    def cluster_dir(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("cli-cluster") / "cluster"
        rc = main([
            "serve-cluster", "--profile", "tiny", "--shards", "2",
            "--save-shards", str(d),
        ])
        assert rc == 0
        return d

    def test_serve_cluster_prints_plan_and_answers(self, capsys):
        rc = main([
            "serve-cluster", "--profile", "tiny", "--shards", "2",
            "--replicas", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shard 0:" in out
        assert "shard 1:" in out
        assert "query:" in out
        assert "2 shards x 2 replicas" in out

    def test_save_shards_layout(self, cluster_dir, capsys):
        assert (cluster_dir / "CLUSTER_MANIFEST.json").is_file()
        assert (cluster_dir / "collection_stats.json").is_file()
        assert (cluster_dir / "shard-0000" / "MANIFEST.json").is_file()

    def test_replay_against_cluster_dir(self, cluster_dir, capsys):
        rc = main([
            "replay", "--profile", "tiny", "--cluster-dir",
            str(cluster_dir), "--requests", "200", "--traffic", "bursty",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cluster:" in out
        assert "qps" in out

    def test_replay_both_targets(self, capsys):
        rc = main([
            "replay", "--profile", "tiny", "--target", "both",
            "--requests", "150", "--traffic", "drifting", "--shards", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "single:" in out
        assert "cluster:" in out
        assert "QPS ratio" in out

    def test_replay_every_traffic_profile(self, capsys):
        for traffic in ("steady", "bursty", "drifting", "adversarial"):
            rc = main([
                "replay", "--profile", "tiny", "--requests", "80",
                "--traffic", traffic, "--shards", "2", "--warmup", "10",
            ])
            assert rc == 0

    def test_replay_backend_uri_cluster(self, cluster_dir, capsys):
        rc = main([
            "replay", "--profile", "tiny", "--backend",
            f"cluster:{cluster_dir}", "--requests", "100",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend:" in out
        assert "qps" in out

    def test_replay_backend_world_mismatch_rejected(self, cluster_dir, capsys):
        """--backend must enforce the same world check as --cluster-dir."""
        with pytest.raises(SystemExit, match="--profile tiny"):
            main([
                "replay", "--profile", "small", "--backend",
                f"cluster:{cluster_dir}", "--requests", "50",
            ])

    def test_replay_backend_excludes_cluster_dir(self, cluster_dir, capsys):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main([
                "replay", "--profile", "tiny", "--backend",
                f"cluster:{cluster_dir}", "--cluster-dir", str(cluster_dir),
                "--requests", "50",
            ])

    def test_cluster_dir_world_mismatch_rejected(self, cluster_dir, capsys):
        with pytest.raises(SystemExit, match="--profile tiny"):
            main([
                "replay", "--profile", "small", "--cluster-dir",
                str(cluster_dir), "--requests", "50",
            ])

    def test_cluster_dir_and_load_conflict(self, cluster_dir, capsys):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main([
                "replay", "--profile", "tiny", "--cluster-dir",
                str(cluster_dir), "--load", "/nope", "--requests", "50",
            ])
