"""Tests for repro.cli (command-line interface)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "--profile", "galactic"])

    def test_defaults(self):
        args = build_parser().parse_args(["fit"])
        assert args.profile == "small"
        assert args.seed == 0


class TestFitCommand:
    def test_prints_taxonomy(self, capsys):
        rc = main(["fit", "--profile", "tiny", "--max-roots", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ShoalModel(" in out
        assert "entities" in out
        assert "topics=" in out

    def test_writes_taxonomy_json(self, tmp_path, capsys):
        path = tmp_path / "tax.json"
        rc = main(["fit", "--profile", "tiny", "--output", str(path)])
        assert rc == 0
        payload = json.loads(path.read_text())
        assert payload["topics"]

    def test_alpha_override(self, capsys):
        rc = main(["fit", "--profile", "tiny", "--alpha", "0.5"])
        assert rc == 0


class TestEvaluateCommand:
    def test_passes_on_tiny(self, capsys):
        rc = main(["evaluate", "--profile", "tiny"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "precision:" in out
        assert "modularity:" in out


class TestSearchCommand:
    def test_default_query(self, capsys):
        rc = main(["search", "--profile", "tiny"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "query:" in out
        assert "topic" in out

    def test_explicit_garbage_query(self, capsys):
        rc = main(["search", "--profile", "tiny", "zzzz qqqq"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no matching topics" in out


class TestABTestCommand:
    def test_uplift_positive(self, capsys):
        rc = main(
            ["abtest", "--profile", "tiny", "--impressions", "1500"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "uplift" in out
