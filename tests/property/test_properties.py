"""Property-based tests (hypothesis) on core data structures/invariants."""


import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._util import jaccard
from repro.clustering.dendrogram import Dendrogram
from repro.clustering.hac import HACConfig, SequentialHAC
from repro.clustering.linkage import LINKAGES, sqrt_linkage
from repro.clustering.membership import MembershipTracker
from repro.clustering.parallel_hac import ParallelHAC, ParallelHACConfig
from repro.graph.diffusion import local_maximal_edges
from repro.graph.modularity import modularity
from repro.graph.sparse import SparseGraph

# -- strategies -----------------------------------------------------------


@st.composite
def sparse_graphs(draw, max_vertices=14, max_extra_edges=20):
    """Random small weighted graphs (weights in (0, 1])."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    g = SparseGraph(n)
    n_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        w = draw(
            st.floats(min_value=0.01, max_value=1.0,
                      allow_nan=False, allow_infinity=False)
        )
        g.set_edge(u, v, round(w, 6))
    return g


similarities = st.floats(min_value=0.0, max_value=1.0,
                         allow_nan=False, allow_infinity=False)
sizes = st.integers(min_value=1, max_value=10_000)


# -- linkage properties ------------------------------------------------------


class TestLinkageProperties:
    @given(similarities, similarities, sizes, sizes)
    def test_sqrt_linkage_bounded_by_inputs(self, a, b, na, nb):
        s = sqrt_linkage(a, b, na, nb)
        assert min(a, b) - 1e-12 <= s <= max(a, b) + 1e-12

    @given(similarities, similarities, sizes, sizes)
    def test_sqrt_linkage_symmetric(self, a, b, na, nb):
        assert sqrt_linkage(a, b, na, nb) == pytest.approx(
            sqrt_linkage(b, a, nb, na)
        )

    @given(similarities, sizes, sizes)
    def test_equal_inputs_fixed_point(self, a, na, nb):
        """All linkages agree when both edges have the same weight."""
        for name, fn in LINKAGES.items():
            assert fn(a, a, na, nb) == pytest.approx(a), name

    @given(similarities, similarities, sizes)
    def test_equal_sizes_is_plain_mean(self, a, b, n):
        assert sqrt_linkage(a, b, n, n) == pytest.approx((a + b) / 2)


# -- jaccard properties ----------------------------------------------------


class TestJaccardProperties:
    @given(st.sets(st.integers(0, 50)), st.sets(st.integers(0, 50)))
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(st.sets(st.integers(0, 50)), st.sets(st.integers(0, 50)))
    def test_symmetric(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @given(st.sets(st.integers(0, 50), min_size=1))
    def test_self_is_one(self, a):
        assert jaccard(a, a) == 1.0


# -- membership tracker properties ---------------------------------------


class TestMembershipProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=15))
    def test_members_always_partition(self, merge_requests):
        """After arbitrary (valid) merges, live clusters partition the
        original vertex set exactly."""
        vertices = list(range(12))
        t = MembershipTracker(vertices)
        for a, b in merge_requests:
            live = t.live_clusters()
            ca, cb = live[a % len(live)], live[b % len(live)]
            if ca != cb:
                t.merge(ca, cb)
        seen = []
        for c in t.live_clusters():
            seen.extend(t.members(c))
        assert sorted(seen) == vertices
        # cluster_of agrees with members().
        for c in t.live_clusters():
            for v in t.members(c):
                assert t.cluster_of(v) == c


# -- diffusion properties -----------------------------------------------------


class TestDiffusionProperties:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs(), st.integers(min_value=1, max_value=4))
    def test_edges_vertex_disjoint(self, g, k):
        seen = set()
        for u, v, _ in local_maximal_edges(g, k):
            assert u not in seen and v not in seen
            seen.update((u, v))

    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs())
    def test_global_max_always_included(self, g):
        gm = g.max_edge()
        if gm is None:
            return
        for k in (1, 3):
            assert gm in local_maximal_edges(g, k)

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs(), st.integers(min_value=1, max_value=3))
    def test_monotone_in_rounds(self, g, k):
        """More diffusion never yields more local maxima."""
        assert len(local_maximal_edges(g, k + 1)) <= len(
            local_maximal_edges(g, k)
        )


# -- HAC properties ------------------------------------------------------------


class TestHACProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs(), st.sampled_from([0.0, 0.2, 0.5, 0.8]))
    def test_parallel_hac_invariants(self, g, threshold):
        result = ParallelHAC(
            ParallelHACConfig(similarity_threshold=max(threshold, 0.01))
        ).fit(g)
        d = result.dendrogram
        # 1. Every merge at/above threshold.
        for m in d.merges:
            assert m.similarity >= max(threshold, 0.01) - 1e-12
        # 2. Roots partition the vertex set.
        covered = []
        for r in d.roots():
            covered.extend(d.leaves_under(r))
        assert sorted(covered) == g.vertices()
        # 3. Input untouched.
        assert g.n_vertices == len(g.vertices())

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs())
    def test_sequential_hac_partition_covers(self, g):
        d = SequentialHAC(HACConfig(similarity_threshold=0.1)).fit(g)
        labels = d.root_partition()
        assert sorted(labels) == g.vertices()

    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs())
    def test_cut_granularity_monotone(self, g):
        """Higher similarity cuts never produce fewer clusters."""
        d = SequentialHAC(HACConfig(similarity_threshold=0.01)).fit(g)
        counts = [
            len(set(d.cut_at_similarity(t).values()))
            for t in (0.0, 0.3, 0.6, 0.9)
        ]
        assert counts == sorted(counts)


# -- modularity properties ---------------------------------------------------


class TestModularityProperties:
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs(), st.integers(min_value=1, max_value=5))
    def test_bounded(self, g, n_communities):
        labels = {v: v % n_communities for v in g.vertices()}
        q = modularity(g, labels)
        assert -1.0 <= q <= 1.0

    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs())
    def test_single_community_zero(self, g):
        labels = {v: 0 for v in g.vertices()}
        assert modularity(g, labels) == pytest.approx(0.0, abs=1e-9)


# -- dendrogram properties --------------------------------------------------


class TestDendrogramProperties:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs())
    def test_leaf_count_conserved(self, g):
        d = SequentialHAC(HACConfig(similarity_threshold=0.05)).fit(g)
        total = sum(len(d.leaves_under(r)) for r in d.roots())
        assert total == g.n_vertices

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
    @given(sparse_graphs())
    def test_merge_count_vs_roots(self, g):
        """n_vertices − n_merges == number of roots (forest identity)."""
        d = SequentialHAC(HACConfig(similarity_threshold=0.05)).fit(g)
        assert g.n_vertices - d.n_merges == len(d.roots())
