"""Tests for repro.core.serving (the four Fig. 5 demo scenarios)."""

import pytest

from repro.core.serving import ShoalService


@pytest.fixture(scope="module")
def service(tiny_model, tiny_marketplace):
    svc = ShoalService(tiny_model)
    svc.set_entity_categories(
        {e.entity_id: e.category_id for e in tiny_marketplace.catalog.entities}
    )
    return svc


class TestScenarioA_QueryToTopic:
    def test_scenario_query_finds_matching_topic(self, service, tiny_marketplace):
        """A scenario query should retrieve a topic dominated by that
        scenario's entities."""
        query = next(
            q for q in tiny_marketplace.query_log.queries
            if q.intent_kind == "scenario"
        )
        hits = service.search_topics(query.text, k=3)
        assert hits, f"no topics for {query.text!r}"
        top = service.taxonomy.topic(hits[0].topic_id)
        scenarios = [
            tiny_marketplace.catalog.entity(e).scenario_id for e in top.entity_ids
        ]
        dominant = max(set(scenarios), key=scenarios.count)
        assert dominant == query.intent_id

    def test_hits_sorted_by_score(self, service):
        hits = service.search_topics("anything matches nothing", k=5)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_empty_query(self, service):
        assert service.search_topics("", k=3) == []

    def test_best_topic_none_for_garbage(self, service):
        assert service.best_topic("zzzz qqqq xxxx") is None

    def test_hit_metadata(self, service, tiny_marketplace):
        query = next(
            q for q in tiny_marketplace.query_log.queries
            if q.intent_kind == "scenario"
        )
        hit = service.search_topics(query.text, k=1)[0]
        t = service.taxonomy.topic(hit.topic_id)
        assert hit.n_entities == t.size
        assert hit.n_categories == len(t.category_ids)
        assert hit.label == t.label()


class TestScenarioB_TopicToSubtopic:
    def test_subtopics_are_children(self, service):
        for topic in service.taxonomy.topics():
            for sub in service.subtopics(topic.topic_id):
                assert sub.parent_id == topic.topic_id

    def test_topic_path_ends_at_root(self, service):
        deepest = max(service.taxonomy.topics(), key=lambda t: t.level)
        path = service.topic_path(deepest.topic_id)
        assert path[0].topic_id == deepest.topic_id
        assert path[-1].parent_id is None
        assert len(path) == deepest.level + 1


class TestScenarioC_TopicToCategoryToItem:
    def test_categories_of_topic(self, service):
        root = service.taxonomy.root_topics()[0]
        assert service.categories_of_topic(root.topic_id) == root.category_ids

    def test_entities_filtered_by_category(self, service, tiny_marketplace):
        root = next(
            t for t in service.taxonomy.root_topics() if len(t.category_ids) >= 2
        )
        cid = root.category_ids[0]
        entities = service.entities_of_topic_category(root.topic_id, cid)
        for e in entities:
            assert tiny_marketplace.catalog.entity(e).category_id == cid
        assert set(entities) <= set(root.entity_ids)

    def test_unrelated_category_empty(self, service):
        root = service.taxonomy.root_topics()[0]
        assert service.entities_of_topic_category(root.topic_id, 999999) == []


class TestScenarioD_CategoryToCategory:
    def test_related_categories_strength_sorted(self, small_model):
        svc = ShoalService(small_model)
        graph = small_model.correlations
        cats = graph.categories()
        if not cats:
            pytest.skip("no correlations on this corpus")
        hits = svc.related_categories(cats[0])
        strengths = [h.strength for h in hits]
        assert strengths == sorted(strengths, reverse=True)
        assert all(h.strength >= graph.min_strength for h in hits)


class TestRelatedTopics:
    def test_excludes_self_and_lineage(self, service):
        for topic in service.taxonomy.root_topics()[:5]:
            lineage = {topic.topic_id}
            stack = list(topic.child_ids)
            while stack:
                node = stack.pop()
                lineage.add(node)
                stack.extend(service.taxonomy.topic(node).child_ids)
            related = service.related_topics(topic.topic_id, k=10)
            for other, _ in related:
                assert other.topic_id not in lineage

    def test_scores_sorted_descending(self, service):
        root = service.taxonomy.root_topics()[0]
        related = service.related_topics(root.topic_id, k=10)
        scores = [s for _, s in related]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 < s <= 1.0 for s in scores)

    def test_k_respected(self, service):
        root = service.taxonomy.root_topics()[0]
        assert len(service.related_topics(root.topic_id, k=2)) <= 2

    def test_same_scenario_topics_related(self, service, tiny_marketplace):
        """Two root topics dominated by the same ground-truth scenario
        should find each other when both exist."""
        catalog = tiny_marketplace.catalog
        by_scenario = {}
        for t in service.taxonomy.root_topics():
            scenarios = [catalog.entity(e).scenario_id for e in t.entity_ids]
            dom = max(set(scenarios), key=scenarios.count)
            by_scenario.setdefault(dom, []).append(t)
        pairs = [ts for ts in by_scenario.values() if len(ts) >= 2]
        if not pairs:
            pytest.skip("every scenario maps to one topic in this world")
        a, b = pairs[0][0], pairs[0][1]
        related_ids = {t.topic_id for t, _ in service.related_topics(a.topic_id, k=20)}
        assert b.topic_id in related_ids


class TestRecommendation:
    def test_recommend_entities_within_topic(self, service):
        query_texts = list(service.model.query_texts.values())
        slate = service.recommend_entities_for_query(query_texts[0], k=5)
        if slate:
            topic = service.best_topic(query_texts[0])
            assert set(slate) <= set(topic.entity_ids)
            assert len(slate) <= 5

    def test_recommend_nothing_for_garbage(self, service):
        assert service.recommend_entities_for_query("zz qq", k=5) == []
