"""Tests for repro.core.config (ShoalConfig)."""

import pytest

from repro.core.config import ShoalConfig


class TestDefaults:
    def test_paper_values(self):
        cfg = ShoalConfig()
        assert cfg.entity_graph.alpha == 0.7          # paper Sec. 2.1
        assert cfg.clustering.diffusion_rounds == 2   # paper Sec. 2.2
        assert cfg.window_days == 7                   # paper Sec. 3
        assert cfg.clustering.linkage == "sqrt"       # paper Eq. 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ShoalConfig(window_days=0)
        with pytest.raises(ValueError):
            ShoalConfig(min_topic_size=0)


class TestCopies:
    def test_with_alpha(self):
        cfg = ShoalConfig().with_alpha(0.2)
        assert cfg.entity_graph.alpha == 0.2
        assert ShoalConfig().entity_graph.alpha == 0.7  # original untouched

    def test_with_diffusion_rounds(self):
        assert ShoalConfig().with_diffusion_rounds(4).clustering.diffusion_rounds == 4

    def test_with_similarity_threshold(self):
        cfg = ShoalConfig().with_similarity_threshold(0.5)
        assert cfg.clustering.similarity_threshold == 0.5

    def test_with_linkage(self):
        assert ShoalConfig().with_linkage("max").clustering.linkage == "max"

    def test_with_seed_propagates_to_word2vec(self):
        cfg = ShoalConfig().with_seed(9)
        assert cfg.seed == 9
        assert cfg.word2vec.seed == 9

    def test_invalid_copy_rejected(self):
        with pytest.raises(ValueError):
            ShoalConfig().with_alpha(2.0)
        with pytest.raises(ValueError):
            ShoalConfig().with_linkage("nope")
