"""Tests for repro.core.correlation (Sec. 2.4, Eq. 5)."""

import pytest

from repro.core.correlation import (
    CategoryCorrelationConfig,
    CategoryCorrelationMiner,
    CorrelationGraph,
)
from repro.core.taxonomy import Taxonomy, Topic


def make_taxonomy():
    """Three root topics; categories 1,2 co-occur twice, 1,3 once.

    Topic 102 has a child topic (103) that must NOT count toward the
    root-pivot correlation.
    """
    topics = [
        Topic(100, entity_ids=[0], category_ids=[1, 2]),
        Topic(101, entity_ids=[1], category_ids=[1, 2, 3]),
        Topic(102, entity_ids=[2, 3], category_ids=[4, 5]),
        Topic(103, entity_ids=[2], category_ids=[4, 5], parent_id=102, level=1),
    ]
    topics[2].child_ids = [103]
    return Taxonomy(topics)


class TestMiner:
    def test_raw_strengths_eq5(self):
        miner = CategoryCorrelationMiner()
        raw = miner.raw_strengths(make_taxonomy())
        assert raw[(1, 2)] == 2
        assert raw[(1, 3)] == 1
        assert raw[(2, 3)] == 1
        assert raw[(4, 5)] == 1  # root topic 102 only; child excluded

    def test_threshold_filters(self):
        graph = CategoryCorrelationMiner(
            CategoryCorrelationConfig(min_strength=2)
        ).mine(make_taxonomy())
        assert graph.correlated(1, 2)
        assert not graph.correlated(1, 3)
        assert not graph.correlated(4, 5)

    def test_threshold_one_keeps_all(self):
        graph = CategoryCorrelationMiner(
            CategoryCorrelationConfig(min_strength=1)
        ).mine(make_taxonomy())
        assert graph.n_correlations == 4


class TestCorrelationGraph:
    @pytest.fixture
    def graph(self):
        return CategoryCorrelationMiner(
            CategoryCorrelationConfig(min_strength=1)
        ).mine(make_taxonomy())

    def test_symmetric(self, graph):
        assert graph.strength(1, 2) == graph.strength(2, 1) == 2

    def test_absent_pair_zero(self, graph):
        assert graph.strength(1, 99) == 0
        assert not graph.correlated(1, 99)

    def test_related_categories_sorted(self, graph):
        related = graph.related_categories(1)
        assert related[0] == (2, 2)  # strongest first
        assert set(c for c, _ in related) == {2, 3}

    def test_related_categories_top_k(self, graph):
        assert len(graph.related_categories(1, k=1)) == 1

    def test_related_unknown_category(self, graph):
        assert graph.related_categories(999) == []

    def test_pairs_canonical(self, graph):
        pairs = graph.pairs()
        assert all(a < b for a, b, _ in pairs)
        assert (1, 2, 2) in pairs

    def test_counts(self, graph):
        assert graph.n_categories == 5
        assert graph.n_correlations == 4

    def test_self_pairs_ignored(self):
        g = CorrelationGraph({(1, 1): 5}, min_strength=1)
        assert g.n_correlations == 0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CategoryCorrelationConfig(min_strength=0)
