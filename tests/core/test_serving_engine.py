"""Tests for the serving-engine internals of repro.core.serving:
query-result LRU cache (hit/miss/invalidation, incremental wiring) and
the batch APIs."""

import dataclasses

import pytest

from repro.core.config import ShoalConfig
from repro.core.incremental import IncrementalShoal
from repro.core.serving import ShoalService
from repro.data.marketplace import PROFILES, generate_marketplace
from repro.data.queries import QueryLogConfig


@pytest.fixture()
def service(tiny_model, tiny_marketplace):
    """A fresh service per test — cache counters start at zero."""
    return ShoalService(
        tiny_model,
        entity_categories={
            e.entity_id: e.category_id
            for e in tiny_marketplace.catalog.entities
        },
    )


@pytest.fixture(scope="module")
def scenario_query(tiny_marketplace):
    return next(
        q.text
        for q in tiny_marketplace.query_log.queries
        if q.intent_kind == "scenario"
    )


class TestQueryCache:
    def test_repeat_search_hits_cache(self, service, scenario_query):
        first = service.search_topics(scenario_query, k=3)
        stats = service.cache_stats()
        assert stats.hits == 0
        assert stats.misses == 1
        second = service.search_topics(scenario_query, k=3)
        stats = service.cache_stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert second == first

    def test_different_k_is_different_entry(self, service, scenario_query):
        service.search_topics(scenario_query, k=3)
        service.search_topics(scenario_query, k=5)
        assert service.cache_stats().misses == 2

    def test_cached_result_is_copy(self, service, scenario_query):
        first = service.search_topics(scenario_query, k=3)
        first.clear()  # caller mutation must not corrupt the cache
        again = service.search_topics(scenario_query, k=3)
        assert again  # still the real hits, not the cleared list

    def test_related_topics_cached(self, service):
        root = service.taxonomy.root_topics()[0]
        first = service.related_topics(root.topic_id, k=6)
        second = service.related_topics(root.topic_id, k=6)
        assert second == first
        assert service.cache_stats().hits >= 1

    def test_invalidate_cache(self, service, scenario_query):
        service.search_topics(scenario_query, k=3)
        service.invalidate_cache()
        stats = service.cache_stats()
        assert stats.size == 0
        assert stats.invalidations == 1
        service.search_topics(scenario_query, k=3)
        assert service.cache_stats().misses == 2

    def test_set_entity_categories_invalidates(self, service, scenario_query):
        service.search_topics(scenario_query, k=3)
        service.set_entity_categories({})
        assert service.cache_stats().size == 0

    def test_cache_disabled(self, tiny_model, scenario_query):
        svc = ShoalService(tiny_model, cache_size=0)
        svc.search_topics(scenario_query, k=3)
        svc.search_topics(scenario_query, k=3)
        stats = svc.cache_stats()
        assert stats.hits == 0
        assert stats.misses == 2
        assert stats.size == 0

    def test_lru_eviction(self, tiny_model):
        svc = ShoalService(tiny_model, cache_size=2)
        queries = list(tiny_model.query_texts.values())[:3]
        for q in queries:
            svc.search_topics(q, k=3)
        assert svc.cache_stats().size == 2
        svc.search_topics(queries[0], k=3)  # evicted → miss again
        assert svc.cache_stats().misses == 4

    def test_negative_cache_size_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            ShoalService(tiny_model, cache_size=-1)

    def test_hit_rate(self, service, scenario_query):
        assert service.cache_stats().hit_rate == 0.0
        service.search_topics(scenario_query, k=3)
        service.search_topics(scenario_query, k=3)
        assert service.cache_stats().hit_rate == pytest.approx(0.5)
        assert "hits" in service.cache_stats().summary()

    def test_cached_equals_uncached(self, tiny_model, tiny_marketplace):
        """The cache must be invisible: cached and cache-disabled
        services agree on every query and every related-topics call."""
        cats = {
            e.entity_id: e.category_id
            for e in tiny_marketplace.catalog.entities
        }
        warm = ShoalService(tiny_model, entity_categories=cats)
        cold = ShoalService(tiny_model, cache_size=0, entity_categories=cats)
        queries = list(tiny_model.query_texts.values())[:10]
        for q in queries + queries:  # second pass hits warm's cache
            assert warm.search_topics(q, k=4) == cold.search_topics(q, k=4)
        for t in warm.taxonomy.root_topics()[:5]:
            w = [(o.topic_id, s) for o, s in warm.related_topics(t.topic_id)]
            c = [(o.topic_id, s) for o, s in cold.related_topics(t.topic_id)]
            assert w == c


class TestBatchAPIs:
    def test_search_batch_equals_sequential(self, service, tiny_model):
        queries = list(tiny_model.query_texts.values())[:12]
        batched = service.search_topics_batch(queries, k=4)
        sequential = [service.search_topics(q, k=4) for q in queries]
        assert batched == sequential

    def test_recommend_batch_equals_sequential(self, service, tiny_model):
        queries = list(tiny_model.query_texts.values())[:12]
        batched = service.recommend_batch(queries, k=6)
        sequential = [
            service.recommend_entities_for_query(q, k=6) for q in queries
        ]
        assert batched == sequential

    def test_batch_preserves_order_and_length(self, service, tiny_model):
        queries = list(tiny_model.query_texts.values())[:5]
        queries.insert(2, "zzzz qqqq nothing")  # no-hit query mid-batch
        results = service.search_topics_batch(queries, k=3)
        assert len(results) == len(queries)
        assert results[2] == []

    def test_empty_batch(self, service):
        assert service.search_topics_batch([], k=3) == []
        assert service.recommend_batch([], k=3) == []

    def test_duplicate_queries_share_cache(self, service, scenario_query):
        service.search_topics_batch([scenario_query] * 8, k=3)
        stats = service.cache_stats()
        assert stats.misses == 1
        assert stats.hits == 7


class TestIncrementalWiring:
    @pytest.fixture(scope="class")
    def long_market(self):
        cfg = dataclasses.replace(
            PROFILES["tiny"],
            query_log=QueryLogConfig(n_days=9, events_per_day=400),
        )
        return generate_marketplace(cfg)

    @pytest.fixture(scope="class")
    def maintainer(self, long_market):
        titles = {e.entity_id: e.title for e in long_market.catalog.entities}
        query_texts = {
            q.query_id: q.text for q in long_market.query_log.queries
        }
        categories = {
            e.entity_id: e.category_id for e in long_market.catalog.entities
        }
        return IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=100
        )

    def test_service_requires_model(self, long_market):
        titles = {e.entity_id: e.title for e in long_market.catalog.entities}
        inc = IncrementalShoal(ShoalConfig(), titles, {}, {})
        with pytest.raises(RuntimeError):
            inc.service()

    def test_advance_refreshes_persistent_service(
        self, maintainer, long_market
    ):
        maintainer.advance(long_market.query_log, last_day=6)
        svc = maintainer.service()
        assert maintainer.service() is svc  # persistent instance

        query = next(
            q.text
            for q in long_market.query_log.queries
            if q.intent_kind == "scenario"
        )
        svc.search_topics(query, k=3)
        svc.search_topics(query, k=3)
        stats = svc.cache_stats()
        assert stats.hits == 1 and stats.misses == 1

        maintainer.advance(long_market.query_log, last_day=7)
        # Same service object, new model, cache invalidated.
        assert maintainer.service() is svc
        assert svc.model is maintainer.model
        assert svc.cache_stats().size == 0
        svc.search_topics(query, k=3)
        stats = svc.cache_stats()
        assert stats.misses == 2  # recomputed against the new window
        assert stats.invalidations >= 1

    def test_refreshed_service_serves_new_taxonomy(
        self, maintainer, long_market
    ):
        maintainer.advance(long_market.query_log, last_day=8)
        svc = maintainer.service()
        hits = svc.search_topics(
            next(
                q.text
                for q in long_market.query_log.queries
                if q.intent_kind == "scenario"
            ),
            k=1,
        )
        assert hits
        # The returned topic exists in the *current* taxonomy.
        assert svc.taxonomy.topic(hits[0].topic_id) is not None
