"""Tests for the serving-engine internals of repro.core.serving:
query-result LRU cache (hit/miss/invalidation, incremental wiring) and
the batch APIs."""

import dataclasses

import pytest

from repro.core.config import ShoalConfig
from repro.core.incremental import IncrementalShoal
from repro.core.serving import ShoalService
from repro.data.marketplace import PROFILES, generate_marketplace
from repro.data.queries import QueryLogConfig


@pytest.fixture()
def service(tiny_model, tiny_marketplace):
    """A fresh service per test — cache counters start at zero."""
    return ShoalService(
        tiny_model,
        entity_categories={
            e.entity_id: e.category_id
            for e in tiny_marketplace.catalog.entities
        },
    )


@pytest.fixture(scope="module")
def scenario_query(tiny_marketplace):
    return next(
        q.text
        for q in tiny_marketplace.query_log.queries
        if q.intent_kind == "scenario"
    )


class TestQueryCache:
    def test_repeat_search_hits_cache(self, service, scenario_query):
        first = service.search_topics(scenario_query, k=3)
        stats = service.cache_stats()
        assert stats.hits == 0
        assert stats.misses == 1
        second = service.search_topics(scenario_query, k=3)
        stats = service.cache_stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert second == first

    def test_different_k_is_different_entry(self, service, scenario_query):
        service.search_topics(scenario_query, k=3)
        service.search_topics(scenario_query, k=5)
        assert service.cache_stats().misses == 2

    def test_cached_result_is_copy(self, service, scenario_query):
        first = service.search_topics(scenario_query, k=3)
        first.clear()  # caller mutation must not corrupt the cache
        again = service.search_topics(scenario_query, k=3)
        assert again  # still the real hits, not the cleared list

    def test_related_topics_cached(self, service):
        root = service.taxonomy.root_topics()[0]
        first = service.related_topics(root.topic_id, k=6)
        second = service.related_topics(root.topic_id, k=6)
        assert second == first
        assert service.cache_stats().hits >= 1

    def test_invalidate_cache(self, service, scenario_query):
        service.search_topics(scenario_query, k=3)
        service.invalidate_cache()
        stats = service.cache_stats()
        assert stats.size == 0
        assert stats.invalidations == 1
        service.search_topics(scenario_query, k=3)
        assert service.cache_stats().misses == 2

    def test_set_entity_categories_invalidates(self, service, scenario_query):
        service.search_topics(scenario_query, k=3)
        service.set_entity_categories({})
        assert service.cache_stats().size == 0

    def test_cache_disabled(self, tiny_model, scenario_query):
        svc = ShoalService(tiny_model, cache_size=0)
        svc.search_topics(scenario_query, k=3)
        svc.search_topics(scenario_query, k=3)
        stats = svc.cache_stats()
        assert stats.hits == 0
        assert stats.misses == 2
        assert stats.size == 0

    def test_lru_eviction(self, tiny_model):
        svc = ShoalService(tiny_model, cache_size=2)
        queries = list(tiny_model.query_texts.values())[:3]
        for q in queries:
            svc.search_topics(q, k=3)
        assert svc.cache_stats().size == 2
        svc.search_topics(queries[0], k=3)  # evicted → miss again
        assert svc.cache_stats().misses == 4

    def test_negative_cache_size_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            ShoalService(tiny_model, cache_size=-1)

    def test_hit_rate(self, service, scenario_query):
        assert service.cache_stats().hit_rate == 0.0
        service.search_topics(scenario_query, k=3)
        service.search_topics(scenario_query, k=3)
        assert service.cache_stats().hit_rate == pytest.approx(0.5)
        assert "hits" in service.cache_stats().summary()

    def test_cached_equals_uncached(self, tiny_model, tiny_marketplace):
        """The cache must be invisible: cached and cache-disabled
        services agree on every query and every related-topics call."""
        cats = {
            e.entity_id: e.category_id
            for e in tiny_marketplace.catalog.entities
        }
        warm = ShoalService(tiny_model, entity_categories=cats)
        cold = ShoalService(tiny_model, cache_size=0, entity_categories=cats)
        queries = list(tiny_model.query_texts.values())[:10]
        for q in queries + queries:  # second pass hits warm's cache
            assert warm.search_topics(q, k=4) == cold.search_topics(q, k=4)
        for t in warm.taxonomy.root_topics()[:5]:
            w = [(o.topic_id, s) for o, s in warm.related_topics(t.topic_id)]
            c = [(o.topic_id, s) for o, s in cold.related_topics(t.topic_id)]
            assert w == c


class TestBatchAPIs:
    def test_search_batch_equals_sequential(self, service, tiny_model):
        queries = list(tiny_model.query_texts.values())[:12]
        batched = service.search_topics_batch(queries, k=4)
        sequential = [service.search_topics(q, k=4) for q in queries]
        assert batched == sequential

    def test_recommend_batch_equals_sequential(self, service, tiny_model):
        queries = list(tiny_model.query_texts.values())[:12]
        batched = service.recommend_batch(queries, k=6)
        sequential = [
            service.recommend_entities_for_query(q, k=6) for q in queries
        ]
        assert batched == sequential

    def test_batch_preserves_order_and_length(self, service, tiny_model):
        queries = list(tiny_model.query_texts.values())[:5]
        queries.insert(2, "zzzz qqqq nothing")  # no-hit query mid-batch
        results = service.search_topics_batch(queries, k=3)
        assert len(results) == len(queries)
        assert results[2] == []

    def test_empty_batch(self, service):
        assert service.search_topics_batch([], k=3) == []
        assert service.recommend_batch([], k=3) == []

    def test_duplicate_queries_share_cache(self, service, scenario_query):
        service.search_topics_batch([scenario_query] * 8, k=3)
        stats = service.cache_stats()
        assert stats.misses == 1
        assert stats.hits == 7


class TestIncrementalWiring:
    @pytest.fixture(scope="class")
    def long_market(self):
        cfg = dataclasses.replace(
            PROFILES["tiny"],
            query_log=QueryLogConfig(n_days=9, events_per_day=400),
        )
        return generate_marketplace(cfg)

    @pytest.fixture(scope="class")
    def maintainer(self, long_market):
        titles = {e.entity_id: e.title for e in long_market.catalog.entities}
        query_texts = {
            q.query_id: q.text for q in long_market.query_log.queries
        }
        categories = {
            e.entity_id: e.category_id for e in long_market.catalog.entities
        }
        return IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=100
        )

    def test_service_requires_model(self, long_market):
        titles = {e.entity_id: e.title for e in long_market.catalog.entities}
        inc = IncrementalShoal(ShoalConfig(), titles, {}, {})
        with pytest.raises(RuntimeError):
            inc.service()

    def test_advance_refreshes_persistent_service(
        self, maintainer, long_market
    ):
        maintainer.advance(long_market.query_log, last_day=6)
        svc = maintainer.service()
        assert maintainer.service() is svc  # persistent instance

        query = next(
            q.text
            for q in long_market.query_log.queries
            if q.intent_kind == "scenario"
        )
        svc.search_topics(query, k=3)
        svc.search_topics(query, k=3)
        stats = svc.cache_stats()
        assert stats.hits == 1 and stats.misses == 1

        maintainer.advance(long_market.query_log, last_day=7)
        # Same service object, new model, cache invalidated.
        assert maintainer.service() is svc
        assert svc.model is maintainer.model
        assert svc.cache_stats().size == 0
        svc.search_topics(query, k=3)
        stats = svc.cache_stats()
        assert stats.misses == 2  # recomputed against the new window
        assert stats.invalidations >= 1

    def test_refreshed_service_serves_new_taxonomy(
        self, maintainer, long_market
    ):
        maintainer.advance(long_market.query_log, last_day=8)
        svc = maintainer.service()
        hits = svc.search_topics(
            next(
                q.text
                for q in long_market.query_log.queries
                if q.intent_kind == "scenario"
            ),
            k=1,
        )
        assert hits
        # The returned topic exists in the *current* taxonomy.
        assert svc.taxonomy.topic(hits[0].topic_id) is not None


class TestLRUThreadSafety:
    """Regression: _LRUCache races under concurrent mutation.

    The unlocked implementation raised KeyError when a ``get``'s
    ``move_to_end`` overlapped a concurrent ``clear``/eviction, and
    lost counter updates under parallel increments. The locked cache
    must survive a gauntlet of concurrent get/put/clear with exact
    counter accounting.
    """

    def test_concurrent_gets_puts_never_raise_or_corrupt(self):
        import sys
        import threading
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.serving import _LRUCache

        cache = _LRUCache(max_size=32)
        n_workers, gets_per_worker = 8, 3000
        barrier = threading.Barrier(n_workers)
        errors = []

        def worker(worker_id: int):
            barrier.wait()
            try:
                for i in range(gets_per_worker):
                    key = (worker_id * 7 + i) % 64
                    cache.get(key)
                    cache.put(key, ("value", key))
                    if i % 251 == 250:
                        cache.clear()
                    if i % 97 == 0:
                        len(cache)
                        cache.stats()
            except Exception as e:  # noqa: BLE001 - the regression
                errors.append(e)

        # Force aggressive thread preemption so the unlocked races
        # (move_to_end after a concurrent clear, lost counter updates)
        # fire reliably instead of once in a blue moon.
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            with ThreadPoolExecutor(max_workers=n_workers) as pool:
                list(pool.map(worker, range(n_workers)))
        finally:
            sys.setswitchinterval(old_interval)

        assert not errors, f"cache raced: {errors[:3]}"
        stats = cache.stats()
        # Exact accounting: every get() is either a hit or a miss.
        assert stats.hits + stats.misses == n_workers * gets_per_worker
        assert stats.size <= stats.max_size
        assert len(cache) == stats.size

    def test_get_vs_clear_interleaving_is_serialized(self):
        """Deterministic repro of the original race.

        ``get`` reads the entry and then touches recency via
        ``move_to_end``; a ``clear`` landing between the two raised
        KeyError in the unlocked cache. A planted dict subclass holds
        the window open so the interleaving happens every time unless
        the cache serialises it with its lock.
        """
        import threading
        import time
        from collections import OrderedDict

        from repro.core.serving import _LRUCache

        window_open = threading.Event()

        class DilatedDict(OrderedDict):
            def get(self, key, default=None):
                value = super().get(key, default)
                window_open.set()
                time.sleep(0.02)  # hold the get→move_to_end window
                return value

        cache = _LRUCache(max_size=8)
        cache.put("hot", "value")
        cache._data = DilatedDict(cache._data)
        errors = []

        def reader():
            try:
                cache.get("hot")
            except Exception as e:  # noqa: BLE001 - the regression
                errors.append(e)

        t = threading.Thread(target=reader)
        t.start()
        window_open.wait(timeout=5)
        cache.clear()  # must block until the in-flight get completes
        t.join(timeout=5)
        assert not errors, f"get raced clear: {errors!r}"
        assert cache.stats().hits == 1

    def test_concurrent_service_queries_consistent(self, tiny_model):
        """End-to-end: one shared service hammered from threads."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.core.serving import ShoalService

        service = ShoalService(tiny_model, cache_size=8)
        topic = tiny_model.taxonomy.root_topics()[0]
        queries = [d for t in tiny_model.taxonomy.topics()
                   for d in t.descriptions[:1]][:24]
        expected = [service.search_topics(q, 3) for q in queries]

        def probe(_):
            out = [service.search_topics(q, 3) for q in queries]
            service.related_topics(topic.topic_id)
            service.invalidate_cache()
            return out

        with ThreadPoolExecutor(max_workers=6) as pool:
            for got in pool.map(probe, range(18)):
                assert got == expected
        stats = service.cache_stats()
        assert stats.hits + stats.misses > 0
