"""Tests for repro.core.report (rendering and statistics)."""

import pytest

from repro.core.report import compute_stats, render_topic, render_tree
from repro.core.taxonomy import Taxonomy, Topic


def sample_taxonomy() -> Taxonomy:
    root = Topic(
        10, entity_ids=[0, 1, 2, 3], category_ids=[100, 101],
        level=0, similarity=0.5, descriptions=["beach trip"],
    )
    child = Topic(
        8, entity_ids=[0, 1], category_ids=[100],
        parent_id=10, level=1, similarity=0.9, descriptions=["beach dress"],
    )
    other = Topic(11, entity_ids=[4, 5], category_ids=[102], level=0)
    root.child_ids = [8]
    return Taxonomy([root, child, other])


class TestStats:
    def test_counts(self):
        stats = compute_stats(sample_taxonomy())
        assert stats.n_topics == 3
        assert stats.n_root_topics == 2
        assert stats.n_levels == 2
        assert stats.n_entities_placed == 6

    def test_size_distribution(self):
        stats = compute_stats(sample_taxonomy())
        assert stats.mean_root_size == pytest.approx(3.0)  # (4+2)/2
        assert stats.max_root_size == 4

    def test_description_coverage(self):
        stats = compute_stats(sample_taxonomy())
        assert stats.description_coverage == pytest.approx(2 / 3)

    def test_empty_taxonomy(self):
        stats = compute_stats(Taxonomy([]))
        assert stats.n_topics == 0
        assert stats.mean_root_size == 0.0
        assert stats.description_coverage == 0.0

    def test_summary_renders(self):
        assert "topics=3" in compute_stats(sample_taxonomy()).summary()

    def test_fitted_model_stats(self, tiny_model):
        stats = compute_stats(tiny_model.taxonomy)
        assert stats.n_topics == len(tiny_model.taxonomy)
        assert 0.0 < stats.description_coverage <= 1.0


class TestRenderTopic:
    def test_with_descriptions(self):
        t = sample_taxonomy().topic(10)
        line = render_topic(t)
        assert "beach trip" in line
        assert "4 entities" in line

    def test_with_category_names(self):
        t = sample_taxonomy().topic(10)
        line = render_topic(t, {100: "dresses", 101: "sunblock"})
        assert "dresses" in line

    def test_without_descriptions_uses_label(self):
        t = sample_taxonomy().topic(11)
        assert "topic-11" in render_topic(t)


class TestRenderTree:
    def test_structure(self):
        out = render_tree(sample_taxonomy())
        lines = out.split("\n")
        assert len(lines) == 3
        # Largest root first, child indented under it.
        assert "beach trip" in lines[0]
        assert lines[1].startswith("`-- ")
        assert "beach dress" in lines[1]

    def test_max_roots(self):
        out = render_tree(sample_taxonomy(), max_roots=1)
        assert "topic-11" not in out

    def test_max_depth(self):
        out = render_tree(sample_taxonomy(), max_depth=1)
        assert "beach dress" not in out

    def test_fitted_model_renders(self, tiny_model):
        out = render_tree(tiny_model.taxonomy, max_roots=5)
        assert out
        assert out.count("\n") >= 4
