"""Tests for repro.core.incremental (sliding-window maintenance)."""

import dataclasses

import pytest

from repro.core.config import ShoalConfig
from repro.core.incremental import IncrementalShoal
from repro.core.pipeline import ShoalPipeline
from repro.data.marketplace import PROFILES, generate_marketplace
from repro.data.queries import QueryLogConfig


@pytest.fixture(scope="module")
def long_market():
    """A 10-day log so the 7-day window actually slides."""
    cfg = dataclasses.replace(
        PROFILES["tiny"],
        query_log=QueryLogConfig(n_days=10, events_per_day=400),
    )
    return generate_marketplace(cfg)


@pytest.fixture(scope="module")
def inputs(long_market):
    titles = {e.entity_id: e.title for e in long_market.catalog.entities}
    query_texts = {q.query_id: q.text for q in long_market.query_log.queries}
    categories = {
        e.entity_id: e.category_id for e in long_market.catalog.entities
    }
    return titles, query_texts, categories


class TestAdvance:
    def test_first_advance_trains_embeddings(self, long_market, inputs):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(ShoalConfig(), titles, query_texts, categories)
        update = inc.advance(long_market.query_log, last_day=6)
        assert update.embeddings_retrained
        assert update.taxonomy_stability is None  # no previous window
        assert len(update.model.taxonomy) > 0

    def test_subsequent_advances_reuse_embeddings(self, long_market, inputs):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=100
        )
        inc.advance(long_market.query_log, last_day=6)
        emb = inc.model.embeddings
        u7 = inc.advance(long_market.query_log, last_day=7)
        assert not u7.embeddings_retrained
        assert u7.model.embeddings is emb  # warm reuse, not a copy

    def test_window_bounds_respected(self, long_market, inputs):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(ShoalConfig(), titles, query_texts, categories)
        u = inc.advance(long_market.query_log, last_day=9)
        assert u.first_day == 3
        assert u.last_day == 9

    def test_stability_reported_and_high(self, long_market, inputs):
        """Consecutive 7-day windows share 6 days of data; the taxonomy
        should barely move."""
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=100
        )
        inc.advance(long_market.query_log, last_day=6)
        u = inc.advance(long_market.query_log, last_day=7)
        assert u.taxonomy_stability is not None
        assert u.taxonomy_stability > 0.7

    def test_retrain_every_forces_retrain(self, long_market, inputs):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=2
        )
        assert inc.advance(long_market.query_log, 6).embeddings_retrained
        assert not inc.advance(long_market.query_log, 7).embeddings_retrained
        assert inc.advance(long_market.query_log, 8).embeddings_retrained

    def test_title_update_invalidates(self, long_market, inputs):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=100
        )
        inc.advance(long_market.query_log, 6)
        inc.update_titles({0: "completely new title words"})
        assert inc.advance(long_market.query_log, 7).embeddings_retrained

    def test_matches_full_refit_quality(self, long_market, inputs):
        """Warm-embedding refit must match a cold full fit on the same
        window (same data, same seeds → NMI ≈ 1 vs each other)."""
        from repro.eval.metrics import normalized_mutual_information

        titles, query_texts, categories = inputs
        inc = IncrementalShoal(ShoalConfig(), titles, query_texts, categories)
        warm = inc.advance(long_market.query_log, last_day=6).model

        cold = ShoalPipeline(ShoalConfig()).fit_raw(
            long_market.query_log,
            titles,
            query_texts,
            entity_categories=categories,
            corpus=list(titles.values()) + list(query_texts.values()),
            first_day=0,
            last_day=6,
        )
        nmi = normalized_mutual_information(
            warm.clustering.dendrogram.root_partition(),
            cold.clustering.dendrogram.root_partition(),
        )
        assert nmi > 0.95

    def test_summary(self, long_market, inputs):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(ShoalConfig(), titles, query_texts, categories)
        u = inc.advance(long_market.query_log, 6)
        assert "window 0..6" in u.summary()

    def test_retrain_every_validated(self, inputs):
        titles, query_texts, categories = inputs
        with pytest.raises(ValueError):
            IncrementalShoal(
                ShoalConfig(), titles, query_texts, categories, retrain_every=0
            )


class TestUpdateQueries:
    def test_registered_text_reaches_descriptions(self, long_market, inputs):
        """A query whose text only becomes known in a later window gets
        description coverage once registered — without forcing an
        embedding retrain (unlike update_titles)."""
        titles, query_texts, categories = inputs
        # Hold out the text of a query that actually has clicks late in
        # the log, simulating a query first seen in a later window.
        late_days = {e.query_id for e in long_market.query_log.events if e.day >= 7}
        held_out = min(late_days)
        partial = {k: v for k, v in query_texts.items() if k != held_out}

        inc = IncrementalShoal(
            ShoalConfig(), titles, partial, categories, retrain_every=100
        )
        inc.advance(long_market.query_log, last_day=6)
        scored_before = {
            s.query_id
            for scores in inc.model.descriptions.values()
            for s in scores
        }
        assert held_out not in scored_before  # no text -> never scored

        inc.update_queries({held_out: query_texts[held_out]})
        update = inc.advance(long_market.query_log, last_day=9)
        assert not update.embeddings_retrained  # no retrain forced
        assert update.model.query_texts[held_out] == query_texts[held_out]
        scored_after = {
            s.query_id
            for scores in update.model.descriptions.values()
            for s in scores
        }
        assert held_out in scored_after

    def test_does_not_invalidate_embeddings(self, long_market, inputs):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=100
        )
        inc.advance(long_market.query_log, 6)
        emb = inc.model.embeddings
        inc.update_queries({10_000: "brand new query text"})
        u = inc.advance(long_market.query_log, 7)
        assert not u.embeddings_retrained
        assert u.model.embeddings is emb


class TestCheckpointResume:
    def test_resume_restores_model_and_warm_embeddings(
        self, long_market, inputs, tmp_path
    ):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=100
        )
        inc.advance(long_market.query_log, last_day=6)
        inc.checkpoint(tmp_path / "ckpt")

        resumed = IncrementalShoal.resume(tmp_path / "ckpt")
        assert resumed.model is not None
        assert [t.topic_id for t in resumed.model.taxonomy] == [
            t.topic_id for t in inc.model.taxonomy
        ]
        # The resumed instance serves immediately, without an advance.
        assert resumed.service().search_topics("anything") is not None

        # The next slide behaves exactly as it would have pre-restart:
        # warm embeddings are reused and the result is identical.
        u_orig = inc.advance(long_market.query_log, last_day=7)
        u_res = resumed.advance(long_market.query_log, last_day=7)
        assert not u_res.embeddings_retrained
        assert (
            u_res.model.clustering.dendrogram.root_partition()
            == u_orig.model.clustering.dendrogram.root_partition()
        )
        assert u_res.taxonomy_stability == pytest.approx(u_orig.taxonomy_stability)

    def test_retrain_counter_survives(self, long_market, inputs, tmp_path):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=2
        )
        inc.advance(long_market.query_log, 6)  # retrain, counter -> 1
        inc.checkpoint(tmp_path / "ckpt")
        resumed = IncrementalShoal.resume(tmp_path / "ckpt")
        assert not resumed.advance(long_market.query_log, 7).embeddings_retrained
        assert resumed.advance(long_market.query_log, 8).embeddings_retrained

    def test_invalidated_embeddings_stay_invalid(
        self, long_market, inputs, tmp_path
    ):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(
            ShoalConfig(), titles, query_texts, categories, retrain_every=100
        )
        inc.advance(long_market.query_log, 6)
        inc.update_titles({0: "completely new title words"})
        inc.checkpoint(tmp_path / "ckpt")
        resumed = IncrementalShoal.resume(tmp_path / "ckpt")
        assert resumed.model is not None
        u = resumed.advance(long_market.query_log, 7)
        assert u.embeddings_retrained  # the invalidation survived
        assert resumed._titles[0] == "completely new title words"

    def test_checkpoint_before_first_advance(
        self, long_market, inputs, tmp_path
    ):
        titles, query_texts, categories = inputs
        inc = IncrementalShoal(ShoalConfig(), titles, query_texts, categories)
        inc.checkpoint(tmp_path / "ckpt")
        resumed = IncrementalShoal.resume(tmp_path / "ckpt")
        assert resumed.model is None
        u = resumed.advance(long_market.query_log, 6)
        assert u.embeddings_retrained
        assert len(u.model.taxonomy) > 0
