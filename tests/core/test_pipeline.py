"""Tests for repro.core.pipeline (end-to-end orchestration)."""

import dataclasses

import pytest

from repro.core.config import ShoalConfig
from repro.core.pipeline import ShoalPipeline
from repro.data.queries import QueryLog


class TestFit:
    def test_model_artifacts_consistent(self, tiny_model, tiny_marketplace):
        m = tiny_model
        # Every clustered vertex is a catalog entity.
        assert m.entity_graph.n_vertices <= len(tiny_marketplace.catalog)
        # Topics reference only entities that exist.
        entity_ids = {e.entity_id for e in tiny_marketplace.catalog.entities}
        for topic in m.taxonomy:
            assert set(topic.entity_ids) <= entity_ids
        # Every topic's categories come from the ontology.
        leaf_ids = set(tiny_marketplace.ontology.leaf_ids())
        for topic in m.taxonomy:
            assert set(topic.category_ids) <= leaf_ids

    def test_descriptions_attached(self, tiny_model):
        described = [t for t in tiny_model.taxonomy if t.descriptions]
        assert described, "no topic received a description"
        for t in described:
            assert len(t.descriptions) <= tiny_model.config.descriptions.top_k

    def test_descriptions_are_real_queries(self, tiny_model):
        query_texts = set(tiny_model.query_texts.values())
        for t in tiny_model.taxonomy:
            for d in t.descriptions:
                assert d in query_texts

    def test_empty_query_log_raises(self, tiny_marketplace):
        """Regression: fitting on a log with no events used to proceed
        with last_day=0 and fail deep in graph construction; it must
        fail fast with a clear error at the entry point."""
        empty_market = dataclasses.replace(
            tiny_marketplace,
            query_log=QueryLog(tiny_marketplace.query_log.queries, []),
        )
        with pytest.raises(ValueError, match="empty query log"):
            ShoalPipeline(ShoalConfig()).fit(empty_market)

    def test_stage_timings_recorded(self, tiny_model):
        expected = {
            "bipartite", "word2vec", "entity_graph",
            "clustering", "taxonomy", "descriptions", "correlation",
        }
        assert set(tiny_model.stage_seconds) == expected
        assert all(v >= 0 for v in tiny_model.stage_seconds.values())

    def test_window_respected(self, tiny_marketplace):
        """A 1-day window sees at most one day of events."""
        cfg = ShoalConfig(window_days=1)
        model = ShoalPipeline(cfg).fit(tiny_marketplace)
        one_day_clicks = model.bipartite.total_clicks
        full = ShoalPipeline(ShoalConfig(window_days=7)).fit(tiny_marketplace)
        assert one_day_clicks < full.bipartite.total_clicks

    def test_summary(self, tiny_model):
        assert "ShoalModel(" in tiny_model.summary()

    def test_deterministic(self, tiny_marketplace):
        a = ShoalPipeline(ShoalConfig()).fit(tiny_marketplace)
        b = ShoalPipeline(ShoalConfig()).fit(tiny_marketplace)
        assert [t.topic_id for t in a.taxonomy] == [t.topic_id for t in b.taxonomy]
        assert a.entity_graph.edge_list() == b.entity_graph.edge_list()


class TestFitRaw:
    def test_without_categories(self, tiny_marketplace):
        titles = {e.entity_id: e.title for e in tiny_marketplace.catalog.entities}
        query_texts = {
            q.query_id: q.text for q in tiny_marketplace.query_log.queries
        }
        model = ShoalPipeline().fit_raw(
            tiny_marketplace.query_log, titles, query_texts
        )
        # Works, but no category links → empty correlation graph.
        assert all(t.category_ids == [] for t in model.taxonomy)
        assert model.correlations.n_correlations == 0

    def test_topics_nonempty(self, tiny_model):
        assert len(tiny_model.taxonomy) > 0
        assert len(tiny_model.taxonomy.root_topics()) > 0
