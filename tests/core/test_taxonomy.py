"""Tests for repro.core.taxonomy."""

import pytest

from repro.clustering.dendrogram import Dendrogram, Merge
from repro.core.taxonomy import Taxonomy, Topic


def build_dendrogram() -> Dendrogram:
    """Vertices 0..7. Two subtrees merge into one root:
    (0,1)->8@.9  (2,3)->9@.85  (8,9)->10@.6 ; (4,5)->11@.8 ; 6,7 loose."""
    d = Dendrogram(range(8))
    d.record_merge(Merge(8, 0, 1, 0.9, 0))
    d.record_merge(Merge(9, 2, 3, 0.85, 0))
    d.record_merge(Merge(10, 8, 9, 0.6, 1))
    d.record_merge(Merge(11, 4, 5, 0.8, 0))
    return d


CATEGORIES = {0: 100, 1: 100, 2: 101, 3: 101, 4: 102, 5: 103, 6: 104, 7: 104}


@pytest.fixture
def taxonomy() -> Taxonomy:
    return Taxonomy.from_dendrogram(build_dendrogram(), CATEGORIES, min_topic_size=2)


class TestConstruction:
    def test_root_topics(self, taxonomy):
        roots = {t.topic_id for t in taxonomy.root_topics()}
        assert roots == {10, 11}

    def test_hierarchy_levels(self, taxonomy):
        assert taxonomy.topic(10).level == 0
        assert taxonomy.topic(8).level == 1
        assert taxonomy.topic(8).parent_id == 10
        assert sorted(taxonomy.topic(10).child_ids) == [8, 9]

    def test_topic_entities(self, taxonomy):
        assert taxonomy.topic(10).entity_ids == [0, 1, 2, 3]
        assert taxonomy.topic(8).entity_ids == [0, 1]

    def test_category_links(self, taxonomy):
        assert taxonomy.topic(10).category_ids == [100, 101]
        assert taxonomy.topic(8).category_ids == [100]
        assert taxonomy.topic(11).category_ids == [102, 103]

    def test_min_topic_size_filters_singletons(self, taxonomy):
        # Loose leaves 6,7 never merged; no topic contains them.
        assert taxonomy.topic_of_entity(6) is None
        assert taxonomy.topic_of_entity(7) is None

    def test_similarity_recorded(self, taxonomy):
        assert taxonomy.topic(10).similarity == 0.6
        assert taxonomy.topic(8).similarity == 0.9

    def test_min_topic_size_large_collapses_children(self):
        t = Taxonomy.from_dendrogram(build_dendrogram(), CATEGORIES, min_topic_size=3)
        # Children of size 2 don't qualify; root 10 absorbs everything.
        assert 10 in t
        assert t.topic(10).child_ids == []
        assert 8 not in t

    def test_max_levels_caps_depth(self):
        t = Taxonomy.from_dendrogram(
            build_dendrogram(), CATEGORIES, min_topic_size=2, max_levels=1
        )
        assert all(topic.level == 0 for topic in t)

    def test_missing_categories_tolerated(self):
        t = Taxonomy.from_dendrogram(build_dendrogram(), {}, min_topic_size=2)
        assert t.topic(10).category_ids == []


class TestLookups:
    def test_topic_of_entity_most_specific(self, taxonomy):
        assert taxonomy.topic_of_entity(0).topic_id == 8
        assert taxonomy.topic_of_entity(4).topic_id == 11

    def test_root_topic_of_entity(self, taxonomy):
        assert taxonomy.root_topic_of_entity(0).topic_id == 10
        assert taxonomy.root_topic_of_entity(4).topic_id == 11

    def test_topics_of_category(self, taxonomy):
        ids = {t.topic_id for t in taxonomy.topics_of_category(100)}
        assert ids == {8, 10}

    def test_topics_of_unknown_category(self, taxonomy):
        assert taxonomy.topics_of_category(999) == []

    def test_subtopics(self, taxonomy):
        subs = {t.topic_id for t in taxonomy.subtopics(10)}
        assert subs == {8, 9}
        assert taxonomy.subtopics(11) == []

    def test_parent(self, taxonomy):
        assert taxonomy.parent(8).topic_id == 10
        assert taxonomy.parent(10) is None

    def test_placed_entities(self, taxonomy):
        assert taxonomy.placed_entities() == [0, 1, 2, 3, 4, 5]

    def test_n_levels(self, taxonomy):
        assert taxonomy.n_levels() == 2

    def test_iteration_sorted(self, taxonomy):
        ids = [t.topic_id for t in taxonomy]
        assert ids == sorted(ids)

    def test_describe(self, taxonomy):
        assert "Taxonomy(" in taxonomy.describe()


class TestTopic:
    def test_label_prefers_description(self):
        t = Topic(5, [0], [1], descriptions=["beach trip"])
        assert t.label() == "beach trip"

    def test_label_fallback(self):
        assert Topic(5, [0], [1]).label() == "topic-5"

    def test_size(self):
        assert Topic(5, [0, 1, 2], []).size == 3

    def test_is_root(self):
        assert Topic(5, [0], []).is_root()
        assert not Topic(5, [0], [], parent_id=1).is_root()

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Taxonomy([Topic(1, [0], []), Topic(1, [1], [])])
