"""Tests for repro.core.descriptions (Sec. 2.3 representativeness)."""

import math

import pytest

from repro.core.descriptions import DescriptionConfig, QueryScore, TopicDescriber
from repro.core.taxonomy import Taxonomy, Topic
from repro.graph.bipartite import QueryItemGraph
from repro.text.bm25 import BM25


def make_world():
    """Two topics with disjoint vocab; queries concentrated per topic."""
    beach = Topic(100, entity_ids=[0, 1], category_ids=[])
    ski = Topic(101, entity_ids=[2, 3], category_ids=[])
    taxonomy = Taxonomy([beach, ski])
    titles = {
        0: "sun sand swim",
        1: "sun sand towel",
        2: "snow ski boots",
        3: "snow ski jacket",
    }
    query_texts = {
        0: "sun sand",      # beach query
        1: "snow ski",      # ski query
        2: "gift",          # matches nothing
    }
    bipartite = QueryItemGraph()
    for _ in range(5):
        bipartite.add_click(0, 0)
        bipartite.add_click(0, 1)
    for _ in range(5):
        bipartite.add_click(1, 2)
        bipartite.add_click(1, 3)
    bipartite.add_click(2, 0)  # stray click
    bipartite.add_click(2, 2)
    return taxonomy, bipartite, titles, query_texts


class TestDescribe:
    def test_top_description_is_concentrated_query(self):
        taxonomy, bipartite, titles, query_texts = make_world()
        describer = TopicDescriber(config=DescriptionConfig(top_k=1))
        describer.describe(taxonomy, bipartite, titles, query_texts)
        assert taxonomy.topic(100).descriptions == ["sun sand"]
        assert taxonomy.topic(101).descriptions == ["snow ski"]

    def test_scores_returned_for_all_candidates(self):
        taxonomy, bipartite, titles, query_texts = make_world()
        scores = TopicDescriber().describe(taxonomy, bipartite, titles, query_texts)
        beach_q = {s.query_id for s in scores[100]}
        assert beach_q == {0, 2}  # queries that clicked its entities

    def test_representativeness_is_geometric_mean(self):
        s = QueryScore(0, "q", popularity=0.64, concentration=0.25)
        assert s.representativeness == pytest.approx(math.sqrt(0.64 * 0.25))

    def test_zero_factors_zero_score(self):
        assert QueryScore(0, "q", 0.0, 0.9).representativeness == 0.0

    def test_top_k_respected(self):
        taxonomy, bipartite, titles, query_texts = make_world()
        TopicDescriber(config=DescriptionConfig(top_k=2)).describe(
            taxonomy, bipartite, titles, query_texts
        )
        assert len(taxonomy.topic(100).descriptions) <= 2

    def test_empty_taxonomy(self):
        out = TopicDescriber().describe(
            Taxonomy([]), QueryItemGraph(), {}, {}
        )
        assert out == {}

    def test_unknown_query_text_skipped(self):
        taxonomy, bipartite, titles, query_texts = make_world()
        del query_texts[2]
        scores = TopicDescriber().describe(taxonomy, bipartite, titles, query_texts)
        assert {s.query_id for s in scores[100]} == {0}


class TestPopularity:
    def test_formula(self):
        d = TopicDescriber()
        # pop = (log tf + 1) / log total
        assert d.popularity(10, 100) == pytest.approx(
            (math.log(10) + 1) / math.log(100)
        )

    def test_zero_tf(self):
        assert TopicDescriber().popularity(0, 100) == 0.0

    def test_degenerate_topic(self):
        assert TopicDescriber().popularity(5, 0) == 0.0

    def test_monotone_in_tf(self):
        d = TopicDescriber()
        assert d.popularity(20, 100) > d.popularity(5, 100)


class TestConcentration:
    def test_concentrated_query_wins(self):
        d = TopicDescriber()
        bm25 = BM25([["sun", "sand", "sun"], ["snow", "ski"]])
        con_topic0 = d.concentration(bm25, ["sun", "sand"], 0)
        con_topic1 = d.concentration(bm25, ["sun", "sand"], 1)
        assert con_topic0 > con_topic1

    def test_bounded(self):
        d = TopicDescriber()
        bm25 = BM25([["a"], ["b"]])
        for i in (0, 1):
            c = d.concentration(bm25, ["a"], i)
            assert 0.0 <= c <= 1.0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DescriptionConfig(top_k=0)
        with pytest.raises(ValueError):
            DescriptionConfig(softmax_scale=0)
