"""Integration tests: the full SHOAL system exercised end to end.

These tests assert the *reproduction claims* at test scale (looser
bands than the benches, which run larger corpora):

* topics group entities of the same ground-truth scenario (precision),
* the taxonomy's root partition has modularity above the paper's 0.3,
* SHOAL recommendation beats the ontology control in the A/B sim,
* the serving scenarios compose (query → topic → category → items),
* the whole thing is deterministic under a fixed seed.
"""

import pytest

from repro.baselines.ontology_rec import OntologyRecommender, OntologyRecommenderConfig
from repro.core.config import ShoalConfig
from repro.core.pipeline import ShoalPipeline
from repro.core.serving import ShoalService
from repro.eval.abtest import ABTestConfig, ABTestSimulator
from repro.eval.metrics import normalized_mutual_information
from repro.eval.precision import PrecisionConfig, SamplingPrecisionEvaluator
from repro.graph.modularity import modularity


class TestReproductionClaims:
    def test_precision_band(self, small_model, small_marketplace):
        """Paper Sec. 3: expert precision ≥ 98 %. At small scale we
        require ≥ 95 %."""
        truth = {
            e.entity_id: e.scenario_id for e in small_marketplace.catalog.entities
        }
        report = SamplingPrecisionEvaluator(
            PrecisionConfig(n_topics=1000, items_per_topic=100)
        ).evaluate(small_model.taxonomy, truth)
        assert report.precision >= 0.95

    def test_modularity_band(self, small_model):
        """Paper Sec. 2.2: Parallel HAC clusters have modularity > 0.3."""
        labels = small_model.clustering.dendrogram.root_partition()
        q = modularity(small_model.entity_graph, labels)
        assert q > 0.3

    def test_taxonomy_recovers_scenarios(self, small_model, small_marketplace):
        truth = {
            e.entity_id: e.scenario_id for e in small_marketplace.catalog.entities
        }
        pred = small_model.clustering.dendrogram.root_partition()
        assert normalized_mutual_information(pred, truth) > 0.6

    def test_ab_uplift_positive(self, small_model, small_marketplace):
        """Paper Sec. 3: SHOAL boosts CTR (+5 % in production)."""
        service = ShoalService(small_model)
        control = OntologyRecommender(
            small_marketplace.ontology,
            small_marketplace.catalog,
            OntologyRecommenderConfig(slate_size=8),
        )
        sim = ABTestSimulator(
            small_marketplace, ABTestConfig(n_impressions=3000, seed=0)
        )
        report = sim.run(
            control.recommend,
            lambda uid, q: service.recommend_entities_for_query(q, 8),
        )
        assert report.treatment_ctr > report.control_ctr

    def test_descriptions_contain_scenario_vocabulary(
        self, small_model, small_marketplace
    ):
        """Topic descriptions should usually carry a word from the
        dominant ground-truth scenario of the topic — that is what
        makes them interpretable."""
        hits = 0
        total = 0
        for topic in small_model.taxonomy.root_topics():
            if not topic.descriptions:
                continue
            scenarios = [
                small_marketplace.catalog.entity(e).scenario_id
                for e in topic.entity_ids
            ]
            dominant = max(set(scenarios), key=scenarios.count)
            s_words = set(
                small_marketplace.vocabulary.scenario_words(dominant)
            )
            total += 1
            tokens = set()
            for d in topic.descriptions:
                tokens.update(d.split())
            if tokens & s_words:
                hits += 1
        assert total > 0
        assert hits / total >= 0.7


class TestServingComposition:
    def test_query_topic_category_item_chain(self, small_model, small_marketplace):
        """Fig. 5 scenarios A → C composed: search a scenario query,
        take the best topic, walk one of its categories to items."""
        service = ShoalService(small_model)
        service.set_entity_categories(
            {e.entity_id: e.category_id for e in small_marketplace.catalog.entities}
        )
        query = next(
            q for q in small_marketplace.query_log.queries
            if q.intent_kind == "scenario"
        )
        topic = service.best_topic(query.text)
        assert topic is not None
        assert topic.category_ids
        found_items = False
        for cid in topic.category_ids:
            entities = service.entities_of_topic_category(topic.topic_id, cid)
            for e in entities:
                assert small_marketplace.catalog.entity(e).category_id == cid
                found_items = True
        assert found_items

    def test_subtopic_navigation(self, small_model):
        """Fig. 5 scenario B: some root topic has navigable children."""
        service = ShoalService(small_model)
        with_children = [
            t for t in small_model.taxonomy.root_topics() if t.child_ids
        ]
        if not with_children:
            pytest.skip("taxonomy is flat at this scale")
        subs = service.subtopics(with_children[0].topic_id)
        assert subs
        for sub in subs:
            assert set(sub.entity_ids) <= set(with_children[0].entity_ids)

    def test_correlation_pairs_share_scenarios(
        self, small_model, small_marketplace
    ):
        """Fig. 5 scenario D: correlated categories should co-occur in
        some ground-truth scenario far more often than chance."""
        pairs = small_model.correlations.pairs()
        if not pairs:
            pytest.skip("no correlations at this scale")
        truth_pairs = set()
        for s in small_marketplace.scenarios:
            cats = sorted(s.category_ids)
            for i in range(len(cats)):
                for j in range(i + 1, len(cats)):
                    truth_pairs.add((cats[i], cats[j]))
        agree = sum(1 for a, b, _ in pairs if (a, b) in truth_pairs)
        assert agree / len(pairs) > 0.5


class TestDeterminism:
    def test_full_pipeline_reproducible(self, tiny_marketplace):
        a = ShoalPipeline(ShoalConfig()).fit(tiny_marketplace)
        b = ShoalPipeline(ShoalConfig()).fit(tiny_marketplace)
        assert a.entity_graph.edge_list() == b.entity_graph.edge_list()
        assert [
            (m.child_a, m.child_b, m.round_index)
            for m in a.clustering.dendrogram.merges
        ] == [
            (m.child_a, m.child_b, m.round_index)
            for m in b.clustering.dendrogram.merges
        ]
        for ta, tb in zip(a.taxonomy, b.taxonomy):
            assert ta.topic_id == tb.topic_id
            assert ta.descriptions == tb.descriptions
