"""Cross-seed structural invariants of the fitted system.

These hold for *any* marketplace the generator can produce, so they run
over several seeds: the taxonomy must be a coherent forest over real
entities, the entity graph must respect its config, descriptions must
come from real queries, and the correlation graph must follow Eq. 5's
definition exactly.
"""

import pytest

from repro.core.config import ShoalConfig
from repro.core.pipeline import ShoalPipeline
from repro.data.marketplace import PROFILES, generate_marketplace

SEEDS = (0, 7, 23)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_world(request):
    market = generate_marketplace(PROFILES["tiny"].with_seed(request.param))
    model = ShoalPipeline(ShoalConfig()).fit(market)
    return market, model


class TestTaxonomyInvariants:
    def test_topics_form_a_forest(self, seeded_world):
        _, model = seeded_world
        taxonomy = model.taxonomy
        for topic in taxonomy:
            if topic.parent_id is not None:
                parent = taxonomy.topic(topic.parent_id)
                assert topic.topic_id in parent.child_ids
                assert topic.level == parent.level + 1
            for child_id in topic.child_ids:
                assert taxonomy.topic(child_id).parent_id == topic.topic_id

    def test_children_entities_subset_of_parent(self, seeded_world):
        _, model = seeded_world
        taxonomy = model.taxonomy
        for topic in taxonomy:
            parent_set = set(topic.entity_ids)
            for child_id in topic.child_ids:
                assert set(taxonomy.topic(child_id).entity_ids) <= parent_set

    def test_sibling_entities_disjoint(self, seeded_world):
        _, model = seeded_world
        taxonomy = model.taxonomy
        for topic in taxonomy:
            seen = set()
            for child_id in topic.child_ids:
                members = set(taxonomy.topic(child_id).entity_ids)
                assert not (members & seen)
                seen |= members

    def test_topic_sizes_meet_minimum(self, seeded_world):
        _, model = seeded_world
        for topic in model.taxonomy:
            assert topic.size >= model.config.min_topic_size

    def test_topic_categories_match_entities(self, seeded_world):
        market, model = seeded_world
        entity_cat = {
            e.entity_id: e.category_id for e in market.catalog.entities
        }
        for topic in model.taxonomy:
            expected = sorted({entity_cat[e] for e in topic.entity_ids})
            assert topic.category_ids == expected

    def test_merge_similarity_decreases_up_the_tree(self, seeded_world):
        """A parent merge happened at a similarity no higher than its
        children's merges would suggest is typical — weak form: child
        formation similarity >= parent's for direct sub-topics."""
        _, model = seeded_world
        taxonomy = model.taxonomy
        for topic in taxonomy:
            for child_id in topic.child_ids:
                child = taxonomy.topic(child_id)
                assert child.similarity >= topic.similarity - 1e-9


class TestGraphInvariants:
    def test_edge_weights_respect_config(self, seeded_world):
        _, model = seeded_world
        floor = model.config.entity_graph.min_similarity
        for _, _, w in model.entity_graph.edges():
            assert floor <= w <= 1.0

    def test_graph_vertices_are_clicked_entities(self, seeded_world):
        _, model = seeded_world
        clicked = set(model.bipartite.entity_ids())
        assert set(model.entity_graph.vertices()) == clicked

    def test_every_merge_used_a_live_edge(self, seeded_world):
        _, model = seeded_world
        threshold = model.config.clustering.similarity_threshold
        for m in model.clustering.dendrogram.merges:
            assert m.similarity >= threshold


class TestDescriptionInvariants:
    def test_descriptions_are_clicked_queries(self, seeded_world):
        """A topic's tags must be queries that actually clicked one of
        its entities — never borrowed from elsewhere."""
        _, model = seeded_world
        text_to_qid = {v: k for k, v in model.query_texts.items()}
        for topic in model.taxonomy:
            clicked_queries = set()
            for e in topic.entity_ids:
                clicked_queries |= model.bipartite.queries_of_entity(e)
            for d in topic.descriptions:
                assert text_to_qid[d] in clicked_queries

    def test_scores_consistent_with_factors(self, seeded_world):
        import math

        _, model = seeded_world
        for scores in model.descriptions.values():
            for s in scores:
                assert s.representativeness == pytest.approx(
                    math.sqrt(max(0.0, s.popularity) * max(0.0, s.concentration))
                )


class TestCorrelationInvariants:
    def test_eq5_exact(self, seeded_world):
        """Every reported strength equals the root-topic co-occurrence
        count, and every pair above threshold is present."""
        _, model = seeded_world
        counts = {}
        for topic in model.taxonomy.root_topics():
            cats = sorted(set(topic.category_ids))
            for i in range(len(cats)):
                for j in range(i + 1, len(cats)):
                    key = (cats[i], cats[j])
                    counts[key] = counts.get(key, 0) + 1
        graph = model.correlations
        threshold = model.config.correlation.min_strength
        for (a, b), c in counts.items():
            if c >= threshold:
                assert graph.strength(a, b) == c
            else:
                assert graph.strength(a, b) == 0
