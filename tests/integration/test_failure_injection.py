"""Failure injection: degenerate and adversarial inputs.

A library a downstream team adopts must not fall over on the inputs
production actually produces: empty windows, all-noise traffic,
missing titles, hub queries, duplicate catalogs. Each test builds the
pathological world and asserts the pipeline degrades *gracefully* —
empty-but-valid outputs, never exceptions.
"""

import dataclasses


from repro.core.config import ShoalConfig
from repro.core.pipeline import ShoalPipeline
from repro.core.serving import ShoalService
from repro.data.marketplace import PROFILES, generate_marketplace
from repro.data.queries import Query, QueryEvent, QueryLog, QueryLogConfig
from repro.eval.precision import PrecisionConfig, SamplingPrecisionEvaluator


def _fit_raw(log, titles, query_texts=None, **kw):
    query_texts = query_texts or {q.query_id: q.text for q in log.queries}
    return ShoalPipeline(ShoalConfig()).fit_raw(log, titles, query_texts, **kw)


class TestEmptyInputs:
    def test_empty_log(self):
        model = _fit_raw(QueryLog([], []), {0: "some title"})
        assert len(model.taxonomy) == 0
        assert model.correlations.n_correlations == 0
        # Serving still answers (with nothing).
        service = ShoalService(model)
        assert service.search_topics("anything") == []

    def test_window_outside_log(self, tiny_marketplace):
        titles = {e.entity_id: e.title for e in tiny_marketplace.catalog.entities}
        texts = {q.query_id: q.text for q in tiny_marketplace.query_log.queries}
        model = ShoalPipeline(ShoalConfig()).fit_raw(
            tiny_marketplace.query_log, titles, texts,
            first_day=100, last_day=107,
        )
        assert model.bipartite.n_edges == 0
        assert len(model.taxonomy) == 0

    def test_single_event_log(self):
        log = QueryLog(
            [Query(0, "red shoe", "category", 1)],
            [QueryEvent(0, 0, 0, 0, (0,))],
        )
        model = _fit_raw(log, {0: "red shoe classic"})
        # One entity: no pairs, no topics — but no crash.
        assert model.entity_graph.n_vertices == 1
        assert len(model.taxonomy) == 0


class TestMissingData:
    def test_missing_titles_tolerated(self, tiny_marketplace):
        """Entities without titles fall back to neutral content
        similarity; the pipeline must still produce a taxonomy."""
        titles = {
            e.entity_id: e.title
            for e in tiny_marketplace.catalog.entities
            if e.entity_id % 3 != 0  # drop a third of the titles
        }
        texts = {q.query_id: q.text for q in tiny_marketplace.query_log.queries}
        model = ShoalPipeline(ShoalConfig()).fit_raw(
            tiny_marketplace.query_log, titles, texts
        )
        assert len(model.taxonomy) > 0

    def test_missing_query_texts_tolerated(self, tiny_marketplace):
        titles = {e.entity_id: e.title for e in tiny_marketplace.catalog.entities}
        texts = {
            q.query_id: q.text
            for q in tiny_marketplace.query_log.queries
            if q.query_id % 2 == 0
        }
        model = ShoalPipeline(ShoalConfig()).fit_raw(
            tiny_marketplace.query_log, titles, texts
        )
        # Descriptions only draw from known texts.
        known = set(texts.values())
        for t in model.taxonomy:
            for d in t.descriptions:
                assert d in known


class TestAdversarialTraffic:
    def test_all_noise_clicks_low_but_valid(self):
        """Pure-noise traffic: no scenario signal at all. Topics may
        form from random coincidence, but precision scoring and the
        pipeline itself must hold up."""
        cfg = dataclasses.replace(
            PROFILES["tiny"],
            query_log=QueryLogConfig(
                n_days=3, events_per_day=300, noise_click_rate=1.0
            ),
        )
        market = generate_marketplace(cfg)
        model = ShoalPipeline(ShoalConfig()).fit(market)
        truth = {e.entity_id: e.scenario_id for e in market.catalog.entities}
        report = SamplingPrecisionEvaluator(
            PrecisionConfig(n_topics=100, items_per_topic=100)
        ).evaluate(model.taxonomy, truth)
        assert 0.0 <= report.precision <= 1.0

    def test_hub_query_bounded_by_lsh(self, tiny_marketplace):
        """A query clicked with *every* entity makes exact candidate
        enumeration quadratic; the LSH mode bounds it without error."""
        log = tiny_marketplace.query_log
        hub = Query(10_000, "everything sale", "category", 0)
        all_entities = tuple(
            e.entity_id for e in tiny_marketplace.catalog.entities
        )
        events = list(log.events)
        events.append(QueryEvent(10_000_000, 0, 0, hub.query_id, all_entities))
        hub_log = QueryLog(log.queries + [hub], events)

        titles = {e.entity_id: e.title for e in tiny_marketplace.catalog.entities}
        texts = {q.query_id: q.text for q in hub_log.queries}
        cfg = dataclasses.replace(
            ShoalConfig(),
            entity_graph=dataclasses.replace(
                ShoalConfig().entity_graph, candidate_source="lsh"
            ),
        )
        model = ShoalPipeline(cfg).fit_raw(hub_log, titles, texts)
        assert len(model.taxonomy) > 0

    def test_duplicate_titles_everywhere(self):
        """A catalog where every title is identical: content similarity
        is uniform, so structure must come from queries alone."""
        queries = [Query(i, f"q{i}", "category", i) for i in range(4)]
        events = []
        eid = 0
        # Queries 0,1 click entities 0-2; queries 2,3 click entities 3-5.
        for day in range(3):
            for q in (0, 1):
                events.append(QueryEvent(eid, day, 0, q, (0, 1, 2))); eid += 1
            for q in (2, 3):
                events.append(QueryEvent(eid, day, 0, q, (3, 4, 5))); eid += 1
        log = QueryLog(queries, events)
        titles = {e: "same title words" for e in range(6)}
        model = _fit_raw(log, titles)
        labels = model.clustering.dendrogram.root_partition()
        # The two query-communities must not merge.
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]


class TestConfigEdgeCases:
    def test_threshold_one_no_merges(self, tiny_marketplace):
        model = ShoalPipeline(
            ShoalConfig().with_similarity_threshold(1.0)
        ).fit(tiny_marketplace)
        # Similarities are < 1.0 in practice; nothing merges.
        assert model.clustering.total_merges == 0

    def test_min_topic_size_huge(self, tiny_marketplace):
        cfg = dataclasses.replace(ShoalConfig(), min_topic_size=10_000)
        model = ShoalPipeline(cfg).fit(tiny_marketplace)
        assert len(model.taxonomy) == 0

    def test_one_day_window(self, tiny_marketplace):
        model = ShoalPipeline(
            dataclasses.replace(ShoalConfig(), window_days=1)
        ).fit(tiny_marketplace)
        assert len(model.taxonomy) >= 0  # valid model from one day
