"""Tests for repro.pregel.algorithms (vertex-program library)."""

import numpy as np
import pytest

from repro.graph.components import component_labels, connected_components
from repro.graph.sparse import SparseGraph
from repro.pregel.algorithms import (
    pregel_connected_components,
    pregel_degrees,
    pregel_pagerank,
)


def sample_graph() -> SparseGraph:
    """Two components: a triangle {0,1,2} and an edge {3,4}; 5 isolated."""
    g = SparseGraph(6)
    g.set_edge(0, 1, 1.0)
    g.set_edge(1, 2, 0.5)
    g.set_edge(0, 2, 0.8)
    g.set_edge(3, 4, 1.0)
    return g


class TestPregelComponents:
    def test_matches_reference_implementation(self):
        g = sample_graph()
        pregel = pregel_connected_components(g)
        reference = component_labels(g)
        # Same grouping (labels differ: pregel uses min member id).
        for u in g.vertices():
            for v in g.vertices():
                assert (pregel[u] == pregel[v]) == (
                    reference[u] == reference[v]
                )

    def test_labels_are_min_member(self):
        labels = pregel_connected_components(sample_graph())
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == labels[4] == 3
        assert labels[5] == 5

    def test_long_chain(self):
        n = 60
        g = SparseGraph(n)
        for i in range(n - 1):
            g.set_edge(i, i + 1, 1.0)
        labels = pregel_connected_components(g)
        assert set(labels.values()) == {0}

    def test_random_graph_matches_reference(self):
        rng = np.random.default_rng(0)
        g = SparseGraph(30)
        for _ in range(25):
            u, v = rng.integers(0, 30, size=2)
            if u != v:
                g.set_edge(int(u), int(v), 1.0)
        pregel = pregel_connected_components(g)
        groups = {}
        for v, c in pregel.items():
            groups.setdefault(c, set()).add(v)
        expected = {frozenset(c) for c in map(set, connected_components(g))}
        assert {frozenset(m) for m in groups.values()} == expected


class TestPregelPageRank:
    def test_ranks_sum_to_one_on_connected_graph(self):
        g = SparseGraph(4)
        for i in range(4):
            for j in range(i + 1, 4):
                g.set_edge(i, j, 1.0)
        ranks = pregel_pagerank(g, iterations=30)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_graph_uniform_ranks(self):
        g = SparseGraph(4)
        g.set_edge(0, 1, 1.0)
        g.set_edge(1, 2, 1.0)
        g.set_edge(2, 3, 1.0)
        g.set_edge(3, 0, 1.0)
        ranks = pregel_pagerank(g, iterations=40)
        vals = list(ranks.values())
        assert max(vals) - min(vals) < 1e-9

    def test_hub_ranks_highest(self):
        """A star's center collects rank from every leaf."""
        g = SparseGraph(6)
        for leaf in range(1, 6):
            g.set_edge(0, leaf, 1.0)
        ranks = pregel_pagerank(g, iterations=30)
        assert ranks[0] == max(ranks.values())

    def test_weights_matter(self):
        """Vertex 1 gets more of 0's rank than vertex 2 when its edge is
        heavier."""
        g = SparseGraph(3)
        g.set_edge(0, 1, 10.0)
        g.set_edge(0, 2, 1.0)
        ranks = pregel_pagerank(g, iterations=30)
        assert ranks[1] > ranks[2]

    def test_empty_graph(self):
        assert pregel_pagerank(SparseGraph(0)) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            pregel_pagerank(SparseGraph(2), iterations=0)
        with pytest.raises(ValueError):
            pregel_pagerank(SparseGraph(2), damping=1.5)


class TestPregelDegrees:
    def test_matches_graph(self):
        g = sample_graph()
        out = pregel_degrees(g)
        for v in g.vertices():
            degree, strength = out[v]
            assert degree == g.degree(v)
            assert strength == pytest.approx(g.weighted_degree(v))
