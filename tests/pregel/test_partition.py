"""Tests for repro.pregel.partition (hash partitioner)."""

import pytest

from repro.pregel.partition import HashPartitioner


class TestHashPartitioner:
    def test_worker_range(self):
        p = HashPartitioner(4)
        for vid in range(200):
            assert 0 <= p.worker_of(vid) < 4

    def test_deterministic(self):
        p1 = HashPartitioner(8)
        p2 = HashPartitioner(8)
        for vid in range(100):
            assert p1.worker_of(vid) == p2.worker_of(vid)

    def test_roughly_balanced(self):
        p = HashPartitioner(4)
        groups = p.partition(list(range(4000)))
        sizes = [len(v) for v in groups.values()]
        assert min(sizes) > 700  # ±30% of the 1000 ideal

    def test_partition_includes_empty_workers(self):
        p = HashPartitioner(10)
        groups = p.partition([1])
        assert set(groups) == set(range(10))

    def test_string_keys(self):
        p = HashPartitioner(3)
        assert p.worker_of("alpha") == p.worker_of("alpha")
        assert 0 <= p.worker_of("alpha") < 3

    def test_is_remote(self):
        p = HashPartitioner(2)
        same = [v for v in range(50) if p.worker_of(v) == p.worker_of(0)]
        other = [v for v in range(50) if p.worker_of(v) != p.worker_of(0)]
        assert not p.is_remote(0, same[0])
        assert p.is_remote(0, other[0])

    def test_single_worker_nothing_remote(self):
        p = HashPartitioner(1)
        assert not p.is_remote(3, 99)

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
