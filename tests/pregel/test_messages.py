"""Tests for repro.pregel.messages (router and combiners)."""


from repro.pregel.messages import MessageRouter, combine_max, combine_sum
from repro.pregel.partition import HashPartitioner


class TestCombiners:
    def test_combine_max(self):
        assert combine_max([3, 9, 1]) == [9]

    def test_combine_max_empty(self):
        assert combine_max([]) == []

    def test_combine_sum(self):
        assert combine_sum([1, 2, 3]) == [6]

    def test_combine_sum_empty(self):
        assert combine_sum([]) == []


class TestRouter:
    def test_flush_delivers_grouped(self):
        r = MessageRouter(HashPartitioner(2))
        r.post(0, 1, "a")
        r.post(0, 1, "b")
        r.post(0, 2, "c")
        inboxes = r.flush()
        assert inboxes == {1: ["a", "b"], 2: ["c"]}

    def test_flush_clears(self):
        r = MessageRouter(HashPartitioner(2))
        r.post(0, 1, "x")
        r.flush()
        assert r.flush() == {}
        assert not r.has_pending()

    def test_combiner_applied_per_target(self):
        r = MessageRouter(HashPartitioner(2), combiner=combine_max)
        r.post(0, 1, 5)
        r.post(0, 1, 9)
        r.post(0, 2, 1)
        inboxes = r.flush()
        assert inboxes == {1: [9], 2: [1]}

    def test_stats_total_and_remote(self):
        p = HashPartitioner(2)
        r = MessageRouter(p)
        # Find a local and a remote pair deterministically.
        local = next(v for v in range(1, 50) if not p.is_remote(0, v))
        remote = next(v for v in range(1, 50) if p.is_remote(0, v))
        r.post(0, local, "m")
        r.post(0, remote, "m")
        assert r.sent_total == 2
        assert r.sent_remote == 1

    def test_reset_stats(self):
        r = MessageRouter(HashPartitioner(2))
        r.post(0, 1, "m")
        r.reset_stats()
        assert r.sent_total == 0

    def test_pending_per_worker(self):
        p = HashPartitioner(2)
        r = MessageRouter(p)
        r.post(0, 1, "m")
        r.post(0, 1, "m")
        per = r.pending_per_worker()
        assert sum(per.values()) == 2
        assert set(per) == {0, 1}
