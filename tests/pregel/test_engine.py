"""Tests for repro.pregel.engine (BSP superstep execution)."""

import pytest

from repro.pregel.aggregators import MaxAggregator, SumAggregator
from repro.pregel.engine import PregelConfig, PregelEngine
from repro.pregel.messages import combine_max
from repro.pregel.vertex import Vertex


class EchoOnce(Vertex):
    """Sends its id to neighbors at step 0, stores received ids, halts."""

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            ctx.send_to_neighbors(self.vertex_id)
            self.value = []
        else:
            self.value = sorted(set(self.value + messages))
        ctx.vote_to_halt()


class MaxPropagate(Vertex):
    """Classic Pregel example: propagate the global max vertex value."""

    def compute(self, ctx, messages):
        new_value = max([self.value] + messages)
        if ctx.superstep == 0 or new_value > self.value:
            self.value = new_value
            ctx.send_to_neighbors(self.value)
        ctx.vote_to_halt()


class Counter(Vertex):
    """Contributes 1 to a sum aggregator each superstep, runs 3 steps."""

    def compute(self, ctx, messages):
        ctx.aggregate("count", 1)
        if ctx.superstep >= 2:
            ctx.vote_to_halt()
        else:
            ctx.send(self.vertex_id, "tick")  # self-message keeps it alive


def ring(n, vertex_cls, value=0):
    vertices = []
    for i in range(n):
        edges = {(i - 1) % n: 1.0, (i + 1) % n: 1.0}
        vertices.append(vertex_cls(i, value, edges))
    return vertices


class TestBasicExecution:
    def test_echo_delivers_neighbor_ids(self):
        engine = PregelEngine(ring(4, EchoOnce, value=None))
        result = engine.run()
        assert result.halted
        assert engine.vertex(0).value == [1, 3]
        assert engine.vertex(2).value == [1, 3]

    def test_max_propagation_converges(self):
        vertices = ring(10, MaxPropagate)
        for v in vertices:
            v.value = int(v.vertex_id)
        engine = PregelEngine(vertices)
        result = engine.run()
        assert result.halted
        assert all(v.value == 9 for v in engine.vertices())
        # On a 10-ring, news takes ~5 supersteps to wrap around.
        assert 5 <= result.supersteps <= 8

    def test_superstep_cap(self):
        class Restless(Vertex):
            def compute(self, ctx, messages):
                ctx.send(self.vertex_id, "again")

        engine = PregelEngine(
            [Restless(0, None, {})], PregelConfig(max_supersteps=5)
        )
        result = engine.run()
        assert not result.halted
        assert result.supersteps == 5

    def test_all_halted_immediately(self):
        class Sleeper(Vertex):
            def compute(self, ctx, messages):
                ctx.vote_to_halt()

        engine = PregelEngine([Sleeper(i, None, {}) for i in range(3)])
        result = engine.run()
        assert result.halted
        assert result.supersteps == 1

    def test_message_reactivates_halted_vertex(self):
        engine = PregelEngine(ring(4, EchoOnce, value=None))
        engine.run()
        # All vertices processed their inbox in superstep 1 then halted.
        assert all(not v.active for v in engine.vertices())

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            PregelEngine([Vertex(0), Vertex(0)])


class TestAggregators:
    def test_sum_aggregator_counts(self):
        engine = PregelEngine(
            [Counter(i, None, {}) for i in range(4)],
            aggregators={"count": SumAggregator()},
        )
        result = engine.run()
        # Last superstep's reduction: all 4 vertices contributed.
        assert result.aggregators["count"] == 4

    def test_aggregated_visible_next_superstep(self):
        seen = {}

        class Reader(Vertex):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.aggregate("m", self.vertex_id)
                    ctx.send(self.vertex_id, "tick")
                else:
                    seen[self.vertex_id] = ctx.aggregated("m")
                    ctx.vote_to_halt()

        engine = PregelEngine(
            [Reader(i, None, {}) for i in range(3)],
            aggregators={"m": MaxAggregator()},
        )
        engine.run()
        assert seen == {0: 2, 1: 2, 2: 2}

    def test_unknown_aggregator_raises(self):
        class Bad(Vertex):
            def compute(self, ctx, messages):
                ctx.aggregate("missing", 1)

        engine = PregelEngine([Bad(0, None, {})])
        with pytest.raises(KeyError):
            engine.run()


class TestStatsAndCombiner:
    def test_stats_recorded(self):
        engine = PregelEngine(ring(6, EchoOnce, value=None), PregelConfig(n_workers=2))
        result = engine.run()
        assert result.stats[0].active_vertices == 6
        assert result.stats[0].messages_sent == 12  # 2 per vertex
        assert result.total_messages == 12
        assert 0 <= result.total_remote_messages <= 12
        assert result.critical_path_work() >= result.supersteps

    def test_remote_fraction(self):
        engine = PregelEngine(ring(6, EchoOnce, value=None), PregelConfig(n_workers=3))
        result = engine.run()
        s = result.stats[0]
        assert 0.0 <= s.remote_fraction <= 1.0

    def test_combiner_reduces_delivery(self):
        class SendMany(Vertex):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    for val in (1, 5, 3):
                        ctx.send(1 - self.vertex_id, val)
                else:
                    self.value = messages
                ctx.vote_to_halt()

        engine = PregelEngine(
            [SendMany(0, None, {}), SendMany(1, None, {})],
            PregelConfig(combiner=combine_max),
        )
        engine.run()
        assert engine.vertex(0).value == [5]
        assert engine.vertex(1).value == [5]

    def test_remove_edge_applied_after_superstep(self):
        class Cutter(Vertex):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.remove_edge(1)
                ctx.vote_to_halt()

        v = Cutter(0, None, {1: 1.0})
        engine = PregelEngine([v])
        engine.run()
        assert v.edges == {}
