"""Tests for repro.pregel.aggregators."""

from repro.pregel.aggregators import MaxAggregator, OrAggregator, SumAggregator


class TestMaxAggregator:
    def test_identity_none(self):
        assert MaxAggregator().value is None

    def test_accumulate(self):
        a = MaxAggregator()
        a.accumulate(3)
        a.accumulate(1)
        a.accumulate(7)
        assert a.value == 7

    def test_reset(self):
        a = MaxAggregator()
        a.accumulate(5)
        a.reset()
        assert a.value is None

    def test_tuple_ordering(self):
        a = MaxAggregator()
        a.accumulate((0.5, -1, -2))
        a.accumulate((0.9, -3, -4))
        assert a.value == (0.9, -3, -4)


class TestSumAggregator:
    def test_identity_zero(self):
        assert SumAggregator().value == 0

    def test_accumulate(self):
        a = SumAggregator()
        for v in (1, 2, 3.5):
            a.accumulate(v)
        assert a.value == 6.5


class TestOrAggregator:
    def test_identity_false(self):
        assert OrAggregator().value is False

    def test_any_true_wins(self):
        a = OrAggregator()
        a.accumulate(False)
        a.accumulate(True)
        a.accumulate(False)
        assert a.value is True

    def test_all_false(self):
        a = OrAggregator()
        a.accumulate(False)
        assert a.value is False
