"""Follower rebuild: hypothesis-proven byte-identity with the primary."""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.contract import RecommendRequest, SearchRequest
from repro.core.serving import ShoalService
from repro.replication import Feed, Follower
from repro.replication.delta import snapshot_fingerprint
from tests.replication.conftest import (
    MIN_BATCH,
    build_primary,
    stream_generation,
)


def _probe_queries(market, n=8):
    return sorted({q.text for q in market.query_log.queries})[:n]


def _answer_bytes(backend, queries):
    """The canonical byte serialisation of a backend's answer surface."""
    surface = {}
    for q in queries:
        hits = backend.search(SearchRequest(query=q, k=5)).hits
        ids = backend.recommend(RecommendRequest(query=q, k=5)).entity_ids
        surface[q] = {
            "hits": [list(h) if isinstance(h, (tuple, list)) else h.to_dict()
                     if hasattr(h, "to_dict") else h for h in hits],
            "recommend": list(ids),
        }
    return json.dumps(surface, sort_keys=True, default=repr).encode()


class TestFollowerByteIdentity:
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_single_and_sharded_followers_match_primary(
        self,
        data,
        repl_base_snapshot,
        repl_market,
        repl_config,
        repl_live_events,
    ):
        """For arbitrary micro-batch cuts, every follower — single
        service and 4-shard cluster — rebuilds generations with the
        primary's exact fingerprints and serves byte-identical answers."""
        first = data.draw(
            st.integers(MIN_BATCH, 60), label="first boundary"
        )
        second = data.draw(
            st.integers(first + MIN_BATCH, first + 60),
            label="second boundary",
        )
        root = Path(tempfile.mkdtemp(prefix="repl-hyp-"))
        pipe, updater, shipper = build_primary(
            root, repl_base_snapshot, repl_market, repl_config
        )
        generations = [
            stream_generation(pipe, updater, repl_live_events[:first]),
            stream_generation(
                pipe, updater, repl_live_events[first:second]
            ),
        ]
        probes = _probe_queries(repl_market)
        primary = ShoalService(
            generations[-1].model,
            cache_size=0,
            entity_categories=generations[-1].entity_categories,
        )

        class _PrimaryView:
            def search(self, request):
                return type(
                    "R", (), {"hits": primary.search_topics(request.query, request.k)}
                )()

            def recommend(self, request):
                return type(
                    "R",
                    (),
                    {
                        "entity_ids": primary.recommend_entities_for_query(
                            request.query, request.k
                        )
                    },
                )()

        want = _answer_bytes(_PrimaryView(), probes)

        for n_shards in (1, 4):
            follower = Follower(
                root / "feed",
                root / f"work-{n_shards}",
                follower_id=f"f{n_shards}",
                n_shards=n_shards,
                cache_size=0,
            )
            backend = follower.bootstrap()
            follower.catch_up(timeout_s=120.0)
            for generation in generations:
                assert follower.fingerprint_of(
                    generation.number
                ) == snapshot_fingerprint(generation.snapshot_dir), (
                    f"{n_shards}-shard follower diverged at generation "
                    f"{generation.number} (cuts {first}/{second})"
                )
            # swap the follower onto the last generation and compare
            # the full answer surface byte for byte
            Feed(root / "feed").write_epoch(
                {
                    "epoch": follower.epoch + 1,
                    "generation": generations[-1].number,
                    "fingerprint": follower.fingerprint_of(
                        generations[-1].number
                    ),
                }
            )
            follower.run_once()
            assert follower.serving_generation == generations[-1].number
            assert _answer_bytes(backend, probes) == want
            backend.close()


class TestFollowerOperational:
    def test_lag_metrics_track_the_feed(self, feed_copy, tmp_path):
        follower = Follower(feed_copy, tmp_path / "work", follower_id="lag")
        follower.bootstrap()
        # after one sync the feed head is known but nothing is built yet
        follower._sync_feed()
        stats = follower.stats()
        assert stats["seqs_behind"] > 0
        assert stats["generations_behind"] == 2
        assert stats["segments_behind"] == 0  # sync loaded every segment
        follower.catch_up(timeout_s=120.0)
        stats = follower.stats()
        assert stats["segments_behind"] == 0
        assert stats["generations_behind"] == 0
        assert stats["seqs_behind"] == 0
        assert stats["built_generation"] == 2
        assert stats["healthy"] and not stats["divergent"]

    def test_follower_reports_published_to_feed(self, feed_copy, tmp_path):
        follower = Follower(feed_copy, tmp_path / "work", follower_id="rep")
        follower.bootstrap()
        follower.catch_up(timeout_s=120.0)
        reports = Feed(feed_copy).read_follower_reports()
        assert "rep" in reports
        report = reports["rep"]
        assert report["built_generation"] == 2
        assert set(report["fingerprints"]) == {"1", "2"}

    def test_corrupted_shipped_segment_detected(self, feed_copy, tmp_path):
        feed = Feed(feed_copy)
        name = feed.read_segment_index()[0]["name"]
        with open(feed.segments_dir / name, "ab") as fh:
            fh.write(b'{"crc": 0, "event": {}}\n')
        follower = Follower(feed_copy, tmp_path / "work", follower_id="bad")
        follower.bootstrap()
        follower.run_once()
        stats = follower.stats()
        assert not stats["healthy"]
        assert "checksum mismatch" in stats["last_error"]

    def test_mid_stream_join_still_converges(self, feed_copy, tmp_path):
        """A follower that has seen nothing still rebuilds every
        generation in order from the retained feed (bootstrap replay)."""
        follower = Follower(feed_copy, tmp_path / "work", follower_id="late")
        follower.bootstrap()
        built = follower.catch_up(timeout_s=120.0)
        assert built == 2
        index = Feed(feed_copy).read_generation_index()
        for entry in index:
            assert follower.fingerprint_of(int(entry["number"])) == (
                entry["fingerprint"]
            )


class TestFollowerBackendUri:
    def test_open_backend_follower_scheme(self, shipped_world):
        from repro.api import open_backend

        root, _, _ = shipped_world
        backend = open_backend(f"follower:{root / 'feed'}")
        try:
            assert backend.kind == "follower"
            stats = backend.stats()
            assert stats["replication"]["built_generation"] == 2
            hits = backend.search(SearchRequest(query="camping", k=3)).hits
            assert isinstance(hits, tuple)
        finally:
            backend.close()

    def test_open_backend_rejects_non_feed(self, tmp_path):
        from repro.api import open_backend
        from repro.api.contract import ApiError

        with pytest.raises(ApiError, match="replication feed"):
            open_backend(f"follower:{tmp_path}")
        with pytest.raises(ApiError, match="missing its replication feed"):
            open_backend("follower:")
